"""Package metadata and legacy install shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which shell out to ``bdist_wheel``) fail.
This classic ``setup.py`` keeps ``pip install -e . --no-use-pep517
--no-build-isolation`` working and declares the full package tree under
``src/`` so non-editable installs ship every subpackage
(``repro.stream`` included).
"""

from setuptools import find_packages, setup

setup(
    name="repro-ipv6-prefix-rotation",
    version="1.0.0",
    description=(
        'Reproduction of "Follow the Scent: Defeating IPv6 Prefix '
        'Rotation Privacy" (IMC 2021)'
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # No hard dependencies: the library is stdlib-only.  numpy powers
    # the columnar streaming kernel (repro.stream.columnar) and is
    # optional -- without it every ingest path transparently uses the
    # pure-Python fused loops with identical results, just slower.
    extras_require={"fast": ["numpy"]},
)
