"""Legacy setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which shell out to ``bdist_wheel``) fail.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` take
the classic ``setup.py develop`` path instead.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
