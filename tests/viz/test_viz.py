"""Tests for CDF math and ASCII rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.viz.ascii import render_cdf, render_series, render_table
from repro.viz.cdf import cdf_points, fraction_at_or_below, quantile


class TestCdf:
    def test_points_simple(self):
        points = cdf_points([1, 2, 3, 4])
        assert points == [(1.0, 0.25), (2.0, 0.5), (3.0, 0.75), (4.0, 1.0)]

    def test_duplicates_collapse(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1.0, 2 / 3), (2.0, 1.0)]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])

    def test_fraction_at_or_below(self):
        values = [1, 2, 3, 4]
        assert fraction_at_or_below(values, 2) == 0.5
        assert fraction_at_or_below(values, 0) == 0.0
        assert fraction_at_or_below(values, 9) == 1.0

    def test_quantile(self):
        values = list(range(1, 101))
        assert quantile(values, 0.0) == 1
        assert quantile(values, 1.0) == 100
        assert abs(quantile(values, 0.5) - 50) <= 1

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)
        with pytest.raises(ValueError):
            quantile([], 0.5)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_cdf_monotone_ending_at_one(self, values):
        points = cdf_points(values)
        ys = [y for _, y in points]
        xs = [x for x, _ in points]
        assert ys == sorted(ys)
        assert xs == sorted(set(xs))
        assert ys[-1] == pytest.approx(1.0)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [["xxx", 1], ["y", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_no_rows(self):
        text = render_table(["col"], [])
        assert "col" in text


class TestRenderSeries:
    def test_basic_plot_shape(self):
        text = render_series(
            {"s": [(0, 0), (1, 1)]}, width=20, height=5, title="plot"
        )
        lines = text.splitlines()
        assert lines[0] == "plot"
        assert sum(1 for line in lines if line.startswith("|")) == 5
        assert "legend: *=s" in text

    def test_marker_placement_extremes(self):
        text = render_series({"s": [(0, 0), (10, 10)]}, width=11, height=5)
        body = [line[1:] for line in text.splitlines() if line.startswith("|")]
        assert body[0][-1] == "*"  # max lands top-right
        assert body[-1][0] == "*"  # min lands bottom-left

    def test_multiple_series_distinct_markers(self):
        text = render_series({"a": [(0, 0)], "b": [(1, 1)]}, width=10, height=4)
        assert "*=a" in text and "o=b" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series({})
        with pytest.raises(ValueError):
            render_series({"s": []})

    def test_render_cdf_smoke(self):
        text = render_cdf({"d": [1, 2, 2, 3]}, width=20, height=5)
        assert "CDF" in text
