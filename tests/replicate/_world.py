"""Deterministic small world + wait helper for replication tests.

Builders are functions, not fixtures: the failover tests need *two
independent but identical* campaigns -- one killed and promoted, one
run uninterrupted as the byte-identity reference -- and the SIGKILL
subprocess drill imports the same builders so the killed primary and
the in-process reference see identical responses.
"""

import time

from repro import Campaign, CampaignConfig, InternetSpec, PoolSpec, ProviderSpec
from repro.simnet.builder import build_internet
from repro.simnet.rotation import IncrementRotation

DAYS = 6


def build_world(seed: int = 7):
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Replica DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=seed,
    )
    return build_internet(spec)


def build_campaign(days: int = DAYS) -> Campaign:
    internet = build_world()
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(
        internet, prefixes48, CampaignConfig(days=days, start_day=2, seed=7)
    )


def wait_for(predicate, timeout: float = 10.0) -> bool:
    """Poll *predicate* until true or *timeout*; replication is
    asynchronous, assertions on follower state must wait for it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()
