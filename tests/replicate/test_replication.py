"""Checkpoint-delta replication: shipping, catch-up, standby, promote.

The contract under test, end to end: every segment a binary-checkpoint
campaign writes reaches every subscribed follower byte-exact; a
follower's assembled state always equals what ``read_state`` returns
from the primary's file; and a promoted follower's checkpoint is
*byte-identical* to the primary's -- so the pursuit continues as if
the primary had never died.
"""

import json
import urllib.request

import pytest

from _world import DAYS, build_campaign, wait_for

from repro.obs import Telemetry, read_events
from repro.replicate import ReplicaFollower, ReplicationError, SegmentShipper
from repro.stream.campaign import StreamingCampaign
from repro.stream.ckptbin import (
    BinaryCheckpointer,
    ChainAssembler,
    chain_info,
    read_state,
    segment_bytes,
)


def make_primary(tmp_path, shipper, days=DAYS, **kwargs):
    return StreamingCampaign(
        build_campaign(days),
        checkpoint_path=tmp_path / "primary.ckpt",
        checkpoint_every=1,
        checkpoint_format="binary",
        shipper=shipper,
        **kwargs,
    )


def state_json(state: dict) -> str:
    return json.dumps(state, sort_keys=True)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


# -- chain introspection (the shipper's read surface) ----------------------


def test_chain_info_matches_saver_chain(tmp_path):
    """``chain_info`` (file) and ``BinaryCheckpointer.chain`` (live)
    agree segment-for-segment, and the byte ranges tile the file."""
    path = tmp_path / "chain.bin"
    campaign = StreamingCampaign(
        build_campaign(),
        checkpoint_path=path,
        checkpoint_every=1,
        checkpoint_format="binary",
    )
    campaign.run()

    infos = chain_info(path)
    assert len(infos) > 1
    assert infos[0].kind == "full"
    assert [s.seq for s in infos] == list(range(len(infos)))
    assert len({s.base_id for s in infos}) == 1
    assert infos[0].offset == 0
    for prev, cur in zip(infos, infos[1:]):
        assert cur.offset == prev.offset + prev.size
    assert infos[-1].offset + infos[-1].size == path.stat().st_size
    # The live saver tracked everything it wrote identically.
    assert list(campaign._ckpt_saver.chain) == infos
    # segment_bytes round-trips each raw segment through the assembler.
    assembler = ChainAssembler()
    for info in infos:
        header = assembler.apply(segment_bytes(path, info))
        assert (header["kind"], header["seq"]) == (info.kind, info.seq)
    assert state_json(assembler.state()) == state_json(read_state(path))


def test_checkpoint_written_event_carries_chain_identity(tmp_path):
    """Binary ``checkpoint_written`` events carry ``(base_id, seq)`` so
    an operator can line the event log up against follower positions."""
    telemetry = Telemetry(event_path=tmp_path / "events.jsonl")
    campaign = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "chain.bin",
        checkpoint_every=1,
        checkpoint_format="binary",
        telemetry=telemetry,
    )
    campaign.run()
    telemetry.events.flush()
    written = [
        e
        for e in read_events(tmp_path / "events.jsonl")
        if e["event"] == "checkpoint_written"
    ]
    infos = chain_info(tmp_path / "chain.bin")
    assert [(e["base_id"], e["seq"]) for e in written] == [
        (s.base_id, s.seq) for s in infos
    ]
    assert [e["kind"] for e in written] == [s.kind for s in infos]


# -- live shipping ---------------------------------------------------------


def test_shipper_follower_round_trip(tmp_path):
    """Every checkpoint a running campaign writes reaches the follower;
    the assembled state equals the file's; promotion is byte-identical."""
    with SegmentShipper() as shipper:
        primary = make_primary(tmp_path, shipper)
        with ReplicaFollower(shipper.address, authkey=shipper.authkey) as follower:
            follower.start()
            primary.run()
            infos = chain_info(tmp_path / "primary.ckpt")
            assert wait_for(lambda: follower.applied_seq == infos[-1].seq)
            assert follower.applied_base_id == infos[0].base_id
            assert follower.segments_applied == len(infos)
            assert follower.lag_seconds is not None
            assert state_json(follower.state) == state_json(
                read_state(tmp_path / "primary.ckpt")
            )
            # The standby engine answers like a restored primary would.
            assert follower.engine.responses_ingested == (
                primary.engine.responses_ingested
            )
            promoted = follower.promote(tmp_path / "promoted.ckpt")
        assert promoted.read_bytes() == (tmp_path / "primary.ckpt").read_bytes()


def test_follower_catches_up_mid_chain(tmp_path):
    """A follower that subscribes after segments already shipped gets
    the backlog replayed from its high-water mark, then tracks live."""
    with SegmentShipper() as shipper:
        primary = make_primary(tmp_path, shipper)
        primary.run(max_days=3)  # three segments ship with nobody listening
        with ReplicaFollower(shipper.address, authkey=shipper.authkey) as follower:
            follower.start()
            assert wait_for(lambda: follower.applied_seq >= 2)
            primary.run()  # the rest ships live
            infos = chain_info(tmp_path / "primary.ckpt")
            assert wait_for(lambda: follower.applied_seq == infos[-1].seq)
            assert state_json(follower.state) == state_json(
                read_state(tmp_path / "primary.ckpt")
            )


def test_rebase_resets_follower(tmp_path):
    """A chain hitting ``max_chain`` rebases (fresh full, new base_id);
    the follower must drop its old chain and track the new base."""
    from repro.core.records import ProbeObservation
    from repro.stream.engine import StreamEngine

    path = tmp_path / "chain.bin"
    saver = BinaryCheckpointer(path, max_chain=3)
    engine = StreamEngine(origin_of=lambda address: 65001)
    with SegmentShipper() as shipper:
        with ReplicaFollower(shipper.address, authkey=shipper.authkey) as follower:
            follower.start()
            bases = set()
            for day in range(7):  # 7 saves through max_chain=3: 2 rebases
                net64 = (0x20010DB8 << 32) | day
                engine.ingest_batch(
                    [
                        ProbeObservation(
                            day=day,
                            t_seconds=day * 86_400.0,
                            target=(net64 << 64) | 1,
                            source=(net64 << 64) | 0x0210D5FFFE000001,
                        )
                    ]
                )
                engine.flush()
                saver.save(engine)
                shipper.ship(saver)
                bases.add(saver.chain[0].base_id)
            assert len(bases) >= 2, "no rebase happened; test is vacuous"
            final = chain_info(path)
            assert wait_for(
                lambda: (follower.applied_base_id, follower.applied_seq)
                == (final[0].base_id, final[-1].seq)
            )
            assert state_json(follower.state) == state_json(read_state(path))


def test_stop_reaches_follower(tmp_path):
    """Closing the shipper stops the follower orderly -- not a crash,
    no reconnect storm."""
    with SegmentShipper() as shipper:
        follower = ReplicaFollower(shipper.address, authkey=shipper.authkey)
        follower.start()
        assert wait_for(lambda: shipper.subscribers == 1)
    assert wait_for(lambda: follower.stopped_by_primary)
    assert follower.reconnects == 0
    follower.stop()


def test_follower_requires_authkey(monkeypatch):
    monkeypatch.delenv("REPRO_REPLICATE_AUTHKEY", raising=False)
    monkeypatch.delenv("REPRO_FABRIC_AUTHKEY", raising=False)
    with pytest.raises(ReplicationError, match="authkey"):
        ReplicaFollower("tcp://127.0.0.1:1")


# -- standby serving -------------------------------------------------------


def test_standby_http_reports_role_and_position(tmp_path):
    """Standby ``/healthz``/``/stats`` carry ``role: standby`` plus the
    applied ``(base_id, seq)`` and lag; a plain server stays primary."""
    with SegmentShipper() as shipper:
        primary = make_primary(tmp_path, shipper)
        with ReplicaFollower(shipper.address, authkey=shipper.authkey) as follower:
            url = follower.serve()
            # Before any segment: healthy, explicitly empty position.
            health = get_json(url + "/healthz")
            assert health["role"] == "standby"
            assert health["applied_seq"] == -1
            follower.start()
            primary.run()
            infos = chain_info(tmp_path / "primary.ckpt")
            assert wait_for(lambda: follower.applied_seq == infos[-1].seq)
            stats = get_json(url + "/stats")
            assert stats["role"] == "standby"
            assert stats["applied_base_id"] == infos[0].base_id
            assert stats["applied_seq"] == infos[-1].seq
            assert stats["lag_seconds"] >= 0.0
            # The standby serves the replicated tracker state.
            assert stats["responses"] == primary.engine.responses_ingested

    # A server with no role_info is the primary.
    from repro.serve import SnapshotPublisher, TrackerServer
    from repro.stream.engine import StreamEngine

    server = TrackerServer(SnapshotPublisher(StreamEngine()))
    try:
        assert get_json(server.start() + "/healthz")["role"] == "primary"
    finally:
        server.stop()


# -- promotion and campaign wiring -----------------------------------------


def test_promote_campaign_continues_pursuit(tmp_path):
    """Kill the primary mid-campaign, promote the follower, finish the
    run: final state must equal an uninterrupted run's exactly."""
    from repro.stream.checkpoint import engine_state

    def fingerprint(campaign):
        return state_json(
            {
                "engine": engine_state(campaign.engine),
                "days": campaign.result.days_run,
                "probes": campaign.result.probes_sent,
            }
        )

    reference = StreamingCampaign(build_campaign())
    reference.run()

    with SegmentShipper() as shipper:
        primary = make_primary(tmp_path, shipper)
        with ReplicaFollower(shipper.address, authkey=shipper.authkey) as follower:
            follower.start()
            primary.run(max_days=3)
            assert wait_for(lambda: follower.applied_seq >= 2)
            # The primary "dies" here: nothing of it is used again.
            resumed = follower.promote_campaign(
                build_campaign(), tmp_path / "takeover.ckpt"
            )
            assert resumed.result.days_run == 3
            resumed.run()
    assert fingerprint(resumed) == fingerprint(reference)


def test_promote_without_segments_raises():
    with SegmentShipper() as shipper:
        follower = ReplicaFollower(shipper.address, authkey=shipper.authkey)
        with pytest.raises(ReplicationError, match="nothing applied"):
            follower.promote("unused.ckpt")


def test_campaign_shipper_wiring(tmp_path, monkeypatch):
    """The campaign knob matrix: off by default, env-switched on, owned
    vs caller-provided, and rejected without a shippable chain."""
    monkeypatch.delenv("REPRO_REPLICATE_BIND", raising=False)
    assert StreamingCampaign(build_campaign()).shipper is None

    monkeypatch.setenv("REPRO_REPLICATE_BIND", "tcp://127.0.0.1:0")
    auto = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "auto.ckpt",
        checkpoint_format="binary",
    )
    assert isinstance(auto.shipper, SegmentShipper)
    assert auto._owns_shipper
    auto.close_shipper()
    # Env bind without a binary chain to ship: stays off, not an error.
    assert StreamingCampaign(build_campaign()).shipper is None
    monkeypatch.delenv("REPRO_REPLICATE_BIND", raising=False)

    # An explicit request without a shippable chain is a hard error.
    with pytest.raises(ValueError, match="checkpoint_path"):
        StreamingCampaign(build_campaign(), shipper="tcp://127.0.0.1:0")
    with pytest.raises(ValueError, match="binary"):
        StreamingCampaign(
            build_campaign(),
            checkpoint_path=tmp_path / "json.ckpt",
            checkpoint_format="json",
            shipper="tcp://127.0.0.1:0",
        )

    # A caller-provided shipper is the caller's to close.
    with SegmentShipper() as shipper:
        owned = StreamingCampaign(
            build_campaign(),
            checkpoint_path=tmp_path / "owned.ckpt",
            checkpoint_format="binary",
            shipper=shipper,
        )
        assert owned.shipper is shipper
        assert not owned._owns_shipper
        owned.close_shipper()  # no-op
        owned.checkpoint()
        assert shipper.segments_shipped == 1


def test_replication_metrics_flow(tmp_path):
    """Both ends' ``repro_repl_*`` series move when telemetry rides."""
    ship_tel, follow_tel = Telemetry(), Telemetry()
    with SegmentShipper(telemetry=ship_tel) as shipper:
        primary = make_primary(tmp_path, shipper, telemetry=ship_tel)
        with ReplicaFollower(
            shipper.address, authkey=shipper.authkey, telemetry=follow_tel
        ) as follower:
            follower.start()
            primary.run()
            infos = chain_info(tmp_path / "primary.ckpt")
            assert wait_for(lambda: follower.applied_seq == infos[-1].seq)
            shipped = ship_tel.snapshot()["counters"]
            assert shipped["repro_repl_segments_shipped_total"] == len(infos)
            assert shipped["repro_repl_bytes_shipped_total"] == (
                tmp_path / "primary.ckpt"
            ).stat().st_size
            applied = follow_tel.snapshot()
            assert applied["counters"]["repro_repl_segments_applied_total"] == len(
                infos
            )
            assert applied["gauges"]["repro_repl_lag_seconds"] >= 0.0
