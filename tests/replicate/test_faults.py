"""Replication under faults: corruption, overflow, link loss, SIGKILL.

The failure-mode contract: a bad segment is rejected *before* it can
touch follower state; a follower that cannot keep up degrades to a
bounded full-chain resync, never an unbounded backlog; a dropped link
heals through reconnect catch-up; and a SIGKILLed primary loses
nothing a follower had applied -- the promoted checkpoint is a byte
prefix of the dead primary's file and resumes to the uninterrupted
run's exact final state.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from _world import build_campaign, wait_for

from repro.core.records import ProbeObservation
from repro.replicate import ReplicaFollower, SegmentShipper
from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import engine_state
from repro.stream.ckptbin import (
    BinaryCheckpointer,
    ChainAssembler,
    CheckpointError,
    chain_info,
    read_state,
    segment_bytes,
)
from repro.stream.engine import StreamEngine

SRC = str(Path(__file__).resolve().parents[2] / "src")
HERE = str(Path(__file__).resolve().parent)


def state_json(state: dict) -> str:
    return json.dumps(state, sort_keys=True)


def observation(day: int, n: int = 1) -> ProbeObservation:
    net64 = (0x20010DB8 << 32) | (day * 31 + n)
    return ProbeObservation(
        day=day,
        t_seconds=day * 86_400.0 + n,
        target=(net64 << 64) | 1,
        source=(net64 << 64) | 0x0210D5FFFE000001,
    )


def build_chain(path, days: int = 3, **saver_kwargs):
    """A small real chain on disk; returns its ``(meta, raw)`` stream."""
    saver = BinaryCheckpointer(path, **saver_kwargs)
    engine = StreamEngine(origin_of=lambda address: 65001)
    for day in range(days):
        engine.ingest_batch([observation(day, n) for n in range(3)])
        engine.flush()
        saver.save(engine)
    segments = []
    for info in chain_info(path):
        segments.append(
            (
                {
                    "base_id": info.base_id,
                    "seq": info.seq,
                    "kind": info.kind,
                    "t": time.time(),
                },
                segment_bytes(path, info),
            )
        )
    return segments


def corrupt(raw: bytes) -> bytes:
    """Flip one payload byte: framing intact, CRC must catch it."""
    middle = len(raw) // 2
    return raw[:middle] + bytes([raw[middle] ^ 0xFF]) + raw[middle + 1 :]


# -- corruption ------------------------------------------------------------


def test_corrupt_segment_rejected_without_poisoning_state(tmp_path):
    """A corrupt or truncated segment raises and leaves the follower's
    applied chain fully intact -- the same good segment still applies."""
    segments = build_chain(tmp_path / "chain.bin")
    follower = ReplicaFollower("tcp://127.0.0.1:9", authkey="unused")
    follower._apply(*segments[0])
    before = state_json(follower.state)

    meta1, raw1 = segments[1]
    with pytest.raises(CheckpointError):
        follower._apply(meta1, corrupt(raw1))
    assert state_json(follower.state) == before
    with pytest.raises(CheckpointError):
        follower._apply(meta1, raw1[:-3])  # truncated mid-CRC
    assert state_json(follower.state) == before
    assert follower.segments_rejected == 2
    assert follower.segments_applied == 1

    # The rejection poisoned nothing: the chain continues cleanly.
    for segment in segments[1:]:
        follower._apply(*segment)
    assert state_json(follower.state) == state_json(
        read_state(tmp_path / "chain.bin")
    )


def test_corrupt_rebase_keeps_old_chain_queryable(tmp_path):
    """Even a corrupt *full* segment (a rebase attempt) must not
    clobber the previously applied chain."""
    segments = build_chain(tmp_path / "chain.bin")
    fresh = build_chain(tmp_path / "fresh.bin", days=1)
    follower = ReplicaFollower("tcp://127.0.0.1:9", authkey="unused")
    for segment in segments:
        follower._apply(*segment)
    before = state_json(follower.state)

    meta, raw = fresh[0]
    assert (meta["kind"], meta["seq"]) == ("full", 0)
    with pytest.raises(CheckpointError):
        follower._apply(meta, corrupt(raw))
    assert state_json(follower.state) == before
    assert follower.applied_base_id == segments[0][0]["base_id"]

    # A *good* rebase then swaps the chain wholesale.
    follower._apply(meta, raw)
    assert follower.applied_base_id == meta["base_id"]
    assert state_json(follower.state) == state_json(
        read_state(tmp_path / "fresh.bin")
    )


def test_out_of_order_segment_rejected(tmp_path):
    """A chain gap (lost frame) is a hard error, not silent skew."""
    segments = build_chain(tmp_path / "chain.bin")
    follower = ReplicaFollower("tcp://127.0.0.1:9", authkey="unused")
    follower._apply(*segments[0])
    with pytest.raises(CheckpointError, match="broken segment chain"):
        follower._apply(*segments[2])  # seq 1 never arrived
    assert follower.applied_seq == 0


def test_bare_engine_chain_restores_an_engine(tmp_path):
    """A chain saved from a bare engine (no campaign progress) is the
    engine state itself -- ``follower.engine`` must restore it, not
    assume the campaign-nested shape.  Compared restored-to-restored:
    ``read_state`` keeps on-disk column order, a restore normalizes."""
    from repro.stream.checkpoint import load_engine

    segments = build_chain(tmp_path / "chain.bin")
    follower = ReplicaFollower("tcp://127.0.0.1:9", authkey="unused")
    for segment in segments:
        follower._apply(*segment)
    assert state_json(engine_state(follower.engine)) == state_json(
        engine_state(load_engine(tmp_path / "chain.bin"))
    )


# -- outbox overflow -------------------------------------------------------


def test_outbox_overflow_forces_full_resync(tmp_path):
    """A follower past its outbox bound is degraded to a full-chain
    resync: queue dropped, entire chain re-enqueued from seq 0 -- and
    that replayed stream still assembles the exact file state."""
    import socket as socketlib

    from repro.replicate.shipper import _Subscriber

    path = tmp_path / "chain.bin"
    saver = BinaryCheckpointer(path)
    engine = StreamEngine(origin_of=lambda address: 65001)
    with SegmentShipper() as shipper:
        a, b = socketlib.socketpair()
        # Never started: the writer drains nothing, so live offers pile
        # into the bound deterministically.
        stuck = _Subscriber(a, ("stuck", 0), bound=1, on_dead=lambda s: None)
        with shipper._lock:
            shipper._subs.append(stuck)
        for day in range(3):
            engine.ingest_batch([observation(day)])
            engine.flush()
            saver.save(engine)
            shipper.ship(saver)
        assert shipper.resyncs >= 1
        # The queue is exactly the current chain, restarted from seq 0.
        queued = [message for message in stuck._queue]
        assert [m[1]["seq"] for m in queued] == list(range(len(queued)))
        assert queued[0][1]["seq"] == 0
        assembler = ChainAssembler()
        for _, meta, raw in queued:
            assembler.apply(raw)
        assert state_json(assembler.state()) == state_json(read_state(path))
        a.close()
        b.close()


# -- link loss -------------------------------------------------------------


def test_follower_reconnects_and_catches_up(tmp_path):
    """A dropped connection heals: the follower redials, resubscribes
    with its high-water mark, and converges on the final chain."""
    import socket as socketlib

    with SegmentShipper() as shipper:
        primary = StreamingCampaign(
            build_campaign(),
            checkpoint_path=tmp_path / "primary.ckpt",
            checkpoint_every=1,
            checkpoint_format="binary",
            shipper=shipper,
        )
        with ReplicaFollower(
            shipper.address, authkey=shipper.authkey, retry_interval=0.05
        ) as follower:
            follower.start()
            primary.run(max_days=2)
            assert wait_for(lambda: follower.applied_seq >= 1)
            # Sever the link out from under the follower.
            with shipper._lock:
                victim = shipper._subs[0]
            try:
                victim.sock.shutdown(socketlib.SHUT_RDWR)
            except OSError:
                pass
            victim.sock.close()
            assert wait_for(lambda: follower.reconnects >= 1)
            assert wait_for(lambda: shipper.subscribers >= 1)
            primary.run()  # the rest ships over the new link
            infos = chain_info(tmp_path / "primary.ckpt")
            assert wait_for(lambda: follower.applied_seq == infos[-1].seq)
            assert state_json(follower.state) == state_json(
                read_state(tmp_path / "primary.ckpt")
            )


# -- the headline drill: SIGKILL, promote, resume --------------------------

_PRIMARY_SCRIPT = """\
import sys, time
sys.path[:0] = [{src!r}, {here!r}]
from _world import build_campaign
from repro.replicate import SegmentShipper
from repro.stream.campaign import StreamingCampaign

shipper = SegmentShipper(authkey="drill")
print("ADDRESS", shipper.address, flush=True)
campaign = StreamingCampaign(
    build_campaign(),
    checkpoint_path={ckpt!r},
    checkpoint_every=1,
    checkpoint_format="binary",
    shipper=shipper,
)
# Slow the days down so the parent can SIGKILL mid-campaign.
campaign.on_day_complete = lambda day: time.sleep(0.3)
campaign.run()
print("FINISHED", flush=True)
"""


def test_sigkill_primary_promote_resume_byte_identity(tmp_path):
    """The failover drill against a real process: SIGKILL the primary
    mid-campaign, promote the follower, resume, and land on the
    uninterrupted run's exact final state."""
    reference = StreamingCampaign(build_campaign())
    reference.run()

    ckpt = tmp_path / "primary.ckpt"
    script = tmp_path / "primary.py"
    script.write_text(
        _PRIMARY_SCRIPT.format(src=SRC, here=HERE, ckpt=str(ckpt))
    )
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        assert line.startswith("ADDRESS "), f"unexpected first line: {line!r}"
        address = line.split()[1]
        with ReplicaFollower(address, authkey="drill") as follower:
            follower.start()
            assert wait_for(lambda: follower.applied_seq >= 2, timeout=30.0)
            process.kill()  # SIGKILL: no cleanup, no final checkpoint
            process.wait(timeout=30)

            promoted = follower.promote(tmp_path / "takeover.ckpt")
        # The promoted chain is a byte prefix of the dead primary's
        # file (the primary may have written one more segment than the
        # follower saw before dying).
        primary_bytes = ckpt.read_bytes()
        promoted_bytes = promoted.read_bytes()
        assert primary_bytes[: len(promoted_bytes)] == promoted_bytes

        resumed = StreamingCampaign.resume(build_campaign(), promoted)
        assert 0 < resumed.result.days_run < reference.result.days_run
        resumed.run()
        assert state_json(engine_state(resumed.engine)) == state_json(
            engine_state(reference.engine)
        )
        assert resumed.result.days_run == reference.result.days_run
        assert resumed.result.probes_sent == reference.result.probes_sent
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
