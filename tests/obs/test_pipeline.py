"""Telemetry threaded through the stream pipeline.

Pins the two ends of the contract: enabled instrumentation reports the
truth (counters match what the engines actually did), and disabled or
enabled alike the *result* path is untouched -- ``engine_state`` bytes
identical, ``_obs`` exactly ``None`` when nothing is attached.  The
seeded fuzz harness covers the same invariant across randomized
streams; these are the deterministic, debuggable versions.
"""

import io
import json

from repro.core.records import ObservationStore, ProbeObservation
from repro.net.eui64 import mac_to_eui64_iid
from repro.obs import Dashboard, Telemetry
from repro.stream.checkpoint import engine_state, load_engine, save_engine
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.feeds import dedup_feed

NET48 = 0x20010DB80000


def corpus(days=3, devices=4) -> list[ProbeObservation]:
    out = []
    for day in range(days):
        for d in range(devices):
            iid = mac_to_eui64_iid(0x00005E0000 << 8 | d)
            net64 = (NET48 << 16) | ((d * 7 + day) % (1 << 16))  # daily move
            out.append(
                ProbeObservation(
                    day=day,
                    t_seconds=day * 86_400.0 + d,
                    target=(net64 << 64) | 1,
                    source=(net64 << 64) | iid,
                )
            )
    return out


def test_disabled_mode_attaches_nothing():
    engine = StreamEngine(StreamConfig(num_shards=2))
    assert engine._obs is None  # the whole disabled cost: one None check
    engine.ingest_batch(corpus())
    engine.flush()
    assert engine._obs is None


def test_enabled_counters_report_the_truth():
    telemetry = Telemetry(events=io.StringIO())
    engine = StreamEngine(StreamConfig(num_shards=2), telemetry=telemetry)
    stream = corpus(days=3, devices=4)
    engine.ingest_batch(stream)
    engine.flush()
    counters = telemetry.snapshot()["counters"]
    assert counters["repro_stream_responses_total"] == len(stream)
    assert counters["repro_stream_batches_total"] == 1
    assert counters["repro_stream_days_closed_total"] == 2  # 3 days, 2 diffs
    assert counters["repro_stream_rotation_events_total"] == 2  # daily movers
    gauges = telemetry.snapshot()["gauges"]
    assert gauges["repro_stream_current_day"] == 2


def test_enabled_and_disabled_checkpoints_byte_identical():
    stream = corpus()
    plain = StreamEngine(StreamConfig(num_shards=2))
    observed = StreamEngine(
        StreamConfig(num_shards=2), telemetry=Telemetry(events=io.StringIO())
    )
    plain.ingest_batch(stream)
    observed.ingest_batch(stream)
    plain.flush()
    observed.flush()
    assert json.dumps(engine_state(plain)) == json.dumps(engine_state(observed))


def test_store_instruments_count_appended_rows():
    telemetry = Telemetry()
    store = ObservationStore()
    store.attach_telemetry(telemetry)
    stream = corpus()
    store.extend(stream)
    assert len(store) == len(stream)  # forces any pending buffer through
    counters = telemetry.snapshot()["counters"]
    (series,) = [k for k in counters if k.startswith("repro_store_append_rows")]
    assert "backend=" in series
    assert counters[series] == len(stream)


def test_checkpoint_save_load_instrumented(tmp_path):
    events = io.StringIO()
    telemetry = Telemetry(events=events)
    engine = StreamEngine(StreamConfig(num_shards=2))
    engine.ingest_batch(corpus())
    engine.flush()
    path = save_engine(engine, tmp_path / "ck.json", telemetry=telemetry)
    restored = load_engine(path, telemetry=telemetry)
    assert json.dumps(engine_state(restored)) == json.dumps(engine_state(engine))

    snapshot = telemetry.snapshot()
    assert snapshot["counters"]["repro_checkpoint_written_total"] == 1
    assert snapshot["gauges"]["repro_checkpoint_bytes"] == path.stat().st_size
    assert snapshot["histograms"]["repro_checkpoint_serialize_seconds"]["count"] == 1
    assert snapshot["histograms"]["repro_checkpoint_restore_seconds"]["count"] == 1
    written = [
        json.loads(line)
        for line in events.getvalue().splitlines()
        if json.loads(line)["event"] == "checkpoint_written"
    ]
    assert len(written) == 1 and written[0]["bytes"] == path.stat().st_size
    # Restored engines keep reporting: telemetry was re-attached.
    assert restored._obs is not None


def test_dedup_feed_counter_hookup():
    telemetry = Telemetry()
    counter = telemetry.registry.counter("repro_feed_dedup_suppressed_total")
    stream = corpus(days=1)
    feed = dedup_feed(stream + stream, window=64, counter=counter)
    drained = list(feed)
    assert len(drained) == len(stream)
    assert feed.suppressed == len(stream)
    assert counter.value == len(stream)


def test_dashboard_renders_rates_from_deltas():
    telemetry = Telemetry()
    responses = telemetry.registry.counter("repro_stream_responses_total")
    telemetry.registry.gauge("repro_stream_current_day").set(4)
    ticks = iter([0.0, 1.0, 2.0])
    out = io.StringIO()
    dashboard = Dashboard(
        telemetry, stream=out, clock=lambda: next(ticks), total_days=5
    )
    responses.value = 1000
    dashboard.tick()  # first frame: no prior window, rate 0
    responses.value = 3500
    dashboard.tick()  # second frame: 2500 responses over 1s
    frames = out.getvalue()
    assert "rate        0/s" in frames
    assert "2,500/s" in frames
    assert "day     4" in frames
    assert "[" in frames and "]" in frames  # progress bar rendered


def test_dashboard_rate_clamps_at_zero_after_resume():
    """A checkpoint resume swaps in a fresh registry whose counter
    restarts below the last frame's value; the rate must clamp at 0,
    never render negative."""
    telemetry = Telemetry()
    responses = telemetry.registry.counter("repro_stream_responses_total")
    ticks = iter([0.0, 1.0, 2.0])
    dashboard = Dashboard(telemetry, stream=io.StringIO(), clock=lambda: next(ticks))
    responses.value = 5000
    dashboard.tick()
    # The resume: same dashboard, counter restarted from zero territory.
    responses.value = 100
    frame = dashboard.render()
    assert "-" not in frame.split("rate")[1].split("/s")[0]
    assert "rate        0/s" in frame


def test_dashboard_worker_rows_survive_extra_labels():
    """Worker rows must parse via the registry's label tuples: a second
    label (in any order) on the dispatch series used to break the
    ``series.split('worker=\"')`` parser."""
    telemetry = Telemetry()
    telemetry.registry.counter(
        "repro_parallel_dispatch_rows_total",
        "rows",
        {"worker": "3", "host": "alpha"},  # sorts host before worker
    ).value = 640
    telemetry.registry.counter(
        "repro_parallel_dispatch_rows_total",
        "rows",
        {"zone": "b", "worker": "11"},  # sorts worker before zone
    ).value = 320
    frame = Dashboard(telemetry, stream=io.StringIO()).render()
    assert "worker  3" in frame
    assert "worker 11" in frame
    assert "640" in frame and "320" in frame


def test_dashboard_serve_row():
    telemetry = Telemetry()
    telemetry.registry.counter(
        "repro_serve_requests_total", "req", {"endpoint": "iid"}
    ).value = 40
    telemetry.registry.counter(
        "repro_serve_requests_total", "req", {"endpoint": "stats"}
    ).value = 2
    telemetry.registry.gauge("repro_serve_snapshot_version").set(7)
    frame = Dashboard(telemetry, stream=io.StringIO()).render()
    assert "serve" in frame and "42" in frame and "snapshot v7" in frame
