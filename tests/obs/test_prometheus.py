"""Prometheus text exposition: a golden rendering pins the format."""

from repro.obs import MetricsRegistry, to_prometheus

GOLDEN = """\
# HELP repro_stream_responses_total Observations ingested
# TYPE repro_stream_responses_total counter
repro_stream_responses_total 1234
# HELP repro_parallel_buffer_rows Rows buffered
# TYPE repro_parallel_buffer_rows gauge
repro_parallel_buffer_rows{worker="0"} 17
repro_parallel_buffer_rows{worker="1"} 0
# HELP repro_store_append_seconds Bulk append latency
# TYPE repro_store_append_seconds histogram
repro_store_append_seconds_bucket{backend="sqlite",le="0.001"} 2
repro_store_append_seconds_bucket{backend="sqlite",le="0.1"} 3
repro_store_append_seconds_bucket{backend="sqlite",le="+Inf"} 4
repro_store_append_seconds_sum{backend="sqlite"} 1.515
repro_store_append_seconds_count{backend="sqlite"} 4
"""


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_stream_responses_total", "Observations ingested"
    ).inc(1234)
    registry.gauge(
        "repro_parallel_buffer_rows", "Rows buffered", {"worker": "0"}
    ).set(17)
    registry.gauge("repro_parallel_buffer_rows", "Rows buffered", {"worker": "1"})
    histogram = registry.histogram(
        "repro_store_append_seconds",
        "Bulk append latency",
        buckets=(0.001, 0.1),
        labels={"backend": "sqlite"},
    )
    for value in (0.0004, 0.0006, 0.014, 1.5):
        histogram.observe(value)
    return registry


def test_golden_exposition():
    assert to_prometheus(build_registry()) == GOLDEN


def test_headers_render_once_per_family():
    text = to_prometheus(build_registry())
    assert text.count("# TYPE repro_parallel_buffer_rows gauge") == 1
    assert text.count("# HELP repro_parallel_buffer_rows") == 1


def test_bucket_counts_are_cumulative_and_end_at_count():
    text = to_prometheus(build_registry())
    # le="0.1" already includes the two le="0.001" observations, and
    # the +Inf bucket equals _count.
    assert 'le="0.001"} 2' in text
    assert 'le="0.1"} 3' in text
    assert 'le="+Inf"} 4' in text


def test_empty_registry_renders_empty():
    assert to_prometheus(MetricsRegistry()) == ""


def test_label_values_escaped():
    registry = MetricsRegistry()
    registry.counter("repro_esc_total", labels={"path": 'a"b\\c\nd'})
    assert 'path="a\\"b\\\\c\\nd"' in to_prometheus(registry)


def test_telemetry_prometheus_matches_render():
    from repro.obs import Telemetry

    telemetry = Telemetry(build_registry())
    assert telemetry.prometheus() == GOLDEN
