"""MetricsRegistry semantics: identity, kinds, merge, spans, snapshot."""

import time

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import LATENCY_BUCKETS, SIZE_BUCKETS


def test_counter_semantics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "help text")
    counter.inc()
    counter.inc(4)
    counter.value += 3  # the hot-path spelling
    assert counter.value == 8
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_semantics():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_test_depth")
    gauge.set(7)
    gauge.inc()
    gauge.dec(3)
    assert gauge.value == 5  # gauges go down; counters refuse to


def test_histogram_buckets_sum_count():
    histogram = MetricsRegistry().histogram(
        "repro_test_rows", buckets=(1, 10, 100)
    )
    for value in (0, 1, 5, 10, 50, 1000):
        histogram.observe(value)
    # bisect_left on inclusive upper edges: 0,1 -> le=1; 5,10 -> le=10;
    # 50 -> le=100; 1000 -> +Inf overflow cell.
    assert histogram.counts == [2, 2, 1, 1]
    assert histogram.count == 6
    assert histogram.sum == 1066


def test_histogram_quantile_reports_bucket_edge():
    histogram = MetricsRegistry().histogram(
        "repro_test_latency", buckets=(0.01, 0.1, 1.0)
    )
    assert histogram.quantile(0.5) == 0.0  # empty
    for _ in range(90):
        histogram.observe(0.005)
    for _ in range(10):
        histogram.observe(0.5)
    assert histogram.quantile(0.5) == 0.01
    assert histogram.quantile(0.99) == 1.0
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("repro_test_bad", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("repro_test_bad", buckets=(3, 1, 2))
    with pytest.raises(ValueError):
        registry.histogram("repro_test_bad", buckets=(1, 1, 2))


def test_identity_get_or_create():
    registry = MetricsRegistry()
    a = registry.counter("repro_test_total")
    b = registry.counter("repro_test_total")
    assert a is b
    # Label insertion order never forks identity.
    x = registry.counter("repro_test_labeled", labels={"a": "1", "b": "2"})
    y = registry.counter("repro_test_labeled", labels={"b": "2", "a": "1"})
    assert x is y
    assert x is not registry.counter("repro_test_labeled", labels={"a": "2"})
    assert len(registry) == 3


def test_kind_and_bucket_conflicts_raise():
    registry = MetricsRegistry()
    registry.counter("repro_test_total")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.gauge("repro_test_total")
    registry.histogram("repro_test_rows", buckets=SIZE_BUCKETS)
    with pytest.raises(ValueError, match="different buckets"):
        registry.histogram("repro_test_rows", buckets=LATENCY_BUCKETS)
    # Same buckets: same instrument, no complaint.
    assert registry.histogram("repro_test_rows", buckets=SIZE_BUCKETS)


def test_invalid_names_raise():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("0starts_with_digit")
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("has-dash")
    with pytest.raises(ValueError, match="invalid label name"):
        registry.counter("repro_ok_total", labels={"bad-label": "x"})


def test_span_times_into_histogram():
    registry = MetricsRegistry()
    with registry.span("repro_test_seconds"):
        time.sleep(0.002)
    histogram = registry.histogram("repro_test_seconds")
    assert histogram.count == 1
    assert histogram.sum >= 0.002


def test_spans_nest_independently():
    registry = MetricsRegistry()
    outer = registry.histogram("repro_outer_seconds")
    inner = registry.histogram("repro_inner_seconds")
    with outer.time():
        time.sleep(0.002)
        with inner.time():
            time.sleep(0.001)
    # Each with-entry owns its own start time: the outer span covers
    # the inner one, and re-entering the same histogram also nests.
    assert outer.count == inner.count == 1
    assert outer.sum > inner.sum
    with outer.time():
        with outer.time():
            time.sleep(0.001)
    assert outer.count == 3


def test_snapshot_is_plain_dicts():
    registry = MetricsRegistry()
    registry.counter("repro_a_total").inc(3)
    registry.gauge("repro_b", labels={"worker": "0"}).set(2)
    registry.histogram("repro_c_rows", buckets=(1, 10)).observe(5)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"repro_a_total": 3}
    assert snapshot["gauges"] == {'repro_b{worker="0"}': 2}
    assert snapshot["histograms"]["repro_c_rows"] == {
        "bounds": [1.0, 10.0],
        "counts": [0, 1, 0],
        "sum": 5,
        "count": 1,
    }


def test_merge_folds_values():
    ours = MetricsRegistry()
    theirs = MetricsRegistry()
    ours.counter("repro_n_total").inc(1)
    theirs.counter("repro_n_total").inc(2)
    ours.gauge("repro_depth").set(9)
    theirs.gauge("repro_depth").set(4)
    ours.histogram("repro_rows", buckets=(1, 10)).observe(5)
    theirs.histogram("repro_rows", buckets=(1, 10)).observe(50)
    theirs.counter("repro_only_theirs_total", labels={"w": "1"}).inc(7)

    ours.merge(theirs)
    assert ours.counter("repro_n_total").value == 3  # counters add
    assert ours.gauge("repro_depth").value == 4  # gauges: last writer wins
    merged = ours.histogram("repro_rows", buckets=(1, 10))
    assert merged.counts == [0, 1, 1]
    assert merged.count == 2 and merged.sum == 55
    assert ours.counter("repro_only_theirs_total", labels={"w": "1"}).value == 7


def test_iteration_in_creation_order():
    registry = MetricsRegistry()
    registry.gauge("repro_z")
    registry.counter("repro_a_total")
    registry.gauge("repro_m")
    assert [m.name for m in registry] == ["repro_z", "repro_a_total", "repro_m"]
