"""EventLog and the Telemetry facade: sinks, clocks, round-trips."""

import io
import json

import pytest

from repro.obs import EventLog, MetricsRegistry, Telemetry, read_events


def fixed_clock():
    return 1_754_500_000.123456789


def test_emit_envelope_with_injected_clock():
    buffer = io.StringIO()
    log = EventLog(buffer, clock=fixed_clock)
    log.emit("day_close", day=4, changed=12)
    line = buffer.getvalue().strip()
    assert json.loads(line) == {
        "t": 1_754_500_000.123457,  # rounded to microseconds
        "event": "day_close",
        "day": 4,
        "changed": 12,
    }
    assert log.emitted == 1


def test_path_sink_appends_and_round_trips(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path, clock=fixed_clock) as log:
        log.emit("campaign_start", days=5)
        log.emit("day_open", day=2)
    # Append mode: a second log continues the same file.
    with EventLog(path, clock=fixed_clock) as log:
        log.emit("campaign_finished")
    events = read_events(path)
    assert [e["event"] for e in events] == [
        "campaign_start",
        "day_open",
        "campaign_finished",
    ]
    assert events[0]["days"] == 5


def test_file_like_sink_is_not_closed():
    buffer = io.StringIO()
    log = EventLog(buffer)
    log.emit("worker_join", worker=0)
    log.close()
    assert not buffer.closed  # caller-owned sinks stay open


def test_telemetry_event_path_coercion(tmp_path):
    path = tmp_path / "events.jsonl"
    telemetry = Telemetry(event_path=path)
    telemetry.emit("rotation_detected", day=3)
    telemetry.close()
    assert read_events(path)[0]["event"] == "rotation_detected"


def test_telemetry_without_sink_emit_is_noop():
    telemetry = Telemetry()
    telemetry.emit("day_open", day=1)  # must not raise
    assert telemetry.events is None
    telemetry.close()


def test_telemetry_rejects_both_sinks(tmp_path):
    with pytest.raises(ValueError):
        Telemetry(events=io.StringIO(), event_path=tmp_path / "e.jsonl")


def test_telemetry_adopts_registry_and_eventlog():
    registry = MetricsRegistry()
    log = EventLog(io.StringIO())
    telemetry = Telemetry(registry, log)
    assert telemetry.registry is registry
    assert telemetry.events is log
