"""Integration: the paper's full attack narrative on one small world.

Builds a two-provider internet, runs discovery, learns the provider
layouts, tracks a household for a week, predicts its next prefix, and
verifies the remediation story -- asserting at each step the privacy
claim the paper makes.
"""

import pytest

from repro.core.allocation import AllocationInference
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.pipeline import DiscoveryPipeline, PipelineConfig
from repro.core.predictor import fit_increment_model, prediction_hit_rate
from repro.core.records import ObservationStore
from repro.core.rotation_pool import RotationPoolInference
from repro.core.timeseries import iid_trajectory
from repro.core.tracker import AsProfile, DeviceTracker, TrackerConfig
from repro.net.addr import iid_of
from repro.net.eui64 import is_eui64_iid
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, Zmap6
from repro.simnet.builder import InternetSpec, PoolSpec, ProviderSpec, build_internet
from repro.simnet.rotation import IncrementRotation

ALWAYS = (("admin_prohibited", 1.0),)


@pytest.fixture(scope="module")
def world():
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001, name="RotorNet", country="DE",
                pools=(PoolSpec(46, 56, 0.8, IncrementRotation(24.0)),),
                eui64_fraction=1.0, online_fraction=1.0,
                new_since_seed_fraction=0.0, retired_fraction=0.0,
                response_mix=ALWAYS,
            ),
            ProviderSpec(
                asn=65002, name="PrivacyNet", country="FR",
                pools=(PoolSpec(46, 56, 0.8, IncrementRotation(24.0)),),
                eui64_fraction=0.0,  # all CPE use privacy extensions
                online_fraction=1.0,
                new_since_seed_fraction=0.0, retired_fraction=0.0,
                response_mix=ALWAYS,
            ),
        ),
        seed=21,
    )
    internet = build_internet(spec)
    pipeline_result = DiscoveryPipeline(
        internet, PipelineConfig(seed=21, coverage_48s=16)
    ).run()
    campaign = Campaign(
        internet,
        sorted(pipeline_result.rotating_48s, key=lambda p: p.network),
        CampaignConfig(days=8, start_day=2, seed=21),
    )
    campaign_result = campaign.run()
    return internet, pipeline_result, campaign_result


class TestDiscoveryStep:
    def test_only_eui64_provider_discovered(self, world):
        internet, pipeline_result, _ = world
        rotor = internet.provider_of_asn(65001).pools[0]
        privacy = internet.provider_of_asn(65002).pools[0]
        rotor_found = {
            p for p in pipeline_result.rotating_48s
            if rotor.prefix.contains_prefix(p)
        }
        privacy_found = {
            p for p in pipeline_result.rotating_48s
            if privacy.prefix.contains_prefix(p)
        }
        assert len(rotor_found) == 4
        # PrivacyNet answers probes, but never with EUI-64 sources, so
        # the EUI-64-driven pipeline ignores it entirely: privacy
        # extensions work when the CPE actually uses them.
        assert not privacy_found

    def test_campaign_sees_stable_iids_at_moving_addresses(self, world):
        _, _, campaign_result = world
        store = campaign_result.store
        iids = store.eui64_iids()
        assert iids
        moved = sum(1 for iid in iids if len(store.net64s_of_iid(iid)) > 1)
        assert moved / len(iids) > 0.95


class TestInferenceStep:
    def test_learned_layout_matches_ground_truth(self, world):
        internet, _, campaign_result = world
        rng_scan = Zmap6(internet, ScanConfig(seed=5))
        import random
        sample = internet.provider_of_asn(65001).pools[0].prefix.subnet(0, 52)
        scan = rng_scan.scan(
            one_target_per_subnet(sample, 64, random.Random(5)),
            start_seconds=2 * 86400.0 + 3600.0,
        )
        sample_store = ObservationStore()
        sample_store.add_responses(scan.responses, day=2)
        allocation = AllocationInference.from_observations(
            65001, sample_store.eui64_only()
        )
        assert allocation.inferred_plen == 56

        pool_inference = RotationPoolInference.from_observations(
            65001, campaign_result.store.eui64_only()
        )
        assert pool_inference.rotates
        assert pool_inference.inferred_plen < 56


class TestTrackingStep:
    def test_household_followed_all_week(self, world):
        internet, _, campaign_result = world
        store = campaign_result.store
        iid = sorted(store.eui64_iids())[7]
        last = max(store.observations_of_iid(iid), key=lambda o: o.t_seconds)
        tracker = DeviceTracker(
            internet,
            {65001: AsProfile(65001, 56, 50)},
            TrackerConfig(seed=21),
        )
        track = tracker.track(iid, last.source, days=list(range(10, 17)))
        assert track.days_found == 7
        assert track.distinct_net64s == 8
        for outcome in track.outcomes:
            assert outcome.probes_sent <= 64 + 256  # /50 sweep + one widening

    def test_prediction_collapses_cost_to_one_probe(self, world):
        internet, _, campaign_result = world
        store = campaign_result.store
        iid = sorted(store.eui64_iids())[3]
        pool = internet.provider_of_asn(65001).pools[0]
        points = iid_trajectory(store, iid)
        model = fit_increment_model(points[:5], pool.prefix)
        assert model is not None
        assert prediction_hit_rate(model, points) == 1.0
        # Predict tomorrow's address, probe only it.
        future_day = max(p.day for p in points) + 1
        predicted = model.predict_address(future_day, 0x1234)
        response = internet.probe(predicted, (future_day * 24 + 12) * 3600.0)
        assert response is not None
        assert iid_of(response.source) == iid


class TestRemediationStep:
    def test_firmware_update_breaks_the_attack(self, world):
        internet, _, campaign_result = world
        store = campaign_result.store
        iid = sorted(store.eui64_iids())[11]
        last = max(store.observations_of_iid(iid), key=lambda o: o.t_seconds)
        # Locate the device and flip it to privacy addressing at day 12.
        residence = internet.resolve(last.source, last.t_seconds / 3600.0)
        residence.device.privacy_switch_hours = 12 * 24.0

        tracker = DeviceTracker(
            internet, {65001: AsProfile(65001, 56, 50)}, TrackerConfig(seed=4)
        )
        track = tracker.track(iid, last.source, days=[10, 11, 12, 13])
        found_by_day = {o.day: o.found for o in track.outcomes}
        assert found_by_day[10] and found_by_day[11]
        assert not found_by_day[12] and not found_by_day[13]

    def test_post_remediation_addresses_unlinkable(self, world):
        internet, _, _ = world
        pool = internet.provider_of_asn(65001).pools[0]
        device = pool.devices[0]
        device.privacy_switch_hours = 0.0
        wan_day1 = pool.wan_address_of(0, 30.0)
        wan_day2 = pool.wan_address_of(0, 54.0)
        assert not is_eui64_iid(iid_of(wan_day1))
        assert iid_of(wan_day1) != iid_of(wan_day2)
        device.privacy_switch_hours = None  # restore for other tests
