"""Example smoke tests: every script in examples/ must keep running.

Each example executes in a subprocess exactly as a reader would run it
(``PYTHONPATH=src python examples/<name>.py``), at the ``tiny`` scale
for the scripts that take one (the others are already tiny), so
examples cannot silently rot as the library evolves.  The test is
discovery-based: a new example is covered the day it lands.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
TIMEOUT_SECONDS = 120


def test_examples_discovered():
    assert len(EXAMPLES) >= 6  # the suite must actually find them


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(example), "tiny"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_SECONDS,
    )
    assert result.returncode == 0, (
        f"{example.name} failed (exit {result.returncode})\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
