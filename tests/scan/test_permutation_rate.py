"""Tests for scan-order permutations and rate limiting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scan.permutation import (
    FeistelPermutation,
    MultiplicativeCycle,
    _miller_rabin,
    next_prime,
)
from repro.scan.rate import IcmpRateLimiter, TokenBucket


class TestPrimes:
    def test_small_primes(self):
        assert _miller_rabin(2)
        assert _miller_rabin(3)
        assert _miller_rabin(65537)
        assert not _miller_rabin(1)
        assert not _miller_rabin(65536)
        assert not _miller_rabin(561)  # Carmichael number

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(65536) == 65537

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=50)
    def test_next_prime_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert _miller_rabin(p)


class TestMultiplicativeCycle:
    def test_is_permutation(self):
        cycle = MultiplicativeCycle(1000, seed=42)
        values = list(cycle)
        assert sorted(values) == list(range(1000))

    def test_deterministic_given_seed(self):
        a = list(MultiplicativeCycle(500, seed=7))
        b = list(MultiplicativeCycle(500, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(MultiplicativeCycle(500, seed=1))
        b = list(MultiplicativeCycle(500, seed=2))
        assert a != b

    def test_not_identity_order(self):
        values = list(MultiplicativeCycle(1000, seed=3))
        assert values != list(range(1000))

    def test_domain_one(self):
        assert list(MultiplicativeCycle(1, seed=9)) == [0]

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            MultiplicativeCycle(0, seed=1)

    def test_first_k(self):
        cycle = MultiplicativeCycle(100, seed=5)
        first = cycle.first(10)
        assert len(first) == 10
        assert first == list(cycle)[:10]

    @given(st.integers(min_value=1, max_value=3000), st.integers())
    @settings(max_examples=30, deadline=None)
    def test_permutation_property(self, n, seed):
        values = list(MultiplicativeCycle(n, seed))
        assert sorted(values) == list(range(n))


class TestFeistelPermutation:
    def test_is_permutation(self):
        perm = FeistelPermutation(1000, key=42)
        values = [perm.forward(i) for i in range(1000)]
        assert sorted(values) == list(range(1000))

    def test_inverse(self):
        perm = FeistelPermutation(1000, key=42)
        for i in range(1000):
            assert perm.inverse(perm.forward(i)) == i

    def test_forward_of_inverse(self):
        perm = FeistelPermutation(257, key=9)
        for i in range(257):
            assert perm.forward(perm.inverse(i)) == i

    def test_different_keys_differ(self):
        a = [FeistelPermutation(512, key=1).forward(i) for i in range(512)]
        b = [FeistelPermutation(512, key=2).forward(i) for i in range(512)]
        assert a != b

    def test_domain_bounds_checked(self):
        perm = FeistelPermutation(10, key=1)
        with pytest.raises(ValueError):
            perm.forward(10)
        with pytest.raises(ValueError):
            perm.inverse(-1)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            FeistelPermutation(0, key=1)

    def test_iter_matches_forward(self):
        perm = FeistelPermutation(50, key=77)
        assert list(perm) == [perm.forward(i) for i in range(50)]

    @given(st.integers(min_value=1, max_value=5000), st.integers())
    @settings(max_examples=40, deadline=None)
    def test_bijection_property(self, n, key):
        perm = FeistelPermutation(n, key)
        sample = range(0, n, max(1, n // 64))
        for i in sample:
            f = perm.forward(i)
            assert 0 <= f < n
            assert perm.inverse(f) == i


class TestPermutationEdgeCases:
    """Degenerate and awkward domains both constructions must handle."""

    @pytest.mark.parametrize("n", [0, -1, -100])
    def test_non_positive_domains_rejected(self, n):
        with pytest.raises(ValueError):
            MultiplicativeCycle(n, seed=1)
        with pytest.raises(ValueError):
            FeistelPermutation(n, key=1)

    def test_domain_one_is_identity(self):
        assert list(MultiplicativeCycle(1, seed=123)) == [0]
        perm = FeistelPermutation(1, key=123)
        assert perm.forward(0) == 0
        assert perm.inverse(0) == 0
        assert list(perm) == [0]

    def test_domain_two(self):
        assert sorted(MultiplicativeCycle(2, seed=4)) == [0, 1]
        perm = FeistelPermutation(2, key=4)
        assert sorted(perm.forward(i) for i in range(2)) == [0, 1]
        assert all(perm.inverse(perm.forward(i)) == i for i in range(2))

    @pytest.mark.parametrize("n", [3, 6, 7, 100, 257, 1000, 4099])
    def test_non_power_of_two_domains_full_cycle_unique(self, n):
        """One full cycle visits every value exactly once -- no repeats,
        no skips -- even when the domain is not a power of two (cycle
        walking for Feistel, prime-gap skipping for the cycle)."""
        from collections import Counter

        cycle_counts = Counter(MultiplicativeCycle(n, seed=9))
        assert cycle_counts == Counter({v: 1 for v in range(n)})
        feistel_counts = Counter(FeistelPermutation(n, key=9))
        assert feistel_counts == Counter({v: 1 for v in range(n)})

    def test_prime_adjacent_domains(self):
        """n such that n+1 is prime (no skipping) and n one past a prime
        (maximal skipping) both cover the domain."""
        for n in (4, 6, 10, 12):  # n+1 prime
            assert sorted(MultiplicativeCycle(n, seed=2)) == list(range(n))
        for n in (8, 12, 14, 18):  # n-1 prime -> p = next prime is farther
            assert sorted(MultiplicativeCycle(n, seed=2)) == list(range(n))

    def test_seed_changes_start_not_membership(self):
        a = set(MultiplicativeCycle(97, seed=1))
        b = set(MultiplicativeCycle(97, seed=2))
        assert a == b == set(range(97))


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert bucket.try_consume(0.0)
        assert bucket.try_consume(0.0)
        assert bucket.try_consume(0.0)
        assert not bucket.try_consume(0.0)

    def test_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_consume(0.0)
        assert bucket.try_consume(0.0)
        assert not bucket.try_consume(0.0)
        assert bucket.try_consume(1.0)  # 2 tokens/s refilled

    def test_capacity_capped(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        bucket.try_consume(0.0)
        assert bucket.available(1000.0) == pytest.approx(2.0)

    def test_backwards_time_clamped(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_consume(5.0)
        assert bucket.try_consume(4.0)  # no refill, but remaining burst spends
        assert not bucket.try_consume(3.5)
        assert bucket.try_consume(6.0)  # refill resumes from t=5

    def test_large_rewind_resets_bucket(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_consume(100.0)
        assert bucket.try_consume(100.0)
        assert not bucket.try_consume(100.0)
        # Rewinding far past a full refill starts a fresh run.
        assert bucket.try_consume(10.0)
        assert bucket.try_consume(10.0)
        assert not bucket.try_consume(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestIcmpRateLimiter:
    def test_allows_within_rate(self):
        limiter = IcmpRateLimiter(rate=10.0, burst=5.0)
        allowed = sum(limiter.allow(i * 0.1) for i in range(20))
        assert allowed == 20  # 10/s stream fits a 10/s limiter

    def test_suppresses_burst(self):
        limiter = IcmpRateLimiter(rate=1.0, burst=2.0)
        results = [limiter.allow(0.0) for _ in range(5)]
        assert results == [True, True, False, False, False]
        assert limiter.emitted == 2
        assert limiter.suppressed == 3
