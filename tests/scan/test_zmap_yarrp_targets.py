"""Integration tests: scanners driving the simulated Internet."""

import random

import pytest

from repro.net.addr import Prefix, iid_of
from repro.net.eui64 import mac_to_eui64_iid
from repro.scan.targets import (
    iter_subnet_targets,
    one_target_per_subnet,
    random_iid_targets,
    targets_for_pool,
)
from repro.scan.yarrp import TracerouteRecord, Yarrp
from repro.scan.zmap import ScanConfig, Zmap6
from repro.simnet.device import CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation


@pytest.fixture()
def internet() -> SimInternet:
    pool = RotationPool(
        prefix=Prefix.parse("2001:db8::/48"),
        delegation_plen=56,
        policy=IncrementRotation(interval_hours=24.0),
        pool_key=42,
    )
    for i in range(32):
        pool.add_device(CpeDevice(device_id=i + 1, mac=0x3810D5000200 + i))
    provider = Provider(
        asn=64512, name="T", country="DE",
        bgp_prefixes=[Prefix.parse("2001:db8::/32")], pools=[pool],
    )
    return SimInternet([provider], core_answers_unrouted=False)


class TestTargets:
    def test_random_iid_targets_inside(self):
        rng = random.Random(0)
        prefix = Prefix.parse("2001:db8::/48")
        targets = random_iid_targets(prefix, 50, rng)
        assert len(targets) == 50
        assert all(t in prefix for t in targets)

    def test_random_iid_targets_count_validation(self):
        with pytest.raises(ValueError):
            random_iid_targets(Prefix.parse("2001:db8::/48"), -1, random.Random(0))

    def test_one_target_per_subnet(self):
        rng = random.Random(0)
        prefix = Prefix.parse("2001:db8::/48")
        targets = one_target_per_subnet(prefix, 56, rng)
        assert len(targets) == 256
        for index, target in enumerate(targets):
            assert prefix.subnet_index(target, 56) == index

    def test_one_target_per_subnet_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            one_target_per_subnet(Prefix.parse("2001:db8::/48"), 32, rng)
        with pytest.raises(ValueError):
            one_target_per_subnet(Prefix.parse("2001:db8::/48"), 65, rng)

    def test_targets_for_pool_matches_subnet_generator(self):
        prefix = Prefix.parse("2001:db8::/46")
        a = targets_for_pool(prefix, 56, random.Random(5))
        b = one_target_per_subnet(prefix, 56, random.Random(5))
        assert a == b

    def test_iter_variant_lazy_equivalence(self):
        prefix = Prefix.parse("2001:db8::/56")
        eager = one_target_per_subnet(prefix, 64, random.Random(3))
        lazy = list(iter_subnet_targets(prefix, 64, random.Random(3)))
        assert eager == lazy


class TestZmap6:
    def test_scan_finds_all_online_devices(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        scanner = Zmap6(internet, ScanConfig(seed=3))
        result = scanner.scan(targets, start_seconds=0.0)
        assert result.probes_sent == 256
        expected_iids = {mac_to_eui64_iid(d.mac) for d in pool.devices}
        observed_iids = {iid_of(r.source) for r in result.responses}
        assert observed_iids == expected_iids

    def test_same_seed_same_order(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        a = Zmap6(internet, ScanConfig(seed=3)).scan(targets)
        b = Zmap6(internet, ScanConfig(seed=3)).scan(targets)
        assert [r.target for r in a.responses] == [r.target for r in b.responses]

    def test_different_seed_different_order(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        a = Zmap6(internet, ScanConfig(seed=3)).scan(targets)
        b = Zmap6(internet, ScanConfig(seed=4)).scan(targets)
        assert [r.target for r in a.responses] != [r.target for r in b.responses]

    def test_rate_determines_duration(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        result = Zmap6(internet, ScanConfig(rate_pps=100.0)).scan(targets)
        assert result.duration_seconds == pytest.approx(2.56)

    def test_probe_times_spaced_by_rate(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        result = Zmap6(internet, ScanConfig(rate_pps=1000.0)).scan(targets, 50.0)
        times = [r.time for r in result.responses]
        assert all(50.0 <= t < 50.0 + 0.256 + 1e-9 for t in times)

    def test_loss_reduces_responses(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        lossless = Zmap6(internet, ScanConfig(seed=1)).scan(targets)
        lossy = Zmap6(internet, ScanConfig(seed=1, loss_rate=0.5)).scan(targets)
        assert len(lossy.responses) < len(lossless.responses)

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            ScanConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            ScanConfig(rate_pps=0)

    def test_result_helpers(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        result = Zmap6(internet, ScanConfig(seed=1)).scan(targets)
        assert len(result.responders()) == 32
        assert len(result.pairs()) == len(result.responses)
        assert 0 < result.response_rate < 1

    def test_scan_until_stops_early(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        want = mac_to_eui64_iid(pool.devices[7].mac)
        response, sent = Zmap6(internet, ScanConfig(seed=9)).scan_until(targets, want)
        assert response is not None
        assert iid_of(response.source) == want
        assert sent <= 256

    def test_scan_until_miss_counts_all(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        response, sent = Zmap6(internet, ScanConfig(seed=9)).scan_until(targets, 0xDEAD)
        assert response is None
        assert sent == 256

    def test_ordered_mode(self, internet):
        pool = internet.providers[0].pools[0]
        targets = one_target_per_subnet(pool.prefix, 56, random.Random(1))
        config = ScanConfig(randomize_order=False)
        result = Zmap6(internet, config).scan(targets)
        probed_order = [r.target for r in result.responses]
        assert probed_order == sorted(probed_order)

    def test_empty_targets(self, internet):
        result = Zmap6(internet).scan([])
        assert result.probes_sent == 0
        assert result.responses == []


class TestYarrp:
    def test_eui64_last_hops(self, internet):
        pool = internet.providers[0].pools[0]
        targets = [pool.delegation_of(i, 0.0).network + 1 for i in range(8)]
        targets.append(Prefix.parse("2a00::/48").network + 1)  # unrouted
        yarrp = Yarrp(internet, seed=2)
        records = yarrp.eui64_last_hops(targets)
        assert len(records) == 8
        assert all(r.last_hop_is_eui64 for r in records)

    def test_trace_all_counts(self, internet):
        pool = internet.providers[0].pools[0]
        targets = [pool.delegation_of(i, 0.0).network + 1 for i in range(4)]
        records = Yarrp(internet, seed=2).trace_all(targets)
        assert len(records) == 4
        assert {r.target for r in records} == set(targets)

    def test_record_last_responsive_hop(self):
        record = TracerouteRecord(target=1, hops=(10, 20, None))
        assert record.last_responsive_hop == 20
        empty = TracerouteRecord(target=1, hops=(None, None))
        assert empty.last_responsive_hop is None
        assert not empty.last_hop_is_eui64

    def test_rate_validation(self, internet):
        with pytest.raises(ValueError):
            Yarrp(internet, rate_pps=0)

    def test_empty_targets(self, internet):
        assert Yarrp(internet).trace_all([]) == []
