"""Shared fixtures for streaming-layer tests (worlds live in _worlds.py)."""

import pytest

from _worlds import build_rotating_internet

from repro.simnet.internet import SimInternet


@pytest.fixture()
def rotating_internet() -> SimInternet:
    return build_rotating_internet()
