"""Batch-vs-stream equivalence: the subsystem's core guarantee.

Every streaming mode must reproduce its batch counterpart exactly --
same responses, same stores, same counters, same tracking outcomes --
because both are driven through the same probe loops and storage layer.
"""

import pytest

from _worlds import (
    CAMPAIGN_CONFIG,
    CAMPAIGN_PREFIXES,
    build_campaign,
    build_rotating_internet,
)

from repro.core.campaign import Campaign
from repro.core.tracker import AsProfile, DeviceTracker, TrackerConfig
from repro.scan.zmap import ScanConfig, Zmap6
from repro.stream.campaign import StreamingCampaign
from repro.stream.tracker import LivePursuit


def scan_targets(n=300, seed=11):
    import random

    from repro.net.addr import Prefix
    from repro.scan.targets import one_target_per_subnet

    rng = random.Random(seed)
    return one_target_per_subnet(Prefix.parse("2001:db8::/48"), 56, rng)[:n]


class TestScanStreamEquivalence:
    def test_stream_yields_scan_responses(self, rotating_internet):
        targets = scan_targets()
        scanner = Zmap6(rotating_internet, ScanConfig(seed=5))
        batch = scanner.scan(targets, start_seconds=100.0)
        stream = scanner.stream(targets, start_seconds=100.0)
        assert list(stream) == batch.responses
        assert stream.probes_sent == batch.probes_sent
        assert stream.duration_seconds == batch.duration_seconds

    def test_stream_with_loss_matches_scan(self, rotating_internet):
        targets = scan_targets()
        scanner = Zmap6(rotating_internet, ScanConfig(seed=5, loss_rate=0.2))
        batch = scanner.scan(targets, start_seconds=100.0)
        assert list(scanner.stream(targets, start_seconds=100.0)) == batch.responses

    def test_early_stop_reports_probe_cost(self, rotating_internet):
        targets = scan_targets()
        scanner = Zmap6(rotating_internet, ScanConfig(seed=5))
        batch = scanner.scan(targets, start_seconds=100.0)
        assert batch.responses
        want = batch.responses[0].source & ((1 << 64) - 1)
        response, sent = scanner.scan_until(targets, want, start_seconds=100.0)
        assert response is not None
        assert response.source == batch.responses[0].source
        assert 0 < sent <= batch.probes_sent

    def test_lazy_probing(self, rotating_internet):
        before = rotating_internet.stats.probes
        stream = Zmap6(rotating_internet).stream(scan_targets(), start_seconds=0.0)
        assert rotating_internet.stats.probes == before  # nothing sent yet
        next(iter(stream))
        assert rotating_internet.stats.probes > before


class TestCampaignEquivalence:
    def test_run_streaming_identical_to_run(self):
        batch = build_campaign().run()
        seen = []
        stream = build_campaign().run_streaming(consumer=seen.append)
        assert batch.summary() == stream.summary()
        assert list(batch.store) == list(stream.store)
        assert seen == list(stream.store)

    def test_streaming_campaign_identical_to_batch(self):
        batch = build_campaign().run()
        streaming = StreamingCampaign(build_campaign())
        result = streaming.run()
        assert batch.summary() == result.summary()
        assert list(batch.store) == list(result.store)
        assert streaming.finished

    def test_checkpoint_resume_identical_to_uninterrupted(self, tmp_path):
        path = tmp_path / "campaign.json"
        full = StreamingCampaign(build_campaign())
        full_result = full.run()

        interrupted = StreamingCampaign(build_campaign(), checkpoint_path=path)
        interrupted.run(max_days=2)
        assert not interrupted.finished

        resumed = StreamingCampaign.resume(build_campaign(), path)
        assert resumed.result.days_run == 2
        resumed_result = resumed.run()
        assert resumed.finished
        assert list(resumed_result.store) == list(full_result.store)
        assert resumed_result.summary() == full_result.summary()
        from repro.stream.checkpoint import engine_state

        assert engine_state(resumed.engine) == engine_state(full.engine)

    def test_periodic_checkpoints_written(self, tmp_path):
        path = tmp_path / "campaign.json"
        streaming = StreamingCampaign(
            build_campaign(), checkpoint_path=path, checkpoint_every=1
        )
        streaming.run(max_days=1)
        assert path.exists()

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError):
            StreamingCampaign(build_campaign(), checkpoint_every=2)

    def test_supplied_engine_made_storeless_and_resumable(self, tmp_path):
        """A caller engine with default config must not come back from a
        checkpoint with a fresh empty store (a partial corpus)."""
        from repro.stream.engine import StreamEngine

        path = tmp_path / "campaign.json"
        streaming = StreamingCampaign(
            build_campaign(), engine=StreamEngine(), checkpoint_path=path
        )
        assert streaming.engine.store is None
        assert not streaming.engine.config.keep_observations
        streaming.run(max_days=2)

        resumed = StreamingCampaign.resume(build_campaign(), path)
        assert resumed.engine.store is None
        result = resumed.run()
        full = build_campaign().run()
        assert list(result.store) == list(full.store)

    def test_engine_with_existing_observations_rejected(self):
        from repro.core.records import ProbeObservation
        from repro.stream.engine import StreamEngine

        engine = StreamEngine()
        engine.ingest(ProbeObservation(day=0, t_seconds=0.0, target=1, source=2))
        with pytest.raises(ValueError, match="already holds"):
            StreamingCampaign(build_campaign(), engine=engine)


def tracking_fixture():
    """A campaign corpus plus one hunted IID per AS."""
    internet = build_rotating_internet()
    store = Campaign(internet, CAMPAIGN_PREFIXES, CAMPAIGN_CONFIG).run().store
    profiles = {
        65001: AsProfile(65001, allocation_plen=56, pool_plen=48),
        65002: AsProfile(65002, allocation_plen=60, pool_plen=48),
    }
    targets: dict[int, int] = {}
    used_asns: set[int] = set()
    for iid in sorted(store.eui64_iids()):
        history = store.observations_of_iid(iid)
        last = max(history, key=lambda o: o.t_seconds)
        asn = internet.rib.origin_of(last.source)
        if asn in profiles and asn not in used_asns:
            targets[iid] = last.source
            used_asns.add(asn)
        if len(targets) == len(profiles):
            break
    days = [CAMPAIGN_CONFIG.start_day + CAMPAIGN_CONFIG.days + i for i in range(3)]
    return profiles, targets, days


class TestPursuitEquivalence:
    def test_day_major_pursuit_matches_track_many(self):
        profiles, targets, days = tracking_fixture()
        batch_tracker = DeviceTracker(
            build_rotating_internet(), profiles, TrackerConfig(seed=5)
        )
        batch = batch_tracker.track_many(targets, days)

        pursuit = LivePursuit(
            DeviceTracker(build_rotating_internet(), profiles, TrackerConfig(seed=5))
        )
        pursuit.add_targets(targets)
        stream = pursuit.pursue(days)

        assert set(batch.tracks) == set(stream.tracks)
        for iid in targets:
            assert batch.tracks[iid].outcomes == stream.tracks[iid].outcomes
        assert batch.found_per_day() == stream.found_per_day()
        assert batch.changed_prefix_per_day() == stream.changed_prefix_per_day()

    def test_pursuit_checkpoint_resume_identical(self, tmp_path):
        profiles, targets, days = tracking_fixture()
        full = LivePursuit(
            DeviceTracker(build_rotating_internet(), profiles, TrackerConfig(seed=5))
        )
        full.add_targets(targets)
        full_report = full.pursue(days)

        path = tmp_path / "pursuit.json"
        half = LivePursuit(
            DeviceTracker(build_rotating_internet(), profiles, TrackerConfig(seed=5))
        )
        half.add_targets(targets)
        half.advance(days[0])
        half.save(path)

        resumed = LivePursuit.load(
            path,
            DeviceTracker(build_rotating_internet(), profiles, TrackerConfig(seed=5)),
        )
        for day in days[1:]:
            resumed.advance(day)
        report = resumed.report()
        for iid in targets:
            assert report.tracks[iid].outcomes == full_report.tracks[iid].outcomes

    def test_duplicate_target_rejected(self):
        profiles, targets, _days = tracking_fixture()
        pursuit = LivePursuit(
            DeviceTracker(build_rotating_internet(), profiles, TrackerConfig(seed=5))
        )
        pursuit.add_targets(targets)
        iid = next(iter(targets))
        with pytest.raises(ValueError):
            pursuit.add_target(iid, targets[iid])

    def test_passive_sighting_reanchors(self):
        """An engine sighting newer than the last hunt moves the anchor."""
        from repro.core.records import ProbeObservation
        from repro.stream.engine import StreamConfig, StreamEngine

        profiles, targets, days = tracking_fixture()
        iid, initial = next(iter(targets.items()))
        engine = StreamEngine(StreamConfig(num_shards=1))
        tracker = DeviceTracker(
            build_rotating_internet(), profiles, TrackerConfig(seed=5)
        )
        pursuit = LivePursuit(tracker, engine=engine)
        pursuit.add_target(iid, initial)

        moved = ((initial >> 64) + 1) << 64 | (initial & ((1 << 64) - 1))
        engine.ingest(
            ProbeObservation(
                day=days[0], t_seconds=days[0] * 86_400.0, target=0, source=moved
            )
        )
        state = pursuit.pursuits[iid]
        assert pursuit._anchor_for(iid, state) == moved

    def test_sighting_after_successful_hunt_still_reanchors(self):
        """A find must not permanently outrank later passive sightings."""
        from repro.core.records import ProbeObservation
        from repro.stream.engine import StreamConfig, StreamEngine

        profiles, targets, days = tracking_fixture()
        iid, initial = next(iter(targets.items()))
        engine = StreamEngine(StreamConfig(num_shards=1))
        tracker = DeviceTracker(
            build_rotating_internet(), profiles, TrackerConfig(seed=5)
        )
        pursuit = LivePursuit(tracker, engine=engine)
        pursuit.add_target(iid, initial)
        outcome = pursuit.advance(days[0])[iid]
        assert outcome.found  # precondition: an active find happened

        # The device answers a later scan from a new prefix: strictly
        # newer than the hunt, so the pursuit must re-anchor to it.
        moved = ((outcome.source >> 64) + 1) << 64 | iid
        engine.ingest(
            ProbeObservation(
                day=days[1],
                t_seconds=(days[1] * 24 + 12) * 3600.0,
                target=0,
                source=moved,
            )
        )
        state = pursuit.pursuits[iid]
        assert pursuit._anchor_for(iid, state) == moved
