"""Multiprocess backend tests: worker-count invariance is the contract.

Every test pins the parallel backend against the single-process engine
on the shared sim worlds: same checkpoint bytes, same inferences, same
live detection, for any worker count.  The single-process engine *is*
the specification; the backend only exists to reach it faster.
"""

import json

import pytest

from _ckpt import checkpoint_fingerprint
from _worlds import build_campaign, build_rotating_internet

from repro.core.records import ProbeObservation
from repro.core.tracker import DeviceTracker, TrackerConfig
from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import engine_state, restore_engine
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.parallel import ParallelStreamEngine
from repro.stream.shard import ShardKey
from repro.stream.tracker import LivePursuit


@pytest.fixture(scope="module")
def world():
    """One shared world + campaign corpus for the whole module."""
    internet = build_rotating_internet()
    store = build_campaign(internet).run().store
    return internet, list(store)


def reference_engine(internet, corpus, config):
    """The specification: the per-observation single-process engine."""
    engine = StreamEngine(config, origin_of=internet.rib.origin_of)
    for observation in corpus:
        engine.ingest(observation)
    engine.flush()
    return engine


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_byte_identical_checkpoints(self, world, num_workers):
        internet, corpus = world
        config = StreamConfig(num_shards=8, keep_observations=True)
        reference = reference_engine(internet, corpus, config)
        parallel = ParallelStreamEngine(
            config,
            origin_of=internet.rib.origin_of,
            num_workers=num_workers,
            batch_rows=64,
        )
        parallel.ingest_batch(corpus)
        merged = parallel.finalize()
        # JSON round-trip: exactly what a checkpoint file would hold.
        assert json.dumps(engine_state(merged)) == json.dumps(engine_state(reference))

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_profiles_and_detection_match(self, world, num_workers):
        internet, corpus = world
        config = StreamConfig(num_shards=4, keep_observations=False)
        reference = reference_engine(internet, corpus, config)
        parallel = ParallelStreamEngine(
            config, origin_of=internet.rib.origin_of, num_workers=num_workers
        )
        parallel.ingest_batch(corpus)
        merged = parallel.finalize()
        assert merged.as_profiles() == reference.as_profiles()
        assert (
            merged.live_detection.changed_pairs
            == reference.live_detection.changed_pairs
        )
        assert (
            merged.live_detection.rotating_prefixes
            == reference.live_detection.rotating_prefixes
        )
        assert (
            merged.live_detection.stable_pairs
            == reference.live_detection.stable_pairs
        )

    def test_asn_sharding(self, world):
        internet, corpus = world
        config = StreamConfig(
            num_shards=4, shard_key=ShardKey.ASN, keep_observations=False
        )
        reference = reference_engine(internet, corpus, config)
        parallel = ParallelStreamEngine(
            config, origin_of=internet.rib.origin_of, num_workers=3
        )
        parallel.ingest_batch(corpus)
        assert engine_state(parallel.finalize()) == engine_state(reference)

    def test_retention_matches_single_process(self, world):
        internet, corpus = world
        config = StreamConfig(num_shards=4, keep_observations=False, retain_days=2)
        reference = reference_engine(internet, corpus, config)
        parallel = ParallelStreamEngine(
            config, origin_of=internet.rib.origin_of, num_workers=2, batch_rows=32
        )
        parallel.ingest_batch(corpus)
        assert engine_state(parallel.finalize()) == engine_state(reference)


class TestSnapshotAndResume:
    def test_mid_stream_snapshot_then_continue(self, world):
        internet, corpus = world
        config = StreamConfig(num_shards=5, keep_observations=False)
        half = len(corpus) // 2

        reference = StreamEngine(config, origin_of=internet.rib.origin_of)
        reference.ingest_batch(corpus[:half])
        parallel = ParallelStreamEngine(
            config, origin_of=internet.rib.origin_of, num_workers=2, batch_rows=32
        )
        parallel.ingest_batch(corpus[:half])
        # The snapshot leaves the in-progress day open, like the live engine.
        assert engine_state(parallel.snapshot_engine()) == engine_state(reference)

        parallel.ingest_batch(corpus[half:])
        reference.ingest_batch(corpus[half:])
        reference.flush()
        assert engine_state(parallel.finalize()) == engine_state(reference)

    def test_resume_from_checkpoint_base(self, world):
        """A restored engine seeds the dispatcher; the merged end state
        equals an uninterrupted single-process run."""
        internet, corpus = world
        config = StreamConfig(num_shards=4, keep_observations=True)
        half = len(corpus) // 2

        first_half = StreamEngine(config, origin_of=internet.rib.origin_of)
        first_half.ingest_batch(corpus[:half])
        restored = restore_engine(
            json.loads(json.dumps(engine_state(first_half))),
            origin_of=internet.rib.origin_of,
        )
        parallel = ParallelStreamEngine(
            config,
            origin_of=internet.rib.origin_of,
            num_workers=2,
            base=restored,
        )
        parallel.ingest_batch(corpus[half:])

        whole = reference_engine(internet, corpus, config)
        assert engine_state(parallel.finalize()) == engine_state(whole)

    def test_base_config_mismatch_rejected(self, world):
        internet, _corpus = world
        base = StreamEngine(StreamConfig(num_shards=2))
        with pytest.raises(ValueError, match="config"):
            ParallelStreamEngine(
                StreamConfig(num_shards=8),
                origin_of=internet.rib.origin_of,
                base=base,
            )


class TestDispatcherSemantics:
    def test_watchlist_sightings_match(self, world):
        internet, corpus = world
        eui_iids = sorted({o.source_iid for o in corpus if o.is_eui64})
        watch = eui_iids[:3]

        reference = StreamEngine(StreamConfig(num_shards=2))
        parallel = ParallelStreamEngine(StreamConfig(num_shards=2), num_workers=2)
        for iid in watch:
            reference.watch(iid)
            parallel.watch(iid)
        reference.ingest_batch(corpus)
        parallel.ingest_batch(corpus)
        for iid in watch:
            assert parallel.last_sighting(iid) == reference.last_sighting(iid)
        parallel.close()

    def test_live_pursuit_accepts_parallel_engine(self, world):
        """LivePursuit's passive re-anchoring works against the
        dispatcher directly (watch/last_sighting duck typing)."""
        internet, corpus = world
        engine = ParallelStreamEngine(StreamConfig(num_shards=2), num_workers=2)
        iid = next(o.source_iid for o in corpus if o.is_eui64)
        initial = next(o.source for o in corpus if o.source_iid == iid)
        tracker = DeviceTracker(build_rotating_internet(), {}, TrackerConfig(seed=5))
        pursuit = LivePursuit(tracker, engine=engine)
        pursuit.add_target(iid, initial)

        moved = ((initial >> 64) + 1) << 64 | (initial & ((1 << 64) - 1))
        engine.ingest(
            ProbeObservation(day=99, t_seconds=99 * 86_400.0, target=0, source=moved)
        )
        state = pursuit.pursuits[iid]
        assert pursuit._anchor_for(iid, state) == moved
        engine.close()

    def test_backwards_day_rejected(self):
        parallel = ParallelStreamEngine(StreamConfig(num_shards=1), num_workers=1)
        parallel.ingest(ProbeObservation(day=3, t_seconds=0.0, target=1, source=2))
        with pytest.raises(ValueError, match="backwards"):
            parallel.ingest(ProbeObservation(day=2, t_seconds=0.0, target=1, source=2))
        parallel.close()

    def test_mid_batch_error_accounting_matches_engine(self):
        """Rows processed before a mid-batch error stay accounted,
        exactly like StreamEngine.ingest_batch's partial commit."""
        batch = [
            ProbeObservation(day=3, t_seconds=0.0, target=1, source=2),
            ProbeObservation(day=2, t_seconds=1.0, target=1, source=2),
        ]
        reference = StreamEngine(StreamConfig(num_shards=1))
        with pytest.raises(ValueError, match="backwards"):
            reference.ingest_batch(list(batch))
        parallel = ParallelStreamEngine(
            StreamConfig(num_shards=1), num_workers=1
        )
        with pytest.raises(ValueError, match="backwards"):
            parallel.ingest_batch(list(batch))
        assert parallel.responses_ingested == reference.responses_ingested == 1
        assert list(parallel.store) == list(reference.store)
        parallel.close()

    @pytest.mark.parametrize("feed", ["batch", "per_observation"])
    def test_same_day_rows_after_flush_reach_next_diff(self, world, feed):
        """flush() caches the just-closed day's merged pairs (set when
        its diff runs, so the stream must already span two scanned
        days); rows for that same day arriving after the flush must
        still count in the next day-over-day diff, as they do
        single-process."""
        internet, corpus = world
        by_day: dict[int, list] = {}
        for observation in corpus:
            by_day.setdefault(observation.day, []).append(observation)
        days = sorted(by_day)
        assert len(days) >= 4
        day0, day1 = days[0], days[1]
        head = by_day[day0] + by_day[day1][: len(by_day[day1]) // 2]
        tail = by_day[day1][len(by_day[day1]) // 2:]
        rest = [o for day in days[2:] for o in by_day[day]]

        config = StreamConfig(num_shards=4, keep_observations=False)
        reference = StreamEngine(config, origin_of=internet.rib.origin_of)
        parallel = ParallelStreamEngine(
            config, origin_of=internet.rib.origin_of, num_workers=2, batch_rows=32
        )
        for engine in (reference, parallel):
            engine.ingest_batch(list(head))
            engine.flush()  # closes day1 mid-day, caching its pairs
            if feed == "batch":
                engine.ingest_batch(list(tail))  # day1 continues post-flush
            else:  # the dispatcher's per-response fast path
                for observation in tail:
                    engine.ingest(observation)
            engine.ingest_batch(list(rest))
        reference.flush()
        assert engine_state(parallel.finalize()) == engine_state(reference)

    def test_ingest_after_finalize_rejected(self):
        parallel = ParallelStreamEngine(StreamConfig(num_shards=1), num_workers=1)
        parallel.ingest(ProbeObservation(day=0, t_seconds=0.0, target=1, source=2))
        parallel.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            parallel.ingest(ProbeObservation(day=1, t_seconds=1.0, target=1, source=2))

    def test_finalize_idempotent(self):
        parallel = ParallelStreamEngine(StreamConfig(num_shards=1), num_workers=1)
        parallel.ingest(ProbeObservation(day=0, t_seconds=0.0, target=1, source=2))
        assert parallel.finalize() is parallel.finalize()

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="num_workers"):
            ParallelStreamEngine(num_workers=0)
        with pytest.raises(ValueError, match="batch_rows"):
            ParallelStreamEngine(batch_rows=0)
        with pytest.raises(ValueError, match="origin_of"):
            ParallelStreamEngine(StreamConfig(shard_key=ShardKey.ASN))

    def test_context_manager_closes(self):
        with ParallelStreamEngine(
            StreamConfig(num_shards=1), num_workers=2
        ) as parallel:
            parallel.ingest(ProbeObservation(day=0, t_seconds=0.0, target=1, source=2))
            procs = list(parallel._procs)
        assert all(not p.is_alive() for p in procs)


class TestParallelCampaign:
    def test_campaign_equivalence_and_cross_mode_resume(self, tmp_path):
        single = StreamingCampaign(build_campaign())
        single_result = single.run()

        parallel = StreamingCampaign(build_campaign(), workers=2)
        parallel_result = parallel.run()
        assert parallel_result.summary() == single_result.summary()
        assert list(parallel_result.store) == list(single_result.store)
        assert engine_state(parallel.engine) == engine_state(single.engine)

        # Interrupted parallel run writes the same checkpoint bytes a
        # single-process run would; either mode resumes it.
        single_path = tmp_path / "single.json"
        parallel_path = tmp_path / "parallel.json"
        StreamingCampaign(build_campaign(), checkpoint_path=single_path).run(max_days=2)
        StreamingCampaign(
            build_campaign(), checkpoint_path=parallel_path, workers=3
        ).run(max_days=2)
        assert checkpoint_fingerprint(single_path) == checkpoint_fingerprint(
            parallel_path
        )

        resumed = StreamingCampaign.resume(build_campaign(), single_path, workers=2)
        resumed_result = resumed.run()
        assert resumed_result.summary() == single_result.summary()
        assert engine_state(resumed.engine) == engine_state(single.engine)

    def test_live_engine_property(self):
        single = StreamingCampaign(build_campaign())
        assert single.live_engine is single.engine
        parallel = StreamingCampaign(build_campaign(), workers=2)
        assert parallel.live_engine is parallel._parallel
        parallel._parallel.close()
