"""Seeded randomized stream-equivalence fuzzing.

Every ingestion path -- per-observation, the classic fused
``ingest_batch`` loop, the columnar (numpy sort-reduce) batch kernel,
and the multiprocess dispatcher at any worker count with either worker
kernel -- must leave the engine in the *same* state for any valid
stream.  The unit and world tests pin that on curated scenarios; this
harness pins it on ~20 randomized ones: random rotation cadences, scan
gaps, shard modes and counts, retention windows, worker counts, chunk
sizes, duplicate and out-of-order same-day responses, and a mid-stream
snapshot point.  The oracle is ``engine_state`` serialized to JSON --
checkpoint bytes -- so any divergence in any aggregate, counter,
watchlist entry, or stored observation fails the seed that found it.

The parallel engine alternates its worker kernel by seed parity, so
both the columnar and the classic multiprocess paths stay covered
without doubling the process spawns per seed.  When numpy is absent,
``columnar=True`` engines transparently run the pure-Python fallback
and the harness degenerates to the (still valid) classic comparison.
"""

import json
import random

import pytest

from repro.core.records import ProbeObservation
from repro.net.eui64 import is_eui64_iid, mac_to_eui64_iid
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.parallel import ParallelStreamEngine
from repro.stream.shard import ShardKey

SEEDS = range(20)


def origin_of(address: int) -> int:
    """Deterministic per-/48 origin (the engines' route caches require
    origin to be constant within a /48)."""
    return 64512 + ((address >> 80) % 5)


def random_corpus(rng: random.Random) -> list[ProbeObservation]:
    """A day-major corpus from a random mini-world.

    Devices hold a stable IID and move /64 on their own cadence; days
    may be skipped entirely (scan gaps); within a day the responses are
    shuffled (out-of-order timestamps) and some are duplicated.
    """
    n_days = rng.randint(3, 6)
    first_day = rng.randint(0, 3)
    net48s = [(0x20010DB8 << 16) + 7 * i for i in range(rng.randint(1, 3))]

    devices = []
    for _ in range(rng.randint(6, 16)):
        if rng.random() < 0.75:
            iid = mac_to_eui64_iid(rng.getrandbits(48))
        else:
            iid = rng.getrandbits(64)
            while is_eui64_iid(iid):
                iid = rng.getrandbits(64)
        devices.append(
            {
                "iid": iid,
                "net48": rng.choice(net48s),
                "start": rng.randrange(1 << 16),
                "cadence": rng.choice([1, 1, 2, 3, 10_000]),
                "respond_p": rng.uniform(0.6, 1.0),
            }
        )

    corpus: list[ProbeObservation] = []
    for day in range(first_day, first_day + n_days):
        if rng.random() < 0.15:
            continue  # an unscanned gap day
        day_observations = []
        for device in devices:
            if rng.random() > device["respond_p"]:
                continue
            subnet = (device["start"] + day // device["cadence"]) % (1 << 16)
            net64 = (device["net48"] << 16) | subnet
            observation = ProbeObservation(
                day=day,
                t_seconds=day * 86_400.0 + rng.uniform(0.0, 86_399.0),
                target=(net64 << 64) | rng.getrandbits(64),
                source=(net64 << 64) | device["iid"],
            )
            day_observations.append(observation)
            if rng.random() < 0.15:  # duplicate response (same or new time)
                duplicate = (
                    observation
                    if rng.random() < 0.5
                    else ProbeObservation(
                        day=day,
                        t_seconds=day * 86_400.0 + rng.uniform(0.0, 86_399.0),
                        target=observation.target,
                        source=observation.source,
                    )
                )
                day_observations.append(duplicate)
        rng.shuffle(day_observations)  # out-of-order within the day
        corpus.extend(day_observations)
    return corpus


def random_config(rng: random.Random) -> StreamConfig:
    return StreamConfig(
        num_shards=rng.choice([1, 2, 4, 8]),
        shard_key=rng.choice([ShardKey.PREFIX32, ShardKey.ASN]),
        keep_observations=rng.random() < 0.5,
        retain_days=rng.choice([None, None, 2, 3]),
    )


def chunks(rng: random.Random, items: list) -> list[list]:
    out, i = [], 0
    while i < len(items):
        n = rng.randint(1, 50)
        out.append(items[i : i + n])
        i += n
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_checkpoint_bytes_identical_across_ingest_paths(seed):
    rng = random.Random(seed ^ 0xF022)
    corpus = random_corpus(rng)
    if not corpus:  # all days happened to gap out; trivially equivalent
        return
    config = random_config(rng)
    num_workers = rng.choice([1, 2, 4])
    batch_rows = rng.choice([5, 17, 64])
    split = rng.randrange(len(corpus) + 1)  # mid-stream snapshot point

    watch = [o.source_iid for o in corpus if o.is_eui64][:2]

    reference = StreamEngine(config, origin_of=origin_of)
    batched = StreamEngine(config, origin_of=origin_of, columnar=False)
    columnar = StreamEngine(config, origin_of=origin_of, columnar=True)
    parallel = ParallelStreamEngine(
        config,
        origin_of=origin_of,
        num_workers=num_workers,
        batch_rows=batch_rows,
        columnar=bool(seed % 2),
    )
    engines = (reference, batched, columnar, parallel)
    for iid in watch:
        for engine in engines:
            engine.watch(iid)

    # Phase 1: up to the snapshot point.
    for observation in corpus[:split]:
        reference.ingest(observation)
    for engine in (batched, columnar, parallel):
        for chunk in chunks(rng, corpus[:split]):
            engine.ingest_batch(chunk)

    # Mid-stream: the parallel snapshot and both batch engines must
    # match the per-observation engine, in-progress day left open.
    mid = json.dumps(engine_state(reference))
    assert json.dumps(engine_state(batched)) == mid
    assert json.dumps(engine_state(columnar)) == mid
    assert json.dumps(engine_state(parallel.snapshot_engine())) == mid

    # Phase 2: the rest of the stream, then flush everything.
    for observation in corpus[split:]:
        reference.ingest(observation)
    for engine in (batched, columnar, parallel):
        for chunk in chunks(rng, corpus[split:]):
            engine.ingest_batch(chunk)
    reference.flush()
    batched.flush()
    columnar.flush()
    merged = parallel.finalize()

    final = json.dumps(engine_state(reference))
    assert json.dumps(engine_state(batched)) == final
    assert json.dumps(engine_state(columnar)) == final
    assert json.dumps(engine_state(merged)) == final
