"""Seeded randomized stream-equivalence fuzzing.

Every ingestion path -- per-observation, the classic fused
``ingest_batch`` loop, the columnar (numpy sort-reduce) batch kernel,
and the parallel dispatcher at any worker count with either worker
kernel over either fabric transport (local pipes or TCP socket
workers) -- must leave the engine in the *same* state for any valid
stream.  The unit and world tests pin that on curated scenarios; this
harness pins it on ~20 randomized ones: random rotation cadences, scan
gaps, shard modes and counts, retention windows, worker counts, chunk
sizes, duplicate and out-of-order same-day responses, and a mid-stream
snapshot point.  The oracle is ``engine_state`` serialized to JSON --
checkpoint bytes -- so any divergence in any aggregate, counter,
watchlist entry, or stored observation fails the seed that found it.

The parallel engine alternates its worker kernel by seed parity, so
both the columnar and the classic multiprocess paths stay covered
without doubling the process spawns per seed.  When numpy is absent,
``columnar=True`` engines transparently run the pure-Python fallback
and the harness degenerates to the (still valid) classic comparison.

Since the storage redesign the harness is also the cross-backend
oracle: corpus-keeping engines each hold their store on a *different*
:class:`~repro.store.backend.StoreBackend` (object / columnar / an
sqlite file), and odd seeds feed the columnar engine through
``ingest_columns`` (``ColumnBatch`` hand-off) and the parallel engine
through its column dispatch -- so identical checkpoint bytes prove
layout- and currency-independence, not just kernel equivalence.

Since the serve layer the columnar engine is additionally *served*: a
:class:`~repro.serve.snapshot.SnapshotPublisher` refreshes against it
at random points mid-stream (materializing pending state each time),
pinning that publishing read snapshots never perturbs checkpoint bytes
and that snapshot versions only ever move forward.
"""

import json
import random

import pytest

from repro.core.records import ObservationStore, ProbeObservation
from repro.net.eui64 import is_eui64_iid, mac_to_eui64_iid
from repro.store import ColumnBatch, SqliteBackend, make_backend
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.parallel import ParallelStreamEngine
from repro.stream.shard import ShardKey

SEEDS = range(20)


def origin_of(address: int) -> int:
    """Deterministic per-/48 origin (the engines' route caches require
    origin to be constant within a /48)."""
    return 64512 + ((address >> 80) % 5)


def random_corpus(rng: random.Random) -> list[ProbeObservation]:
    """A day-major corpus from a random mini-world.

    Devices hold a stable IID and move /64 on their own cadence; days
    may be skipped entirely (scan gaps); within a day the responses are
    shuffled (out-of-order timestamps) and some are duplicated.
    """
    n_days = rng.randint(3, 6)
    first_day = rng.randint(0, 3)
    net48s = [(0x20010DB8 << 16) + 7 * i for i in range(rng.randint(1, 3))]

    devices = []
    for _ in range(rng.randint(6, 16)):
        if rng.random() < 0.75:
            iid = mac_to_eui64_iid(rng.getrandbits(48))
        else:
            iid = rng.getrandbits(64)
            while is_eui64_iid(iid):
                iid = rng.getrandbits(64)
        devices.append(
            {
                "iid": iid,
                "net48": rng.choice(net48s),
                "start": rng.randrange(1 << 16),
                "cadence": rng.choice([1, 1, 2, 3, 10_000]),
                "respond_p": rng.uniform(0.6, 1.0),
            }
        )

    corpus: list[ProbeObservation] = []
    for day in range(first_day, first_day + n_days):
        if rng.random() < 0.15:
            continue  # an unscanned gap day
        day_observations = []
        for device in devices:
            if rng.random() > device["respond_p"]:
                continue
            subnet = (device["start"] + day // device["cadence"]) % (1 << 16)
            net64 = (device["net48"] << 16) | subnet
            observation = ProbeObservation(
                day=day,
                t_seconds=day * 86_400.0 + rng.uniform(0.0, 86_399.0),
                target=(net64 << 64) | rng.getrandbits(64),
                source=(net64 << 64) | device["iid"],
            )
            day_observations.append(observation)
            if rng.random() < 0.15:  # duplicate response (same or new time)
                duplicate = (
                    observation
                    if rng.random() < 0.5
                    else ProbeObservation(
                        day=day,
                        t_seconds=day * 86_400.0 + rng.uniform(0.0, 86_399.0),
                        target=observation.target,
                        source=observation.source,
                    )
                )
                day_observations.append(duplicate)
        rng.shuffle(day_observations)  # out-of-order within the day
        corpus.extend(day_observations)
    return corpus


def random_config(rng: random.Random) -> StreamConfig:
    return StreamConfig(
        num_shards=rng.choice([1, 2, 4, 8]),
        shard_key=rng.choice([ShardKey.PREFIX32, ShardKey.ASN]),
        keep_observations=rng.random() < 0.5,
        retain_days=rng.choice([None, None, 2, 3]),
    )


def chunks(rng: random.Random, items: list) -> list[list]:
    out, i = [], 0
    while i < len(items):
        n = rng.randint(1, 50)
        out.append(items[i : i + n])
        i += n
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_checkpoint_bytes_identical_across_ingest_paths(seed, tmp_path):
    rng = random.Random(seed ^ 0xF022)
    corpus = random_corpus(rng)
    if not corpus:  # all days happened to gap out; trivially equivalent
        return
    config = random_config(rng)
    num_workers = rng.choice([1, 2, 4])
    batch_rows = rng.choice([5, 17, 64])
    split = rng.randrange(len(corpus) + 1)  # mid-stream snapshot point
    # Two independent axes, all four combinations over the seed range:
    # odd seeds drive the ColumnBatch hand-off paths, and the worker
    # kernel alternates on a different parity -- so column dispatch
    # also lands on classic-kernel workers (the cols->rows bridge).
    columns = bool(seed % 2)
    worker_kernel = bool((seed // 2) % 2)

    watch = [o.source_iid for o in corpus if o.is_eui64][:2]

    def backend_store(kind):
        """Corpus-keeping engines each hold a different store layout."""
        if not config.keep_observations:
            return None
        if kind == "sqlite":
            return ObservationStore(SqliteBackend(tmp_path / "fuzz.sqlite"))
        return ObservationStore(make_backend(kind))

    # Telemetry rides on two of the four engines (the untelemetered
    # reference stays the oracle): instrumentation live on every hot
    # path must never perturb checkpoint bytes.
    from repro.obs import Telemetry

    reference = StreamEngine(
        config, origin_of=origin_of, store=backend_store("object")
    )
    batched = StreamEngine(
        config, origin_of=origin_of, columnar=False, store=backend_store("columnar")
    )
    columnar = StreamEngine(
        config,
        origin_of=origin_of,
        columnar=True,
        store=backend_store("sqlite"),
        telemetry=Telemetry(),
    )
    parallel = ParallelStreamEngine(
        config,
        origin_of=origin_of,
        num_workers=num_workers,
        batch_rows=batch_rows,
        columnar=worker_kernel,
        store=backend_store(("object", "columnar")[seed % 2]),
        telemetry=Telemetry(),
    )
    # The fifth engine rides the socket fabric: same dispatcher, but
    # every chunk crosses a real TCP frame boundary -- serial == pipes
    # == sockets is the fabric's headline contract.
    from repro.stream.fabric import SocketTransport

    fabric = ParallelStreamEngine(
        config,
        origin_of=origin_of,
        num_workers=num_workers,
        batch_rows=batch_rows,
        columnar=worker_kernel,
        store=backend_store(("columnar", "object")[seed % 2]),
        transport=SocketTransport(spawn="thread"),
    )
    engines = (reference, batched, columnar, parallel, fabric)
    for iid in watch:
        for engine in engines:
            engine.watch(iid)

    # The columnar engine is also served: random refreshes materialize
    # its pending state mid-stream, which must never change what ends
    # up in a checkpoint (the oracle below says so), and versions must
    # only move forward.
    from repro.serve import SnapshotPublisher

    publisher = SnapshotPublisher(columnar)
    versions = [publisher.version]

    def feed(engine, chunk):
        """Columns for the column-capable engines on odd seeds."""
        if columns and engine in (columnar, parallel, fabric):
            engine.ingest_columns(ColumnBatch.from_observations(chunk))
        else:
            engine.ingest_batch(chunk)
        if engine is columnar and rng.random() < 0.3:
            versions.append(publisher.refresh().version)

    # Phase 1: up to the snapshot point.
    for observation in corpus[:split]:
        reference.ingest(observation)
    for engine in (batched, columnar, parallel, fabric):
        for chunk in chunks(rng, corpus[:split]):
            feed(engine, chunk)

    # Mid-stream: the parallel snapshot and both batch engines must
    # match the per-observation engine, in-progress day left open --
    # and the serialized store rows must not depend on the backend.
    versions.append(publisher.refresh(force=True).version)
    mid = json.dumps(engine_state(reference))
    assert json.dumps(engine_state(batched)) == mid
    assert json.dumps(engine_state(columnar)) == mid
    assert json.dumps(engine_state(parallel.snapshot_engine())) == mid
    assert json.dumps(engine_state(fabric.snapshot_engine())) == mid

    # Phase 2: the rest of the stream, then flush everything.
    for observation in corpus[split:]:
        reference.ingest(observation)
    for engine in (batched, columnar, parallel, fabric):
        for chunk in chunks(rng, corpus[split:]):
            feed(engine, chunk)
    reference.flush()
    batched.flush()
    columnar.flush()
    merged = parallel.finalize()
    fabric_merged = fabric.finalize()

    versions.append(publisher.refresh(force=True).version)
    final = json.dumps(engine_state(reference))
    assert json.dumps(engine_state(batched)) == final
    assert json.dumps(engine_state(columnar)) == final
    assert json.dumps(engine_state(merged)) == final
    assert json.dumps(engine_state(fabric_merged)) == final
    # Serving the columnar engine never moved a version backwards.
    assert versions == sorted(versions)
    assert versions[-1] >= 2


@pytest.mark.parametrize("seed", SEEDS)
def test_binary_checkpoint_restores_identical_state(seed, tmp_path):
    """Randomized format equivalence: the canonical JSON checkpoint, a
    binary full segment, and a binary full+delta chain must all restore
    to byte-identical ``engine_state`` JSON -- mid-stream and at flush,
    for the serial engine and for the parallel engine's merged
    snapshots (whose deltas ride the dispatcher's dirty-shard set, the
    campaign checkpoint path)."""
    from repro.stream.checkpoint import load_engine, restore_engine, save_engine
    from repro.stream.ckptbin import BinaryCheckpointer, _read_segments, read_state

    rng = random.Random(seed ^ 0xB19A)
    corpus = random_corpus(rng)
    if not corpus:
        return
    config = random_config(rng)
    split = rng.randrange(len(corpus) + 1)

    def dump_restored(path):
        return json.dumps(engine_state(load_engine(path, origin_of=origin_of)))

    engine = StreamEngine(config, origin_of=origin_of)
    for chunk in chunks(rng, corpus[:split]):
        engine.ingest_batch(chunk)
    json_path = tmp_path / "serial.json"
    bin_path = tmp_path / "serial.bin"
    save_engine(engine, json_path, format="json")
    save_engine(engine, bin_path, format="binary")
    mid = json.dumps(engine_state(engine))
    assert dump_restored(json_path) == mid
    assert dump_restored(bin_path) == mid

    # The rest of the stream; the second binary save of the same engine
    # to the same path chains a delta segment onto the full one.
    for chunk in chunks(rng, corpus[split:]):
        engine.ingest_batch(chunk)
    engine.flush()
    save_engine(engine, json_path, format="json")
    save_engine(engine, bin_path, format="binary")
    kinds = [header["kind"] for header, _ in _read_segments(bin_path)]
    assert kinds == ["full", "delta"]
    final = json.dumps(engine_state(engine))
    assert dump_restored(json_path) == final
    assert dump_restored(bin_path) == final

    # Parallel leg: merged snapshots are fresh engine objects at every
    # save, so the delta chain runs on explicit dirty_sids.
    parallel = ParallelStreamEngine(
        config,
        origin_of=origin_of,
        num_workers=rng.choice([1, 2, 4]),
        columnar=bool(seed % 2),
    )
    par_path = tmp_path / "parallel.bin"
    saver = BinaryCheckpointer(par_path)
    for chunk in chunks(rng, corpus[:split]):
        parallel.ingest_batch(chunk)
    first = saver.save(
        parallel.snapshot_engine(), dirty_sids=parallel.take_dirty_sids()
    )
    assert first.kind == "full"
    for chunk in chunks(rng, corpus[split:]):
        parallel.ingest_batch(chunk)
    merged = parallel.finalize()
    second = saver.save(merged, dirty_sids=parallel.take_dirty_sids())
    assert second.kind == "delta"
    restored = restore_engine(read_state(par_path), origin_of=origin_of)
    assert json.dumps(engine_state(restored)) == final


@pytest.mark.parametrize("seed", range(6))
def test_sqlite_incremental_resume_mid_stream(seed, tmp_path):
    """Randomized incremental-checkpoint resume: checkpoint mid-stream
    with the corpus on a sqlite file, reattach the same file, finish
    the stream, and land on the uninterrupted run's exact bytes."""
    from repro.stream.checkpoint import restore_engine

    rng = random.Random(seed ^ 0x51E1)
    corpus = random_corpus(rng)
    if not corpus:
        return
    config = random_config(rng)
    if not config.keep_observations:
        config = StreamConfig(
            num_shards=config.num_shards,
            shard_key=config.shard_key,
            keep_observations=True,
            retain_days=config.retain_days,
        )
    split = rng.randrange(len(corpus) + 1)

    reference = StreamEngine(config, origin_of=origin_of)
    reference.ingest_batch(corpus)
    reference.flush()
    final = json.dumps(engine_state(reference))

    db = tmp_path / "resume.sqlite"
    first = StreamEngine(
        config, origin_of=origin_of, store=ObservationStore(SqliteBackend(db))
    )
    for chunk in chunks(rng, corpus[:split]):
        first.ingest_batch(chunk)
    state = engine_state(first)  # commits the sqlite delta as a side effect
    del first  # "crash" -- only committed rows survive in the file

    reattached = ObservationStore(SqliteBackend(db))
    assert reattached.restore_rows(state["store"]) == 0  # nothing replayed
    resumed = restore_engine(state, origin_of=origin_of, store=reattached)
    for chunk in chunks(rng, corpus[split:]):
        resumed.ingest_columns(ColumnBatch.from_observations(chunk))
    resumed.flush()
    assert json.dumps(engine_state(resumed)) == final


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_replication_matches_full_restore(seed, tmp_path):
    """Randomized replication-consumer equivalence: a follower applying
    each shipped segment incrementally through a ``ChainAssembler`` --
    including one that goes offline mid-chain and catches up from its
    ``(base_id, seq)`` high-water mark, across a forced rebase -- must
    land on byte-identical ``engine_state`` JSON to a direct full
    restore of the primary's checkpoint file, at every save point."""
    from repro.stream.checkpoint import restore_engine
    from repro.stream.ckptbin import (
        BinaryCheckpointer,
        ChainAssembler,
        chain_info,
        read_state,
        segment_bytes,
    )

    rng = random.Random(seed ^ 0x5E61)
    corpus = random_corpus(rng)
    if not corpus:
        return
    config = random_config(rng)
    save_points = rng.randint(3, 6)
    path = tmp_path / "replicated.bin"
    # A tight max_chain makes organic rebases likely; one save is also
    # forced full so every seed crosses at least one base change.
    saver = BinaryCheckpointer(path, max_chain=rng.choice([2, 3, 16]))
    forced_full_at = rng.randrange(1, save_points)
    engine = StreamEngine(config, origin_of=origin_of)

    follower = ChainAssembler(label="<follower>")
    applied = 0  # segments of the current chain the follower has applied
    # The laggard drops offline for a stretch of saves, then reconnects
    # and catches up exactly the way the wire protocol does: replay
    # everything past its (base_id, seq), or the whole chain on a base
    # change.
    laggard = ChainAssembler(label="<laggard>")
    lag_applied = 0
    offline = (rng.randrange(1, save_points), rng.randrange(1, save_points))
    offline = (min(offline), max(offline))

    def apply_tail(assembler, have, infos):
        """The follower-side contract: reset on a new base, then apply
        the missing tail; returns the new applied count."""
        if have and assembler.base_id != infos[0].base_id:
            assembler.__init__(label=assembler._label)
            have = 0
        for info in infos[have:]:
            assembler.apply(segment_bytes(path, info))
        return len(infos)

    step = max(1, len(corpus) // save_points)
    for point in range(save_points):
        chunk = corpus[point * step :] if point == save_points - 1 else (
            corpus[point * step : (point + 1) * step]
        )
        engine.ingest_batch(chunk)
        engine.flush()
        saver.save(engine, mode="full" if point == forced_full_at else "auto")
        infos = chain_info(path)
        applied = apply_tail(follower, applied, infos)
        if not (offline[0] <= point < offline[1]):
            lag_applied = apply_tail(laggard, lag_applied, infos)
        # The live follower tracks the file exactly at every save.
        direct = json.dumps(
            engine_state(restore_engine(read_state(path), origin_of=origin_of))
        )
        assert (
            json.dumps(
                engine_state(restore_engine(follower.state(), origin_of=origin_of))
            )
            == direct
        )
    # The laggard's final catch-up converges on the same bytes.
    lag_applied = apply_tail(laggard, lag_applied, chain_info(path))
    assert json.dumps(laggard.state(), sort_keys=True) == json.dumps(
        follower.state(), sort_keys=True
    )
    assert json.dumps(
        engine_state(restore_engine(follower.state(), origin_of=origin_of))
    ) == json.dumps(engine_state(engine))
