"""Edge cases of the engine's day handling, pinned as defined behavior.

Three regions of the day state machine:

* **closed days** -- any day strictly older than the stream's current
  day raises; the current day itself stays open even after a ``flush``
  closed it, and late rows for it count in the *next* diff (never
  re-running the one already folded into ``live_detection``);
* **retention boundaries** -- ``retain_days=2`` is the legal minimum
  and keeps exactly the closing day plus the accumulating one;
* **pruning vs. on-demand diffs** -- ``prune_pair_days`` makes pruned
  days read as empty snapshots to ``rotation_between`` while the
  accumulated ``live_detection`` keeps their contribution.
"""

import pytest

from repro.core.records import ProbeObservation
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.parallel import ParallelStreamEngine

EUI = 0x0219C6FFFE000001  # carries the ff:fe marker
NET48 = 0x20010DB8 << 96


def eui_obs(day: int, subnet: int, n: int = 3, t_offset: float = 0.0):
    """n EUI-64 pairs in /64 ``subnet`` of the test /48 on ``day``."""
    base = NET48 | (subnet << 72)
    return [
        ProbeObservation(
            day=day,
            t_seconds=day * 86_400.0 + t_offset + i,
            target=base | i,
            source=base | (EUI + (i << 44)),  # above the ff:fe marker bits
        )
        for i in range(n)
    ]


def resident_days(engine: StreamEngine) -> set[int]:
    engine.materialize()  # shard peeking bypasses the reading accessors
    days: set[int] = set()
    for shard in engine.shards:
        days |= set(shard.pairs_by_day)
    return days


class TestClosedDays:
    def test_day_older_than_current_raises_every_path(self):
        stale = ProbeObservation(day=3, t_seconds=0.0, target=1, source=2)
        engine = StreamEngine(StreamConfig(num_shards=1))
        engine.ingest_batch(eui_obs(5, subnet=1))
        with pytest.raises(ValueError, match="backwards"):
            engine.ingest(stale)
        with pytest.raises(ValueError, match="backwards"):
            engine.ingest_batch([stale])
        with ParallelStreamEngine(
            StreamConfig(num_shards=1), num_workers=1
        ) as parallel:
            parallel.ingest_batch(eui_obs(5, subnet=1))
            with pytest.raises(ValueError, match="backwards"):
                parallel.ingest(stale)

    def test_current_day_reopens_after_flush(self):
        """flush() closes the in-progress day, but the day is not gone:
        more rows for it are legal (defined behavior, not an error)."""
        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.ingest_batch(eui_obs(0, subnet=1))
        engine.flush()
        engine.ingest_batch(eui_obs(0, subnet=2, t_offset=100.0))  # same day
        assert engine.current_day == 0
        assert len(engine._pairs_on(0)) == 6

    def test_late_rows_count_in_next_diff_only(self):
        """A closed day's diff is never re-run; rows arriving for the
        still-current day after its close contribute to the *next*
        day-over-day comparison through the day's (now larger) pair
        snapshot."""
        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.ingest_batch(eui_obs(0, subnet=1))
        engine.ingest_batch(eui_obs(1, subnet=1))  # closes day 0: stable pairs
        engine.flush()  # closes day 1 early
        assert engine.live_detection.stable_pairs == 3
        before = set(engine.live_detection.changed_pairs)

        late = eui_obs(1, subnet=9, t_offset=500.0)  # late rows, still day 1
        engine.ingest_batch(late)
        # The day-0-vs-1 diff is not re-run...
        assert engine.live_detection.changed_pairs == before
        # ...but day 1's snapshot now includes the late pairs, so the
        # 1-vs-2 diff sees them disappear.
        engine.ingest_batch(eui_obs(2, subnet=1))
        engine.flush()
        late_pairs = {(o.target, o.source) for o in late}
        assert late_pairs <= engine.live_detection.changed_pairs
        assert late_pairs <= engine.rotation_between(1, 2).changed_pairs

    def test_flush_idempotent(self):
        engine = StreamEngine(StreamConfig(num_shards=1))
        engine.ingest_batch(eui_obs(0, subnet=1) + eui_obs(1, subnet=2))
        first = engine.flush()
        snapshot = (
            set(first.changed_pairs),
            set(first.rotating_prefixes),
            first.stable_pairs,
        )
        second = engine.flush()
        assert second is first
        assert (
            set(second.changed_pairs),
            set(second.rotating_prefixes),
            second.stable_pairs,
        ) == snapshot

    def test_flush_on_empty_engine(self):
        engine = StreamEngine(StreamConfig(num_shards=1))
        detection = engine.flush()
        assert not detection.changed_pairs and detection.stable_pairs == 0


class TestRetentionBoundary:
    def test_retain_days_one_rejected_two_is_minimum(self):
        with pytest.raises(ValueError, match="retain_days"):
            StreamConfig(retain_days=1)
        assert StreamConfig(retain_days=2).retain_days == 2

    def test_retain_two_keeps_closing_and_accumulating_days(self):
        engine = StreamEngine(
            StreamConfig(num_shards=2, retain_days=2, keep_observations=False)
        )
        for day in range(6):
            engine.ingest_batch(eui_obs(day, subnet=day))
            if day:
                # After day N opens, day N-1 just closed: exactly the
                # boundary pair {N-1, N} stays resident.
                assert resident_days(engine) == {day - 1, day}
        engine.flush()
        assert resident_days(engine) == {5}

    def test_bounded_detection_equals_unbounded_across_gaps(self):
        bounded = StreamEngine(
            StreamConfig(num_shards=2, retain_days=2, keep_observations=False)
        )
        unbounded = StreamEngine(
            StreamConfig(num_shards=2, keep_observations=False)
        )
        for day in (0, 1, 4, 5, 6):  # a scan gap between 1 and 4
            observations = eui_obs(day, subnet=day % 3)
            bounded.ingest_batch(list(observations))
            unbounded.ingest_batch(observations)
        assert bounded.flush().changed_pairs == unbounded.flush().changed_pairs


class TestPruneVsRotationBetween:
    def test_pruned_day_reads_as_empty_snapshot(self):
        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.ingest_batch(eui_obs(0, subnet=1))
        engine.ingest_batch(eui_obs(1, subnet=2))
        engine.flush()
        live_before = set(engine.live_detection.changed_pairs)
        on_demand = engine.rotation_between(0, 1)
        assert on_demand.changed_pairs == live_before

        engine.prune_pair_days(1)  # drop day 0
        # Day 0 now diffs as an empty snapshot: only day 1's pairs
        # appear, all flagged as "appeared".
        pruned_diff = engine.rotation_between(0, 1)
        assert pruned_diff.changed_pairs == engine._pairs_on(1)
        assert pruned_diff.stable_pairs == 0
        # The accumulated live detection kept day 0's contribution.
        assert engine.live_detection.changed_pairs == live_before

    def test_prune_future_threshold_empties_everything(self):
        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.ingest_batch(eui_obs(0, subnet=1) + eui_obs(1, subnet=2))
        engine.prune_pair_days(10)
        assert resident_days(engine) == set()
        assert not engine.rotation_between(0, 1).changed_pairs
