"""Format-agnostic checkpoint comparison for stream tests.

JSON checkpoints are the byte-identity oracle: two equivalent ones are
literally the same text, so they compare raw.  Binary chains embed a
random segment id (and may split the same state across delta segments),
so equivalent binary checkpoints are never byte-identical; they compare
by the canonical JSON their decoded state re-serializes to after a
restore round-trip (which re-sorts the sets the binary blocks carry
unordered).
"""

import json
from pathlib import Path

from repro.stream.checkpoint import engine_state, is_binary_checkpoint, restore_engine


def checkpoint_fingerprint(path: str | Path) -> str:
    """Canonical content of a checkpoint file, comparable across runs."""
    path = Path(path)
    if not is_binary_checkpoint(path):
        return path.read_text()
    from repro.stream.ckptbin import read_state

    state = read_state(path)
    if "progress" in state:  # campaign-shaped checkpoint
        return json.dumps(
            {
                "version": state["version"],
                "progress": state["progress"],
                "engine": engine_state(restore_engine(state["engine"])),
                "store": state["store"],
            },
            sort_keys=True,
        )
    return json.dumps(engine_state(restore_engine(state)), sort_keys=True)
