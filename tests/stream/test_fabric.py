"""Distributed fabric tests: framing, socket equivalence, and faults.

The socket transport must be invisible to the checkpoint oracle --
``engine_state`` bytes identical to the serial engine at any worker
count, through mid-stream snapshots and resume -- and *visible* only
when something breaks: a worker killed mid-chunk requeues onto a
survivor (same bytes) or aborts with a committed checkpoint, a
connection that never says hello times the master out, and a corrupted
frame poisons exactly one channel, never the stream's integrity.
"""

import json
import os
import signal
import socket
import struct
import threading
import time
import zlib

import pytest

from _worlds import build_campaign, build_rotating_internet

from repro import config
from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.fabric import (
    PROTO_VERSION,
    FabricError,
    SocketTransport,
    WorkerCore,
    WorkerLost,
    parse_worker_spec,
)
from repro.stream.fabric import framing
from repro.stream.fabric.transport import PipeTransport
from repro.stream.parallel import ParallelStreamEngine


@pytest.fixture(scope="module")
def world():
    internet = build_rotating_internet()
    store = build_campaign(internet).run().store
    return internet, list(store)


def reference_state(internet, corpus, config_):
    engine = StreamEngine(config_, origin_of=internet.rib.origin_of)
    engine.ingest_batch(corpus)
    engine.flush()
    return json.dumps(engine_state(engine))


def socket_transport(**kwargs):
    kwargs.setdefault("spawn", "thread")
    kwargs.setdefault("heartbeat", 0.2)
    kwargs.setdefault("connect_timeout", 15.0)
    return SocketTransport(**kwargs)


class TestFraming:
    def roundtrip(self, payload, max_bytes=1 << 20):
        a, b = socket.socketpair()
        try:
            framing.send_frame(a, payload)
            return framing.recv_frame(b, max_bytes)
        finally:
            a.close()
            b.close()

    def test_roundtrip(self):
        message = ("rows", [1, 2, 3], {"k": (4, 5)})
        assert framing.decode(self.roundtrip(framing.encode(message))) == message

    def test_clean_close_is_eof(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(EOFError):
            framing.recv_frame(b, 1 << 20)
        b.close()

    def test_truncated_payload(self):
        a, b = socket.socketpair()
        payload = framing.encode(("rows", list(range(50))))
        header = struct.pack("<4sII", framing.MAGIC, len(payload), zlib.crc32(payload))
        a.sendall(header + payload[: len(payload) // 2])
        a.close()
        with pytest.raises(framing.FrameError, match="truncated frame payload"):
            framing.recv_frame(b, 1 << 20)
        b.close()

    def test_bad_magic(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack("<4sII", b"HTTP", 4, 0) + b"gotc")
        with pytest.raises(framing.FrameError, match="bad frame magic"):
            framing.recv_frame(b, 1 << 20)
        a.close()
        b.close()

    def test_oversize_rejected_before_allocation(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack("<4sII", framing.MAGIC, 1 << 31, 0))
        with pytest.raises(framing.FrameError, match="exceeds limit"):
            framing.recv_frame(b, 1 << 20)
        a.close()
        b.close()

    def test_crc_mismatch(self):
        payload = framing.encode(("rows", [7, 8, 9]))
        corrupted = bytearray(payload)
        corrupted[-1] ^= 0xFF
        a, b = socket.socketpair()
        header = struct.pack(
            "<4sII", framing.MAGIC, len(corrupted), zlib.crc32(payload)
        )
        a.sendall(header + bytes(corrupted))
        with pytest.raises(framing.FrameError, match="CRC mismatch"):
            framing.recv_frame(b, 1 << 20)
        a.close()
        b.close()


class TestAuthentication:
    """The mutual HMAC handshake: nothing is unpickled pre-auth."""

    def test_mutual_handshake_roundtrip(self):
        a, b = socket.socketpair()
        errors = []

        def master():
            try:
                framing.authenticate_master(a, "s3kr1t")
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        thread = threading.Thread(target=master)
        thread.start()
        try:
            framing.authenticate_worker(b, "s3kr1t")
        finally:
            thread.join(timeout=5)
            a.close()
            b.close()
        assert not errors

    def test_wrong_key_rejected_by_master(self):
        a, b = socket.socketpair()
        rejections = []

        def master():
            try:
                framing.authenticate_master(a, "right")
            except framing.AuthenticationError as exc:
                rejections.append(exc)
            finally:
                a.close()  # what the accept loop does on any failure

        thread = threading.Thread(target=master)
        thread.start()
        with pytest.raises((framing.FrameError, EOFError, OSError)):
            framing.authenticate_worker(b, "wrong")
        thread.join(timeout=5)
        b.close()
        assert rejections, "master must reject the wrong digest"

    def test_wrong_key_worker_never_occupies_slot(self):
        transport = SocketTransport(authkey="s3kr1t", connect_timeout=1.0)
        address = transport.connect_address

        def imposter():
            from repro.stream.fabric.worker import run_worker

            with pytest.raises(FabricError, match="handshake"):
                run_worker(address, authkey="wrong")

        thread = threading.Thread(target=imposter, daemon=True)
        thread.start()
        try:
            with pytest.raises(FabricError, match="waiting for worker 0"):
                transport.start(1, num_shards=2, asn_keyed=False, columnar=False)
        finally:
            thread.join(timeout=5)
            transport.close()

    def test_unauthenticated_pickle_is_never_decoded(self):
        # A pre-auth pickled hello (the pre-authkey wire format, or an
        # attacker's payload) must be dropped without ever reaching
        # pickle.loads: it arrives where the master expects a raw
        # digest frame, fails the prefix check, and the connection is
        # closed -- the worker slot stays empty.
        transport = SocketTransport(connect_timeout=1.0)
        port = int(transport.address.rsplit(":", 1)[1])
        sock = socket.create_connection(("127.0.0.1", port))
        framing.send_frame(sock, framing.encode(("hello", PROTO_VERSION, 1)))
        try:
            with pytest.raises(FabricError, match="waiting for worker 0"):
                transport.start(1, num_shards=2, asn_keyed=False, columnar=False)
        finally:
            sock.close()
            transport.close()

    def test_worker_requires_an_authkey(self, monkeypatch):
        monkeypatch.delenv(config.ENV_FABRIC_AUTHKEY, raising=False)
        from repro.stream.fabric.worker import run_worker

        with pytest.raises(FabricError, match="authkey"):
            run_worker("tcp://127.0.0.1:1")

    def test_master_resolves_env_authkey(self, monkeypatch):
        monkeypatch.setenv(config.ENV_FABRIC_AUTHKEY, "from-env")
        transport = SocketTransport()
        try:
            assert transport.authkey == "from-env"
        finally:
            transport.close()


class TestWorkerSpec:
    def test_bare_integer_is_pipes(self):
        transport, workers = parse_worker_spec("3")
        assert isinstance(transport, PipeTransport)
        assert workers == 3

    def test_local_scheme(self):
        transport, workers = parse_worker_spec("local://2")
        assert isinstance(transport, PipeTransport)
        assert workers == 2

    def test_tcp_with_knobs(self):
        transport, workers = parse_worker_spec(
            "tcp://127.0.0.1:0?workers=4&policy=abort&spawn=thread"
            "&heartbeat=0.5&heartbeat_timeout=3&connect_timeout=6"
        )
        try:
            assert workers == 4
            assert transport.policy == "abort"
            assert transport.spawn == "thread"
            assert transport.heartbeat == 0.5
            assert transport.heartbeat_timeout == 3.0
            assert transport.connect_timeout == 6.0
            assert transport.address.startswith("tcp://127.0.0.1:")
        finally:
            transport.close()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(FabricError, match="unsupported worker spec"):
            parse_worker_spec("udp://127.0.0.1:9")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown fabric policy"):
            SocketTransport(policy="retry")


class TestSocketEquivalence:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_byte_identical_checkpoints(self, world, num_workers):
        internet, corpus = world
        config_ = StreamConfig(num_shards=8, keep_observations=True)
        expected = reference_state(internet, corpus, config_)
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=num_workers,
            batch_rows=64,
            transport=socket_transport(),
        )
        parallel.ingest_batch(corpus)
        merged = parallel.finalize()
        assert json.dumps(engine_state(merged)) == expected

    def test_mid_stream_snapshot_then_resume(self, world):
        internet, corpus = world
        config_ = StreamConfig(num_shards=5, keep_observations=False)
        half = len(corpus) // 2

        reference = StreamEngine(config_, origin_of=internet.rib.origin_of)
        reference.ingest_batch(corpus[:half])
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=2,
            batch_rows=32,
            transport=socket_transport(),
        )
        parallel.ingest_batch(corpus[:half])
        # The snapshot leaves the in-progress day open, like the live
        # engine, and never perturbs the stream that continues past it.
        assert engine_state(parallel.snapshot_engine()) == engine_state(reference)

        reference.ingest_batch(corpus[half:])
        reference.flush()
        parallel.ingest_batch(corpus[half:])
        merged = parallel.finalize()
        assert engine_state(merged) == engine_state(reference)

    def test_columnar_worker_kernel(self, world):
        internet, corpus = world
        config_ = StreamConfig(num_shards=4, keep_observations=False)
        expected = reference_state(internet, corpus, config_)
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=2,
            columnar=True,
            transport=socket_transport(),
        )
        parallel.ingest_batch(corpus)
        assert json.dumps(engine_state(parallel.finalize())) == expected

    def test_campaign_accepts_worker_spec_string(self, world):
        internet, _corpus = world
        serial = StreamingCampaign(build_campaign(internet))
        serial.run()
        fabric = StreamingCampaign(
            build_campaign(internet),
            workers="tcp://127.0.0.1:0?workers=2&spawn=thread",
        )
        fabric.run()
        assert json.dumps(engine_state(fabric.engine)) == json.dumps(
            engine_state(serial.engine)
        )


class TestFaults:
    def test_killed_worker_requeues_onto_survivor(self, world):
        internet, corpus = world
        config_ = StreamConfig(num_shards=6, keep_observations=False)
        expected = reference_state(internet, corpus, config_)
        transport = socket_transport(
            spawn="process", heartbeat=0.2, heartbeat_timeout=1.5
        )
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=2,
            batch_rows=32,
            transport=transport,
        )
        half = len(corpus) // 2
        parallel.ingest_batch(corpus[:half])
        parallel.barrier()  # everything so far is applied, journaled
        os.kill(transport.channels[1].pid, signal.SIGKILL)
        parallel.ingest_batch(corpus[half:])
        merged = parallel.finalize()
        assert json.dumps(engine_state(merged)) == expected

    def test_abort_policy_raises_with_checkpoint_hint(self, world):
        internet, corpus = world
        config_ = StreamConfig(num_shards=4, keep_observations=False)
        transport = socket_transport(
            spawn="process",
            policy="abort",
            heartbeat=0.2,
            heartbeat_timeout=1.5,
        )
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=2,
            batch_rows=32,
            transport=transport,
        )
        half = len(corpus) // 2
        parallel.ingest_batch(corpus[:half])
        parallel.barrier()
        os.kill(transport.channels[0].pid, signal.SIGKILL)
        # No hang, no silent loss: the dispatcher surfaces the dead
        # worker as an abort pointing at the last committed checkpoint.
        with pytest.raises(FabricError, match="checkpoint"):
            parallel.ingest_batch(corpus[half:])
            parallel.barrier()
        parallel.close()

    def test_journal_bound_degrades_to_abort(self, world):
        # Past the journal row bound the dispatcher stops retaining
        # replay state (memory stays bounded); a worker lost after
        # that aborts to the last committed checkpoint instead of
        # requeueing -- loudly, never a hang or silent loss.
        internet, corpus = world
        config_ = StreamConfig(num_shards=4, keep_observations=False)
        transport = socket_transport(
            spawn="process",
            heartbeat=0.2,
            heartbeat_timeout=1.5,
            journal_limit=64,
        )
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=2,
            batch_rows=32,
            transport=transport,
        )
        half = len(corpus) // 2
        parallel.ingest_batch(corpus[:half])
        parallel.barrier()
        assert parallel._journals is None, "journal bound should have tripped"
        os.kill(transport.channels[1].pid, signal.SIGKILL)
        with pytest.raises(FabricError, match="journal"):
            parallel.ingest_batch(corpus[half:])
            parallel.barrier()
        parallel.close()

    def test_connect_timeout_when_worker_never_says_hello(self):
        transport = SocketTransport(connect_timeout=1.0)
        # A connection that never completes the handshake must not
        # satisfy the accept loop -- the master waits out the deadline.
        lurker = socket.create_connection(
            ("127.0.0.1", int(transport.address.rsplit(":", 1)[1]))
        )
        try:
            started = time.monotonic()
            with pytest.raises(FabricError, match="waiting for worker 0"):
                transport.start(1, num_shards=4, asn_keyed=False, columnar=False)
            assert time.monotonic() - started >= 0.9
        finally:
            lurker.close()
            transport.close()

    def test_garbage_connection_is_dropped_not_fatal(self, world):
        internet, corpus = world
        config_ = StreamConfig(num_shards=4, keep_observations=False)
        expected = reference_state(internet, corpus, config_)
        transport = socket_transport(spawn=None, connect_timeout=15.0)
        port = int(transport.address.rsplit(":", 1)[1])

        def noise_then_worker():
            noise = socket.create_connection(("127.0.0.1", port))
            noise.sendall(b"GET / HTTP/1.1\r\n\r\n")
            noise.close()
            from repro.stream.fabric.worker import run_worker

            run_worker(transport.connect_address, authkey=transport.authkey)

        thread = threading.Thread(target=noise_then_worker, daemon=True)
        thread.start()
        parallel = ParallelStreamEngine(
            config_,
            origin_of=internet.rib.origin_of,
            num_workers=1,
            transport=transport,
        )
        parallel.ingest_batch(corpus)
        assert json.dumps(engine_state(parallel.finalize())) == expected
        thread.join(timeout=5)

    def test_protocol_version_mismatch_is_fatal(self):
        transport = SocketTransport(connect_timeout=5.0)
        port = int(transport.address.rsplit(":", 1)[1])

        def imposter():
            # Holds the right key (version skew is an ops mistake, not
            # an attack) but speaks a different protocol revision.
            sock = socket.create_connection(("127.0.0.1", port))
            framing.authenticate_worker(sock, transport.authkey)
            framing.send_frame(sock, framing.encode(("hello", PROTO_VERSION + 1, 123)))
            time.sleep(1.0)
            sock.close()

        thread = threading.Thread(target=imposter, daemon=True)
        thread.start()
        with pytest.raises(FabricError, match="protocol"):
            transport.start(1, num_shards=2, asn_keyed=False, columnar=False)
        thread.join(timeout=5)
        transport.close()


class TestLiveness:
    """Dead means gone, not busy: liveness rides worker-push beats."""

    def _fake_worker_socket(self, transport):
        """Complete auth + hello by hand; returns the worker-side sock."""
        port = int(transport.address.rsplit(":", 1)[1])
        sock = socket.create_connection(("127.0.0.1", port))
        framing.authenticate_worker(sock, transport.authkey)
        framing.send_frame(sock, framing.encode(("hello", PROTO_VERSION, 0)))
        welcome = framing.decode(framing.recv_frame(sock, 1 << 20))
        assert welcome[0] == "welcome"
        return sock

    def test_pushed_beats_keep_a_busy_worker_alive(self):
        # A worker too busy applying backlog to answer master pings
        # (it never reads its socket at all here) must NOT be declared
        # dead as long as its beat thread keeps pushing.
        transport = SocketTransport(
            heartbeat=0.1, heartbeat_timeout=0.8, connect_timeout=10.0
        )
        stop = threading.Event()

        def busy_worker():
            sock = self._fake_worker_socket(transport)
            while not stop.wait(0.1):
                framing.send_frame(sock, framing.encode(("hb_push",)))
            sock.close()

        thread = threading.Thread(target=busy_worker, daemon=True)
        thread.start()
        try:
            channel = transport.start(
                1, num_shards=2, asn_keyed=False, columnar=False
            )[0]
            time.sleep(2.0)  # well past heartbeat_timeout
            assert channel.alive, channel.dead_reason
        finally:
            stop.set()
            thread.join(timeout=5)
            transport.close()

    def test_silent_worker_is_declared_dead(self):
        # The converse: a worker whose beats stop (process wedged,
        # host gone -- the socket may stay open) is declared dead
        # after the timeout, and a blocked recv() wakes as WorkerLost.
        transport = SocketTransport(
            heartbeat=0.1, heartbeat_timeout=0.5, connect_timeout=10.0
        )
        done = threading.Event()

        def wedged_worker():
            sock = self._fake_worker_socket(transport)
            done.wait(5.0)  # never beats, never replies
            sock.close()

        thread = threading.Thread(target=wedged_worker, daemon=True)
        thread.start()
        try:
            channel = transport.start(
                1, num_shards=2, asn_keyed=False, columnar=False
            )[0]
            deadline = time.monotonic() + 5.0
            while channel.alive and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not channel.alive
            assert "no heartbeat" in channel.dead_reason
            with pytest.raises(WorkerLost):
                channel.recv()
        finally:
            done.set()
            thread.join(timeout=5)
            transport.close()

    def test_writer_failure_surfaces_as_worker_lost(self):
        # An unpicklable message kills the writer thread; the channel
        # must go dead (and wake recv) instead of hanging send().
        transport = socket_transport(connect_timeout=10.0)
        try:
            channel = transport.start(
                1, num_shards=2, asn_keyed=False, columnar=False
            )[0]
            channel.send(("rows", lambda row: row))  # lambdas don't pickle
            with pytest.raises(WorkerLost):
                channel.recv()
            assert not channel.alive
            assert "writer failed" in channel.dead_reason
        finally:
            transport.close()


class TestWorkerCore:
    def test_day_pair_columns_are_flat_ints(self, world):
        internet, corpus = world
        core = WorkerCore(4, False, False)
        rows = [(o.day, o.target, o.source, 0) for o in corpus]
        core.apply_rows(rows)
        day = corpus[0].day
        t_hi, t_lo, s_hi, s_lo = core.day_pair_columns(day)
        assert len(t_hi) == len(t_lo) == len(s_hi) == len(s_lo)
        assert t_hi, "expected pairs on a scanned day"
        for column in (t_hi, t_lo, s_hi, s_lo):
            assert all(type(value) is int for value in column)
        # The flat columns reassemble into exactly the engine's pair set.
        from repro.stream.fabric import pairs_from_columns

        reference = StreamEngine(
            StreamConfig(num_shards=4), origin_of=internet.rib.origin_of
        )
        for observation in corpus:
            reference.ingest(observation)
        expected = {
            (t, s)
            for t, s in pairs_from_columns((t_hi, t_lo, s_hi, s_lo))
        }
        assert expected == reference._pairs_on(day)


class TestSettings:
    def test_explicit_overrides_beat_environment(self, monkeypatch):
        monkeypatch.setenv(config.ENV_FABRIC_HEARTBEAT, "7.5")
        assert config.current().fabric_heartbeat_seconds == 7.5
        assert (
            config.current(fabric_heartbeat_seconds=0.25).fabric_heartbeat_seconds
            == 0.25
        )

    def test_empty_string_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(config.ENV_CHECKPOINT_FORMAT, "")
        assert config.current().checkpoint_format is None

    def test_none_override_falls_through(self, monkeypatch):
        monkeypatch.setenv(config.ENV_FABRIC_CONNECT_TIMEOUT, "3")
        assert config.current(fabric_connect_timeout=None).fabric_connect_timeout == 3.0

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError, match="unknown setting"):
            config.current(heartbeat=1.0)

    def test_bad_number_is_loud(self, monkeypatch):
        monkeypatch.setenv(config.ENV_FABRIC_MAX_FRAME, "huge")
        with pytest.raises(ValueError, match="expected an integer"):
            config.current()

    def test_journal_limit_resolves_from_env(self, monkeypatch):
        monkeypatch.setenv(config.ENV_FABRIC_JOURNAL_LIMIT, "123")
        assert config.current().fabric_journal_limit_rows == 123
        unbounded = config.current(fabric_journal_limit_rows=0)
        assert unbounded.fabric_journal_limit_rows == 0

    def test_transport_resolves_env_knobs(self, monkeypatch):
        monkeypatch.setenv(config.ENV_FABRIC_HEARTBEAT, "0.7")
        monkeypatch.setenv(config.ENV_FABRIC_HEARTBEAT_TIMEOUT, "4.2")
        transport = SocketTransport()
        try:
            assert transport.heartbeat == 0.7
            assert transport.heartbeat_timeout == 4.2
        finally:
            transport.close()


class TestIngestSink:
    def test_polymorphic_ingest_matches_primitives(self, world):
        internet, corpus = world
        config_ = StreamConfig(num_shards=4, keep_observations=False)
        expected = reference_state(internet, corpus, config_)

        poly = StreamEngine(config_, origin_of=internet.rib.origin_of)
        assert poly.ingest(corpus) == len(corpus)  # iterable dispatch
        poly.flush()
        assert json.dumps(engine_state(poly)) == expected

        single = StreamEngine(config_, origin_of=internet.rib.origin_of)
        for observation in corpus:
            assert single.ingest(observation) == 1  # observation dispatch
        single.flush()
        assert json.dumps(engine_state(single)) == expected

    def test_legacy_names_still_work(self, world):
        from repro.net.icmpv6 import IcmpType, ProbeResponse

        internet, corpus = world
        config_ = StreamConfig(num_shards=4, keep_observations=False)
        expected = reference_state(internet, corpus, config_)
        responses = [
            ProbeResponse(
                target=o.target,
                source=o.source,
                icmp_type=IcmpType.ECHO_REPLY,
                code=0,
                time=o.t_seconds,
            )
            for o in corpus
        ]

        batch = StreamEngine(config_, origin_of=internet.rib.origin_of)
        assert batch.ingest_responses(responses) == len(corpus)
        batch.flush()
        assert json.dumps(engine_state(batch)) == expected

        single = StreamEngine(config_, origin_of=internet.rib.origin_of)
        for response, observation in zip(responses, corpus):
            single.ingest_response(response, day=observation.day)
        single.flush()
        assert json.dumps(engine_state(single)) == expected

        feed = StreamEngine(config_, origin_of=internet.rib.origin_of)
        assert feed.ingest_feed(iter(corpus)) == len(corpus)
        feed.flush()
        assert json.dumps(engine_state(feed)) == expected
