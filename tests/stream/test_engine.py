"""Engine unit tests: sharding, incremental aggregates, live detection,
watchlist, and checkpoint round-trips."""

import json

import pytest

from repro.core.allocation import AllocationInference
from repro.core.records import ProbeObservation
from repro.core.rotation_detect import detect_rotating_prefixes
from repro.core.rotation_pool import RotationPoolInference
from repro.scan.zmap import ScanConfig, Zmap6
from repro.stream.checkpoint import (
    engine_state,
    load_engine,
    restore_engine,
    save_engine,
)
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.shard import ShardKey, ShardRouter, net32_of
from repro.stream.state import ShardState, merge_spans

from _worlds import build_campaign, build_rotating_internet


def run_small_campaign():
    internet = build_rotating_internet()
    campaign = build_campaign(internet)
    return internet, campaign.run().store


def fill_engine(num_shards=4, shard_key=ShardKey.PREFIX32, keep_observations=True):
    internet, store = run_small_campaign()
    engine = StreamEngine(
        StreamConfig(
            num_shards=num_shards,
            shard_key=shard_key,
            keep_observations=keep_observations,
        ),
        origin_of=internet.rib.origin_of,
    )
    engine.ingest_batch(iter(store))
    engine.flush()
    return internet, store, engine


class TestShardRouter:
    def test_deterministic_and_in_range(self):
        router = ShardRouter(8)
        addrs = [0x20010DB8 << 96 | i << 64 | 5 for i in range(64)]
        shards = [router.shard_of(a) for a in addrs]
        assert shards == [router.shard_of(a) for a in addrs]
        assert all(0 <= s < 8 for s in shards)

    def test_same_prefix32_same_shard(self):
        router = ShardRouter(16)
        base = 0x20010DB8 << 96
        assert router.shard_of(base | 1) == router.shard_of(base | (1 << 90))

    def test_asn_key_requires_origin(self):
        with pytest.raises(ValueError):
            ShardRouter(4, ShardKey.ASN)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_net32(self):
        assert net32_of(0x20010DB8 << 96 | 42) == 0x20010DB8


class TestSpans:
    def test_merge_spans_is_minmax_union(self):
        a = {1: [5, 9]}
        b = {1: [2, 7], 2: [4, 4]}
        merge_spans(a, b)
        assert a == {1: [2, 9], 2: [4, 4]}

    def test_observe_ignores_non_eui64(self):
        shard = ShardState()
        shard.observe(
            ProbeObservation(day=0, t_seconds=0.0, target=1 << 64, source=7), asn=1
        )
        assert shard.n_observations == 1
        assert not shard.eui_iids and not shard.alloc_spans


class TestEngineInferenceEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 4])
    @pytest.mark.parametrize("shard_key", [ShardKey.PREFIX32, ShardKey.ASN])
    def test_matches_batch_algorithms(self, num_shards, shard_key):
        internet, store, engine = fill_engine(num_shards, shard_key)
        origin_of = internet.rib.origin_of
        for asn in (65001, 65002):
            batch_pool = RotationPoolInference.from_store(asn, store, origin_of)
            live_pool = engine.pool_inference(asn)
            assert live_pool.inferred_plen == batch_pool.inferred_plen
            assert live_pool.per_iid_plen == batch_pool.per_iid_plen
            batch_alloc = AllocationInference.from_store(asn, store, origin_of)
            live_alloc = engine.allocation_inference(asn)
            assert live_alloc.inferred_plen == batch_alloc.inferred_plen
            assert live_alloc.per_iid_plen == batch_alloc.per_iid_plen

    def test_day_filtered_allocation(self):
        internet, store, engine = fill_engine()
        origin_of = internet.rib.origin_of
        day = store.days()[0]
        batch = AllocationInference.from_store(65001, store, origin_of, day=day)
        live = engine.allocation_inference(65001, day=day)
        assert live.per_iid_plen == batch.per_iid_plen
        assert live.inferred_plen == batch.inferred_plen

    def test_summary_matches_store(self):
        _internet, store, engine = fill_engine()
        summary = engine.summary()
        assert summary["responses"] == len(store)
        assert summary["unique_addresses"] == len(store.unique_sources())
        assert summary["unique_eui64_addresses"] == len(store.unique_eui64_sources())
        assert summary["unique_eui64_iids"] == len(store.eui64_iids())

    def test_as_profiles_well_formed(self):
        _internet, _store, engine = fill_engine()
        profiles = engine.as_profiles()
        assert set(profiles) == {65001, 65002}
        for profile in profiles.values():
            assert profile.pool_plen <= profile.allocation_plen <= 64


class TestLiveRotationDetection:
    def test_matches_two_snapshot_batch_detector(self, rotating_internet):
        import random

        from repro.scan.targets import one_target_per_subnet
        from repro.net.addr import Prefix

        rng = random.Random(1)
        targets = one_target_per_subnet(Prefix.parse("2001:db8::/48"), 56, rng)
        scanner = Zmap6(rotating_internet, ScanConfig(seed=1))
        snap_a = scanner.scan(targets, start_seconds=18 * 3600.0)
        snap_b = scanner.scan(targets, start_seconds=42 * 3600.0)
        batch = detect_rotating_prefixes(snap_a, snap_b)

        engine = StreamEngine(StreamConfig(num_shards=4))
        engine.ingest_responses(snap_a.responses, day=0)
        engine.ingest_responses(snap_b.responses, day=1)
        live = engine.flush()
        assert live.changed_pairs == batch.changed_pairs
        assert live.rotating_prefixes == batch.rotating_prefixes
        assert live.stable_pairs == batch.stable_pairs

    def test_accumulates_across_days(self):
        _internet, _store, engine = fill_engine()
        assert engine.live_detection.rotating_prefixes  # rotators flagged live

    def test_rejects_backwards_days(self):
        engine = StreamEngine(StreamConfig(num_shards=1))
        obs = ProbeObservation(day=3, t_seconds=0.0, target=1, source=2)
        engine.ingest(obs)
        with pytest.raises(ValueError, match="backwards"):
            engine.ingest(ProbeObservation(day=2, t_seconds=0.0, target=1, source=2))

    def test_scanned_day_with_no_eui_pairs_still_diffs(self):
        """EUI-to-nothing-to-EUI across a pair-less (but scanned) middle
        day must flag both transitions, exactly like running the batch
        detector on each consecutive snapshot pair."""
        eui_source = (0x20010DB8 << 96) | 0x0219C6FFFE000001  # ff:fe marker
        plain_source = (0x20010DB8 << 96) | 0x1234  # not EUI-64
        eui_source_b = (0x20010DB9 << 96) | 0x0219C6FFFE000002
        target = 0x20010DB8 << 96 | 7

        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.ingest(
            ProbeObservation(day=0, t_seconds=0.0, target=target, source=eui_source)
        )
        engine.ingest(
            ProbeObservation(day=1, t_seconds=1.0, target=target, source=plain_source)
        )
        engine.ingest(
            ProbeObservation(day=2, t_seconds=2.0, target=target, source=eui_source_b)
        )
        live = engine.flush()

        assert (target, eui_source) in live.changed_pairs  # disappeared day 1
        assert (target, eui_source_b) in live.changed_pairs  # appeared day 2
        assert live.changed_pairs == (
            engine.rotation_between(0, 1).changed_pairs
            | engine.rotation_between(1, 2).changed_pairs
        )

    def test_unscanned_gap_days_do_not_diff(self):
        """A day gap (no scan at all) yields no snapshot to compare."""
        eui_source = (0x20010DB8 << 96) | 0x0219C6FFFE000001
        target = 0x20010DB8 << 96 | 7
        engine = StreamEngine(StreamConfig(num_shards=1))
        engine.ingest(
            ProbeObservation(day=0, t_seconds=0.0, target=target, source=eui_source)
        )
        engine.ingest(
            ProbeObservation(day=5, t_seconds=5.0, target=target, source=eui_source)
        )
        live = engine.flush()
        assert not live.changed_pairs and not live.rotating_prefixes


class TestFusedBatchPath:
    """ingest_batch is a hand-fused fast path; it must stay observably
    identical to the per-observation loop it replaced."""

    @pytest.mark.parametrize("shard_key", [ShardKey.PREFIX32, ShardKey.ASN])
    @pytest.mark.parametrize("keep_observations", [True, False])
    def test_state_identical_to_per_observation(self, shard_key, keep_observations):
        internet, store = run_small_campaign()
        config = StreamConfig(
            num_shards=4, shard_key=shard_key, keep_observations=keep_observations
        )
        reference = StreamEngine(config, origin_of=internet.rib.origin_of)
        for observation in store:
            reference.ingest(observation)
        reference.flush()
        batched = StreamEngine(config, origin_of=internet.rib.origin_of)
        batched.ingest_batch(iter(store))
        batched.flush()
        assert engine_state(batched) == engine_state(reference)
        if keep_observations:
            assert list(batched.store) == list(reference.store)

    def test_watchlist_identical_to_per_observation(self):
        _internet, store = run_small_campaign()
        watch = sorted(store.eui64_iids())[:3]
        reference = StreamEngine(StreamConfig(num_shards=2))
        batched = StreamEngine(StreamConfig(num_shards=2))
        for iid in watch:
            reference.watch(iid)
            batched.watch(iid)
        for observation in store:
            reference.ingest(observation)
        batched.ingest_batch(iter(store))
        for iid in watch:
            assert batched.last_sighting(iid) == reference.last_sighting(iid)

    def test_mixed_per_observation_and_batch_calls(self):
        internet, store = run_small_campaign()
        corpus = list(store)
        half = len(corpus) // 2
        mixed = StreamEngine(
            StreamConfig(num_shards=3), origin_of=internet.rib.origin_of
        )
        for observation in corpus[:half]:
            mixed.ingest(observation)
        mixed.ingest_batch(corpus[half:])
        mixed.flush()
        batched = StreamEngine(
            StreamConfig(num_shards=3), origin_of=internet.rib.origin_of
        )
        batched.ingest_batch(corpus)
        batched.flush()
        assert engine_state(mixed) == engine_state(batched)

    def test_batch_rejects_backwards_days(self):
        engine = StreamEngine(StreamConfig(num_shards=1))
        with pytest.raises(ValueError, match="backwards"):
            engine.ingest_batch(
                [
                    ProbeObservation(day=3, t_seconds=0.0, target=1, source=2),
                    ProbeObservation(day=2, t_seconds=1.0, target=1, source=2),
                ]
            )
        # The observation preceding the bad one was still ingested.
        assert engine.responses_ingested == 1


class TestBoundedRotationWindows:
    def _eui_obs(self, day, sub, n=4):
        base = (0x20010DB8 << 96) | (sub << 72)
        return [
            ProbeObservation(
                day=day,
                t_seconds=day * 86_400.0 + i,
                target=base | i,
                source=base | (0x0219C6FFFE000000 + i),
            )
            for i in range(n)
        ]

    def _resident_days(self, engine):
        engine.materialize()  # shard peeking bypasses the reading accessors
        days = set()
        for shard in engine.shards:
            days |= set(shard.pairs_by_day)
        return days

    def test_memory_resident_day_count_stays_constant(self):
        """The satellite guarantee: an indefinite run with retain_days=2
        never holds more than 2 days of pair sets."""
        engine = StreamEngine(
            StreamConfig(num_shards=4, retain_days=2, keep_observations=False)
        )
        for day in range(100):
            engine.ingest_batch(self._eui_obs(day, sub=day % 7))
            assert len(self._resident_days(engine)) <= 2
        engine.flush()
        assert self._resident_days(engine) == {99}

    def test_detection_identical_to_unbounded(self):
        bounded = StreamEngine(
            StreamConfig(num_shards=4, retain_days=2, keep_observations=False)
        )
        unbounded = StreamEngine(StreamConfig(num_shards=4, keep_observations=False))
        for day in range(30):
            observations = self._eui_obs(day, sub=day % 5)
            bounded.ingest_batch(observations)
            unbounded.ingest_batch(list(observations))
        bounded.flush()
        unbounded.flush()
        assert (
            bounded.live_detection.changed_pairs
            == unbounded.live_detection.changed_pairs
        )
        assert (
            bounded.live_detection.rotating_prefixes
            == unbounded.live_detection.rotating_prefixes
        )
        assert (
            bounded.live_detection.stable_pairs
            == unbounded.live_detection.stable_pairs
        )

    def test_pruned_day_reads_empty(self):
        engine = StreamEngine(
            StreamConfig(num_shards=2, retain_days=2, keep_observations=False)
        )
        for day in range(5):
            engine.ingest_batch(self._eui_obs(day, sub=day))
        assert not engine.rotation_between(0, 1).changed_pairs  # both pruned
        assert engine._pairs_on(4)  # current day retained

    def test_retain_days_config_roundtrips(self):
        engine = StreamEngine(
            StreamConfig(num_shards=2, retain_days=3, keep_observations=False)
        )
        engine.ingest_batch(self._eui_obs(0, sub=1))
        restored = restore_engine(json.loads(json.dumps(engine_state(engine))))
        assert restored.config.retain_days == 3
        assert engine_state(restored) == engine_state(engine)

    def test_pre_retention_checkpoint_loads(self):
        """Checkpoints written before the retain_days field still load."""
        engine = StreamEngine(StreamConfig(num_shards=1, keep_observations=False))
        engine.ingest_batch(self._eui_obs(0, sub=1))
        state = json.loads(json.dumps(engine_state(engine)))
        del state["config"]["retain_days"]
        restored = restore_engine(state)
        assert restored.config.retain_days is None

    def test_invalid_retain_days(self):
        with pytest.raises(ValueError, match="retain_days"):
            StreamConfig(retain_days=1)


class TestWatchlist:
    def test_sightings_track_freshest(self):
        _internet, store, engine_unused = fill_engine()
        some_iid = sorted(store.eui64_iids())[0]
        history = store.observations_of_iid(some_iid)
        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.watch(some_iid, initial_address=history[0].source)
        engine.ingest_batch(iter(store))
        sighting = engine.last_sighting(some_iid)
        freshest = max(history, key=lambda o: o.t_seconds)
        assert sighting.source == freshest.source
        assert sighting.t_seconds == freshest.t_seconds

    def test_unwatched_iids_not_tracked(self):
        _internet, store, _engine = fill_engine()
        engine = StreamEngine(StreamConfig(num_shards=2))
        engine.ingest_batch(iter(store))
        assert engine.last_sighting(12345) is None


class TestCheckpoint:
    def test_state_roundtrip_identical(self):
        internet, _store, engine = fill_engine()
        state = engine_state(engine)
        # JSON round-trip, as a file-based resume would see it.
        state = json.loads(json.dumps(state))
        restored = restore_engine(state, origin_of=internet.rib.origin_of)
        assert engine_state(restored) == engine_state(engine)
        assert (
            restored.pool_inference(65001).per_iid_plen
            == engine.pool_inference(65001).per_iid_plen
        )
        assert list(restored.store) == list(engine.store)

    def test_save_load_file(self, tmp_path):
        internet, _store, engine = fill_engine(keep_observations=False)
        path = save_engine(engine, tmp_path / "engine.json")
        restored = load_engine(path, origin_of=internet.rib.origin_of)
        assert engine_state(restored) == engine_state(engine)
        assert restored.store is None

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            restore_engine({"version": 999})

    def test_resume_continues_ingestion(self):
        internet, store, _engine = fill_engine()
        days = store.days()
        split = days[len(days) // 2]
        first = [o for o in store if o.day < split]
        rest = [o for o in store if o.day >= split]

        engine_a = StreamEngine(
            StreamConfig(num_shards=3), origin_of=internet.rib.origin_of
        )
        engine_a.ingest_batch(first)
        resumed = restore_engine(
            json.loads(json.dumps(engine_state(engine_a))),
            origin_of=internet.rib.origin_of,
        )
        resumed.ingest_batch(rest)
        resumed.flush()

        whole = StreamEngine(
            StreamConfig(num_shards=3), origin_of=internet.rib.origin_of
        )
        whole.ingest_batch(iter(store))
        whole.flush()
        assert engine_state(resumed) == engine_state(whole)
