"""Mid-campaign failure leaves a reattachable disk-backed corpus.

The crash-recovery contract of :meth:`StreamingCampaign.run`: when
ingest raises mid-campaign, a caller-provided store is committed and
closed before the exception propagates, so every row scanned before
the crash is durable in the sqlite file and
:meth:`StreamingCampaign.resume` can reattach it.  The resumed run
must finish with a final checkpoint byte-identical to a run that never
crashed -- ``restore`` discards the file's uncheckpointed suffix, the
resumed stream replays exactly those days, and nothing is doubled.
"""

import pytest

from _ckpt import checkpoint_fingerprint
from _worlds import CAMPAIGN_CONFIG, build_campaign

from repro.core.records import ObservationStore, ProbeObservation
from repro.store import SqliteBackend
from repro.stream.campaign import StreamingCampaign


def poison_feed(crash_day: int):
    """A passive vantage feed whose link dies at *crash_day*.

    Yields one (never-ingested) record for the crash day so the lazy
    drain holds it pending until that day completes, then raises on the
    next pull -- a crash inside day ``crash_day``'s feed drain, after
    that day's scan rows have already been stored.
    """
    yield ProbeObservation(
        day=crash_day,
        t_seconds=crash_day * 86_400.0,
        target=1,
        source=1,
    )
    raise RuntimeError("vantage link died")


def test_crash_commits_and_closes_caller_store(tmp_path):
    db = tmp_path / "corpus.sqlite"
    store = ObservationStore(SqliteBackend(db))
    streaming = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "ck.json",
        checkpoint_every=1,
        passive_feeds=[poison_feed(crash_day=4)],
        store=store,
    )
    with pytest.raises(RuntimeError, match="vantage link died"):
        streaming.run()
    # The store was closed (connection released) and its rows committed:
    # a fresh backend over the same file sees every pre-crash scan row.
    assert store.backend._con is None
    assert db.exists()
    salvaged = ObservationStore(SqliteBackend(db))
    assert len(salvaged) > 0
    days = {o.day for o in salvaged}
    assert days == {2, 3, 4}  # start_day=2; the crash was in day 4's drain
    salvaged.close()
    assert db.exists()  # closing a reattached file never unlinks it


def test_crashed_run_resumes_to_clean_run_bytes(tmp_path):
    # The reference: the same campaign, never crashed, never served by
    # a passive feed (the poison feed's only record is never ingested).
    clean = StreamingCampaign(
        build_campaign(), checkpoint_path=tmp_path / "clean.json"
    )
    clean.run()

    db = tmp_path / "corpus.sqlite"
    streaming = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "ck.json",
        checkpoint_every=1,
        passive_feeds=[poison_feed(crash_day=4)],
        store=ObservationStore(SqliteBackend(db)),
    )
    with pytest.raises(RuntimeError):
        streaming.run()

    # Reattach the salvaged file.  Its day-4 rows run ahead of the
    # day-3 checkpoint; restore discards that suffix and the resumed
    # stream replays day 4 onward.
    resumed = StreamingCampaign.resume(
        build_campaign(),
        tmp_path / "ck.json",
        store=ObservationStore(SqliteBackend(db)),
    )
    assert resumed.result.days_run == 2  # days 2 and 3 checkpointed
    resumed.run()
    assert resumed.finished
    assert resumed.result.days_run == CAMPAIGN_CONFIG.days
    # Fingerprints, not raw bytes: under REPRO_CHECKPOINT_FORMAT=binary
    # the two files chain different delta cadences around the same state.
    assert checkpoint_fingerprint(tmp_path / "ck.json") == checkpoint_fingerprint(
        tmp_path / "clean.json"
    )


def test_campaign_owned_store_is_left_alone_on_crash(tmp_path):
    """Only caller-provided stores are salvaged: the default store is
    temp-backed (closing would delete its file mid-exception) and has
    nothing a caller could reattach."""
    streaming = StreamingCampaign(
        build_campaign(),
        passive_feeds=[poison_feed(crash_day=4)],
    )
    with pytest.raises(RuntimeError):
        streaming.run()
    # Still usable: the result store was not closed under the caller.
    assert len(streaming.result.store) > 0
