"""Passive-feed adapter tests.

The layer's core guarantee: feeds are *lossless*.  A passive feed that
mirrors an active day-stream must produce the exact engine state (and
hence checkpoint bytes) the active run produces -- in serial and
parallel ingestion modes -- and every adapter must reduce its vantage
format to plain day-ordered observations.
"""

import json

import pytest

from _ckpt import checkpoint_fingerprint
from _worlds import build_campaign, build_rotating_internet

from repro.core.correlator import synthesize_flows
from repro.core.records import ProbeObservation
from repro.simnet.clock import day_of, hours
from repro.simnet.vantage import FlowTap
from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.feeds import (
    MixedFeed,
    SightingRecord,
    dedup_feed,
    flow_feed,
    hitlist_feed,
    ingest_feed,
    observation_feed,
    sighting_feed,
    tap_feed,
)
from repro.stream.parallel import ParallelStreamEngine


class TestDedupWindow:
    """The chatty-tap guard: bounded suppression of repeat sightings."""

    def test_repeats_within_window_dropped(self):
        records = [(0xA, 1), (0xB, 1), (0xA, 1), (0xA, 1), (0xB, 1), (0xA, 2)]
        observations = list(sighting_feed(records, dedup_window=8))
        # One row per distinct (source, day): the day-2 re-sighting stays.
        assert [(o.source, o.day) for o in observations] == [
            (0xA, 1),
            (0xB, 1),
            (0xA, 2),
        ]

    def test_repeat_with_different_timestamp_still_dropped(self):
        records = [
            SightingRecord(source=0xA, day=1, t_seconds=90_000.0),
            SightingRecord(source=0xA, day=1, t_seconds=95_000.0),
        ]
        assert len(list(sighting_feed(records, dedup_window=4))) == 1

    def test_window_is_bounded(self):
        # Two distinct keys alternating with window=1: every repeat has
        # been evicted by the other key, so nothing is suppressed --
        # memory stays bounded at the cost of re-admitting old repeats.
        records = [(0xA, 1), (0xB, 1), (0xA, 1), (0xB, 1)]
        assert len(list(sighting_feed(records, dedup_window=1))) == 4
        # Window=2 holds both keys: repeats vanish.
        assert len(list(sighting_feed(records, dedup_window=2))) == 2

    def test_store_rows_not_multiplied(self):
        engine = StreamEngine(StreamConfig(num_shards=2))
        chatty = [(0xCAFE, 0)] * 50 + [(0xCAFE, 1)] * 50
        engine.ingest_feed(sighting_feed(chatty, dedup_window=16))
        engine.flush()
        assert len(engine.store) == 2  # one row per (source, day)
        assert engine.responses_ingested == 2

    def test_mirror_feed_targets_distinguish_rows(self):
        # Target-preserving records dedup on the full row, so a mirror
        # of an active scan (distinct targets, same source) is intact.
        records = [
            SightingRecord(source=0xA, day=1, t_seconds=1.0, target=t)
            for t in (1, 2, 3)
        ]
        assert len(list(sighting_feed(records, dedup_window=8))) == 3

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError, match="dedup_window"):
            list(dedup_feed(iter([]), 0))

    def test_adapters_expose_dedup_window(self):
        flows_like = hitlist_feed([(0xA, 1), (0xA, 1)], dedup_window=4)
        assert len(list(flows_like)) == 1


def small_corpus():
    internet = build_rotating_internet()
    return internet, list(build_campaign(internet).run().store)


class TestSightingRecord:
    def test_defaults_self_target_and_noon(self):
        record = SightingRecord(source=0xABC, day=3)
        observation = record.to_observation()
        assert observation.target == 0xABC
        assert observation.source == 0xABC
        assert observation.day == 3
        assert observation.t_seconds == 3.5 * 86_400.0

    def test_mirror_round_trips_observation(self):
        observation = ProbeObservation(day=2, t_seconds=5.0, target=7, source=9)
        assert (
            SightingRecord.from_observation(observation).to_observation()
            == observation
        )


class TestAdapters:
    def test_sighting_feed_sorts_and_accepts_tuples(self):
        records = [
            (200, 2, 2.5),
            SightingRecord(source=100, day=1),
            (150, 1, 1.5),
        ]
        observations = list(sighting_feed(records))
        assert [o.day for o in observations] == [1, 1, 2]
        assert [o.source for o in observations] == [150, 100, 200]

    def test_flow_feed_derives_day_and_self_targets(self):
        internet = build_rotating_internet()
        flows = synthesize_flows(
            internet, 65001, n_households=4, flows_per_day=2, days=[3, 4], seed=1
        )
        observations = list(flow_feed(flows))
        assert len(observations) == len(flows)
        assert [o.day for o in observations] == sorted(o.day for o in observations)
        for observation in observations:
            assert observation.target == observation.source
            assert observation.day == day_of(hours(observation.t_seconds))

    def test_hitlist_feed(self):
        observations = list(hitlist_feed([(5, 2), (6, 1), (5, 1)]))
        assert [(o.source, o.day) for o in observations] == [(6, 1), (5, 1), (5, 2)]

    def test_observation_feed_passthrough(self):
        _internet, corpus = small_corpus()
        assert list(observation_feed(corpus)) == corpus

    def test_mixed_feed_interleaves_in_day_order(self):
        a = [
            ProbeObservation(day=d, t_seconds=d * 10.0, target=1, source=1)
            for d in (0, 2)
        ]
        b = [
            ProbeObservation(day=d, t_seconds=d * 10.0 + 1, target=2, source=2)
            for d in (0, 1, 2)
        ]
        merged = list(MixedFeed(a, b))
        assert [o.day for o in merged] == [0, 0, 1, 2, 2]
        assert [o.source for o in merged] == [1, 2, 2, 1, 2]

    def test_mixed_feed_single_feed_is_identity(self):
        _internet, corpus = small_corpus()
        assert list(MixedFeed(corpus)) == corpus


class TestMirrorEquivalence:
    """The acceptance criterion: a passive feed mirroring an active
    day-stream checkpoints byte-identically to the active run."""

    def test_serial_byte_identical(self):
        internet, corpus = small_corpus()
        config = StreamConfig(num_shards=4)
        active = StreamEngine(config, origin_of=internet.rib.origin_of)
        active.ingest_batch(list(corpus))
        active.flush()

        mirror = StreamEngine(config, origin_of=internet.rib.origin_of)
        mirror.ingest_feed(
            sighting_feed(SightingRecord.from_observation(o) for o in corpus)
        )
        mirror.flush()
        assert json.dumps(engine_state(mirror)) == json.dumps(engine_state(active))
        assert list(mirror.store) == list(active.store)

    def test_parallel_byte_identical(self):
        internet, corpus = small_corpus()
        config = StreamConfig(num_shards=4)
        active = StreamEngine(config, origin_of=internet.rib.origin_of)
        active.ingest_batch(list(corpus))
        active.flush()

        parallel = ParallelStreamEngine(
            config, origin_of=internet.rib.origin_of, num_workers=2, batch_rows=64
        )
        parallel.ingest_feed(
            sighting_feed(SightingRecord.from_observation(o) for o in corpus)
        )
        merged = parallel.finalize()
        assert json.dumps(engine_state(merged)) == json.dumps(engine_state(active))

    def test_self_sighting_feed_matches_hand_built_observations(self):
        """The self-target convention, spelled out once."""
        _internet, corpus = small_corpus()
        records = [
            SightingRecord(source=o.source, day=o.day, t_seconds=o.t_seconds)
            for o in corpus
        ]
        by_hand = StreamEngine(StreamConfig(num_shards=2))
        by_hand.ingest_batch(
            ProbeObservation(
                day=o.day, t_seconds=o.t_seconds, target=o.source, source=o.source
            )
            for o in corpus
        )
        by_hand.flush()
        adapted = StreamEngine(StreamConfig(num_shards=2))
        adapted.ingest_feed(sighting_feed(records))
        adapted.flush()
        assert engine_state(adapted) == engine_state(by_hand)


class TestEngineEntryPoints:
    def test_ingest_feed_equals_ingest_batch(self):
        _internet, corpus = small_corpus()
        via_feed = StreamEngine(StreamConfig(num_shards=2))
        via_feed.ingest_feed(observation_feed(corpus))
        via_feed.flush()
        via_batch = StreamEngine(StreamConfig(num_shards=2))
        via_batch.ingest_batch(list(corpus))
        via_batch.flush()
        assert engine_state(via_feed) == engine_state(via_batch)

    def test_free_function_drives_both_engine_kinds(self):
        _internet, corpus = small_corpus()
        serial = StreamEngine(StreamConfig(num_shards=2))
        assert ingest_feed(serial, corpus) == len(corpus)
        with ParallelStreamEngine(
            StreamConfig(num_shards=2), num_workers=1
        ) as parallel:
            assert ingest_feed(parallel, corpus) == len(corpus)


class TestFlowTap:
    def test_coverage_sets_are_nested(self):
        internet = build_rotating_internet()
        taps = [
            FlowTap(internet, 65001, coverage=c, seed=3)
            for c in (0.2, 0.5, 0.8, 1.0)
        ]
        device_ids = [
            d.device_id
            for pool in internet.provider_of_asn(65001).pools
            for d in pool.devices
        ]
        covered = [{i for i in device_ids if tap.covers(i)} for tap in taps]
        for smaller, larger in zip(covered, covered[1:]):
            assert smaller <= larger
        assert covered[-1] == set(device_ids)

    def test_sampling_independent_of_coverage(self):
        internet = build_rotating_internet()
        narrow = FlowTap(internet, 65001, coverage=0.3, sample_rate=0.5, seed=3)
        wide = FlowTap(internet, 65001, coverage=0.9, sample_rate=0.5, seed=3)
        narrow_records = {r[0] for r in narrow.sightings_on(4)}
        wide_records = {r[0] for r in wide.sightings_on(4)}
        assert narrow_records <= wide_records

    def test_records_day_major_and_watchlist_sighted(self):
        internet = build_rotating_internet()
        tap = FlowTap(internet, 65001, coverage=1.0, sample_rate=1.0, seed=0)
        days = [3, 4]
        records = list(tap.records(days))
        assert [r[1] for r in records] == sorted(r[1] for r in records)

        engine = StreamEngine(StreamConfig(num_shards=2))
        iid = records[0][0] & ((1 << 64) - 1)
        engine.watch(iid)
        engine.ingest_feed(tap_feed(tap, days))
        sighting = engine.last_sighting(iid)
        assert sighting is not None and sighting.day == days[-1]

    def test_late_observe_hour_stays_within_day(self):
        """Jitter is clamped to the day: a record tagged day d never
        carries day d+1's timestamp (or rotated address)."""
        internet = build_rotating_internet()
        tap = FlowTap(
            internet, 65001, coverage=1.0, sample_rate=1.0, observe_hour=23.5
        )
        for source, day, t_seconds in tap.sightings_on(4):
            assert day_of(hours(t_seconds)) == day
            residence = internet.resolve(source, hours(t_seconds))
            assert residence is not None and residence.wan_address == source

    def test_invalid_params(self):
        internet = build_rotating_internet()
        with pytest.raises(ValueError, match="coverage"):
            FlowTap(internet, 65001, coverage=1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            FlowTap(internet, 65001, sample_rate=-0.1)
        with pytest.raises(ValueError, match="observe_hour"):
            FlowTap(internet, 65001, observe_hour=24.0)
        with pytest.raises(ValueError, match="AS65999"):
            FlowTap(internet, 65999)


class TestCampaignPassiveFeeds:
    def _tap_records(self, days, extra_early=False, extra_late=False):
        """Hand-built sighting records around the _worlds campaign window."""
        eui = 0x0219C6FFFE00BEEF
        records = []
        if extra_early:
            records.append(SightingRecord(source=(0x20010DB8 << 96) | eui, day=0))
        for day in days:
            records.append(
                SightingRecord(
                    source=(0x20010DB8 << 96) | (day << 72) | eui,
                    day=day,
                    t_seconds=day * 86_400.0 + 70_000.0,
                )
            )
        if extra_late:
            records.append(
                SightingRecord(source=(0x20010DB8 << 96) | eui, day=days[-1] + 2)
            )
        return records

    def test_serial_and_parallel_checkpoints_identical(self, tmp_path):
        days = [2, 3, 4, 5, 6]  # the _worlds campaign window
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = StreamingCampaign(
            build_campaign(),
            checkpoint_path=serial_path,
            passive_feeds=[sighting_feed(self._tap_records(days))],
        )
        serial.run()
        parallel = StreamingCampaign(
            build_campaign(),
            checkpoint_path=parallel_path,
            workers=2,
            passive_feeds=[sighting_feed(self._tap_records(days))],
        )
        parallel.run()
        assert serial.passive_ingested == parallel.passive_ingested == len(days)
        assert checkpoint_fingerprint(serial_path) == checkpoint_fingerprint(
            parallel_path
        )

    def test_passive_updates_engine_not_store(self):
        days = [2, 3, 4]
        with_feed = StreamingCampaign(
            build_campaign(),
            passive_feeds=[sighting_feed(self._tap_records(days))],
        )
        with_feed.run(max_days=3)
        without_feed = StreamingCampaign(build_campaign())
        without_feed.run(max_days=3)
        assert list(with_feed.result.store) == list(without_feed.result.store)
        assert with_feed.result.probes_sent == without_feed.result.probes_sent
        # ...but the engine saw the passive sources on top of the scans.
        assert (
            with_feed.engine.unique_sources()
            == without_feed.engine.unique_sources() + len(days)
        )

    def test_pre_campaign_records_ingested_up_front(self):
        records = self._tap_records([2, 3], extra_early=True)
        streaming = StreamingCampaign(
            build_campaign(), passive_feeds=[sighting_feed(records)]
        )
        streaming.run(max_days=1)
        # Day-0 sighting (before start_day=2) made it in, in day order.
        assert 0 in streaming.engine._days_seen
        assert streaming.passive_dropped == 0

    def test_trailing_records_drained_at_finish(self):
        records = self._tap_records([2, 3, 4, 5, 6], extra_late=True)
        streaming = StreamingCampaign(
            build_campaign(), passive_feeds=[sighting_feed(records)]
        )
        streaming.run()
        assert streaming.finished
        assert streaming.passive_ingested == len(records)
        assert 8 in streaming.engine._days_seen  # days[-1] + 2

    def test_resume_with_same_feed_byte_identical(self, tmp_path):
        """Replaying the same passive feed across an interruption must
        not double-ingest the checkpoint day's records: resumed and
        uninterrupted runs write identical checkpoint bytes."""
        days = [2, 3, 4, 5, 6]
        full_path = tmp_path / "full.json"
        full = StreamingCampaign(
            build_campaign(),
            checkpoint_path=full_path,
            passive_feeds=[sighting_feed(self._tap_records(days))],
        )
        full.run()

        resumed_path = tmp_path / "resumed.json"
        interrupted = StreamingCampaign(
            build_campaign(),
            checkpoint_path=resumed_path,
            passive_feeds=[sighting_feed(self._tap_records(days))],
        )
        interrupted.run(max_days=3)
        resumed = StreamingCampaign.resume(
            build_campaign(),
            resumed_path,
            passive_feeds=[sighting_feed(self._tap_records(days))],
        )
        resumed.run()
        assert checkpoint_fingerprint(resumed_path) == checkpoint_fingerprint(full_path)
        # The checkpointed days' records were dropped, not re-ingested.
        assert interrupted.passive_ingested + resumed.passive_ingested == len(days)
        assert resumed.passive_dropped == 3

    def test_lagging_records_dropped_on_resume(self, tmp_path):
        path = tmp_path / "campaign.json"
        StreamingCampaign(build_campaign(), checkpoint_path=path).run(max_days=3)
        # Resume with a feed that replays days the checkpoint closed.
        stale = self._tap_records([2, 3])
        resumed = StreamingCampaign.resume(
            build_campaign(), path, passive_feeds=[sighting_feed(stale)]
        )
        resumed.run()
        assert resumed.passive_dropped == len(stale)
        assert resumed.passive_ingested == 0
