"""Deterministic small worlds for streaming-layer tests.

Builders are functions (not session fixtures) because equivalence tests
need *two independent but identical* worlds -- one consumed by the batch
path, one by the streaming path -- and checkpoint tests need a third for
the resumed run.
"""

from repro.core.campaign import Campaign, CampaignConfig
from repro.net.addr import Prefix
from repro.simnet.device import AddressingMode, CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation, ShuffleRotation


def make_provider(
    asn: int,
    bgp: str,
    pool48: str,
    delegation_plen: int,
    policy,
    n_devices: int,
    country: str = "DE",
) -> Provider:
    pool = RotationPool(
        prefix=Prefix.parse(pool48),
        delegation_plen=delegation_plen,
        policy=policy,
        pool_key=7,
    )
    for i in range(n_devices):
        pool.add_device(
            CpeDevice(
                device_id=asn * 10_000 + i,
                mac=0x3810D5000000 + asn * 0x1000 + i,
                addressing=AddressingMode.EUI64,
            )
        )
    return Provider(
        asn=asn, name=f"AS{asn}", country=country,
        bgp_prefixes=[Prefix.parse(bgp)], pools=[pool],
    )


def build_rotating_internet() -> SimInternet:
    """Two providers: a daily /56 increment rotator and a /60 shuffler.

    Deterministic: every call builds an identical world, so batch and
    streaming runs over separate instances see identical responses.
    """
    a = make_provider(
        65001, "2001:db8::/32", "2001:db8::/48", 56,
        IncrementRotation(interval_hours=24.0), 48, country="DE",
    )
    b = make_provider(
        65002, "2001:db9::/32", "2001:db9::/48", 60,
        ShuffleRotation(interval_hours=24.0), 64, country="GR",
    )
    return SimInternet([a, b], core_answers_unrouted=False)


CAMPAIGN_PREFIXES = [Prefix.parse("2001:db8::/48"), Prefix.parse("2001:db9::/48")]
CAMPAIGN_CONFIG = CampaignConfig(days=5, start_day=2, seed=3)


def build_campaign(internet: SimInternet | None = None) -> Campaign:
    return Campaign(
        internet or build_rotating_internet(), CAMPAIGN_PREFIXES, CAMPAIGN_CONFIG
    )
