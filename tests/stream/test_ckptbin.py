"""Binary checkpoint format tests: framing, chains, dispatch, campaigns.

The contract under test: a binary chain restores to *exactly* the state
the canonical JSON checkpoint carries (the fuzz harness pins the bytes;
here we pin the failure modes) -- and a file that cannot be fully
trusted raises :class:`CheckpointError` instead of silently restoring
partial state.
"""

import json

import pytest

from _ckpt import checkpoint_fingerprint
from _worlds import build_campaign

from repro.core.records import ProbeObservation
from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import (
    checkpoint_format,
    engine_state,
    is_binary_checkpoint,
    load_engine,
    restore_engine,
    save_engine,
)
from repro.stream.ckptbin import (
    BinaryCheckpointer,
    CheckpointError,
    _read_segments,
    _write_segment,
    read_state,
)
from repro.stream.engine import StreamConfig, StreamEngine


def origin_of(address: int) -> int:
    return 64512 + ((address >> 80) % 5)


def small_engine(num_shards: int = 4, days=(2, 3, 4)) -> StreamEngine:
    engine = StreamEngine(StreamConfig(num_shards=num_shards), origin_of=origin_of)
    for day in days:
        engine.ingest_batch(
            ProbeObservation(
                day=day,
                t_seconds=day * 86_400.0 + i,
                target=(0x20010DB8 << 96) | (i << 80) | (day << 16) | i,
                source=(0x20010DB8 << 96) | (i << 80) | (day << 16) | i | 0x100,
            )
            for i in range(16)
        )
    return engine


def touch_one_observation(engine: StreamEngine, day: int = 5) -> None:
    engine.ingest(
        ProbeObservation(
            day=day,
            t_seconds=day * 86_400.0,
            target=(0x20010DB8 << 96) | (day << 16),
            source=(0x20010DB8 << 96) | (day << 16) | 0x100,
        )
    )


def rewrite_segments(path, segments) -> None:
    """Re-frame *segments* (with fresh CRCs) over the file at *path*."""
    with open(path, "wb") as fh:
        for header, payload in segments:
            _write_segment(
                fh, json.dumps(header, separators=(",", ":")).encode(), [payload]
            )


def state_dump(engine: StreamEngine) -> str:
    return json.dumps(engine_state(engine))


class TestFormatDispatch:
    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            checkpoint_format("xml")
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            save_engine(small_engine(), tmp_path / "c", format="xml")

    def test_env_var_selects_format(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_FORMAT", "binary")
        engine = small_engine()
        save_engine(engine, tmp_path / "env")
        assert is_binary_checkpoint(tmp_path / "env")
        # The explicit argument wins over the environment.
        save_engine(engine, tmp_path / "arg", format="json")
        assert not is_binary_checkpoint(tmp_path / "arg")
        monkeypatch.setenv("REPRO_CHECKPOINT_FORMAT", "carrier-pigeon")
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            save_engine(engine, tmp_path / "bad")

    def test_load_sniffs_regardless_of_configuration(self, tmp_path, monkeypatch):
        engine = small_engine()
        oracle = state_dump(engine)
        save_engine(engine, tmp_path / "c.bin", format="binary")
        save_engine(engine, tmp_path / "c.json", format="json")
        # A process configured for either format resumes from both.
        for fmt in ("json", "binary"):
            monkeypatch.setenv("REPRO_CHECKPOINT_FORMAT", fmt)
            for name in ("c.bin", "c.json"):
                restored = load_engine(tmp_path / name, origin_of=origin_of)
                assert state_dump(restored) == oracle

    def test_is_binary_checkpoint_on_missing_file(self, tmp_path):
        assert not is_binary_checkpoint(tmp_path / "nope")

    def test_tmp_never_collides_with_odd_checkpoint_names(self, tmp_path):
        # A suffix-less path must stage at "<name>.tmp", not hijack the
        # suffix (or degenerate to a bare ".tmp"); dotted names keep
        # every dot.
        for name, fmt in (("checkpoint", "json"), ("run.v1.2", "binary")):
            save_engine(small_engine(), tmp_path / name, format=fmt)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["checkpoint", "run.v1.2"]


class TestSegmentValidation:
    @pytest.fixture()
    def saved(self, tmp_path):
        engine = small_engine()
        path = tmp_path / "ckpt.bin"
        save_engine(engine, path, format="binary")
        return engine, path

    def test_roundtrip_matches_json_state(self, saved):
        engine, path = saved
        assert state_dump(load_engine(path, origin_of=origin_of)) == state_dump(engine)

    def test_unsupported_format_version_raises(self, saved):
        _, path = saved
        segments = _read_segments(path)
        segments[0][0]["format"] = 99
        rewrite_segments(path, segments)
        with pytest.raises(CheckpointError, match="unsupported binary checkpoint"):
            read_state(path)

    def test_bad_magic_raises(self, saved):
        _, path = saved
        data = bytearray(path.read_bytes())
        data[:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="bad segment magic"):
            read_state(path)

    def test_truncated_file_raises_not_partial_restore(self, saved):
        _, path = saved
        data = path.read_bytes()
        for cut in (len(data) - 3, len(data) // 2, 6):
            path.write_bytes(data[:cut])
            with pytest.raises(CheckpointError):
                read_state(path)

    def test_corrupted_payload_raises_crc_mismatch(self, saved):
        _, path = saved
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # last payload byte; the final 4 bytes are the CRC
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="CRC mismatch"):
            read_state(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError, match="empty binary checkpoint"):
            read_state(path)


class TestDeltaChains:
    def test_save_engine_chains_deltas_on_one_path(self, tmp_path):
        engine = small_engine()
        path = tmp_path / "ckpt.bin"
        save_engine(engine, path, format="binary")
        touch_one_observation(engine)
        save_engine(engine, path, format="binary")
        kinds = [header["kind"] for header, _ in _read_segments(path)]
        assert kinds == ["full", "delta"]
        assert state_dump(load_engine(path, origin_of=origin_of)) == state_dump(engine)

    def test_delta_reemits_only_dirty_shards(self, tmp_path):
        engine = small_engine(num_shards=8)
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        first = saver.save(engine)
        assert (first.kind, first.dirty_shards) == ("full", 8)
        touch_one_observation(engine)
        second = saver.save(engine)
        assert (second.kind, second.dirty_shards) == ("delta", 1)
        assert second.segment_bytes < first.segment_bytes
        restored = restore_engine(read_state(saver.path), origin_of=origin_of)
        assert state_dump(restored) == state_dump(engine)

    def test_chain_missing_base_raises(self, tmp_path):
        engine = small_engine()
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        saver.save(engine)
        touch_one_observation(engine, day=5)
        saver.save(engine)
        segments = _read_segments(saver.path)
        assert [h["kind"] for h, _ in segments] == ["full", "delta"]
        rewrite_segments(saver.path, segments[1:])  # orphan the delta
        with pytest.raises(CheckpointError, match="does not start with a full"):
            read_state(saver.path)

    def test_chain_gap_raises(self, tmp_path):
        engine = small_engine()
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        saver.save(engine)
        for day in (5, 6):
            touch_one_observation(engine, day=day)
            saver.save(engine)
        segments = _read_segments(saver.path)
        assert len(segments) == 3
        rewrite_segments(saver.path, [segments[0], segments[2]])  # drop seq 1
        with pytest.raises(CheckpointError, match="broken segment chain"):
            read_state(saver.path)

    def test_mode_delta_without_base_raises(self, tmp_path):
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        with pytest.raises(CheckpointError, match="cannot append a delta"):
            saver.save(small_engine(), mode="delta")

    def test_unknown_mode_raises(self, tmp_path):
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        with pytest.raises(ValueError, match="unknown checkpoint mode"):
            saver.save(small_engine(), mode="incremental")

    def test_max_chain_forces_rebase(self, tmp_path):
        engine = small_engine()
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin", max_chain=3)
        kinds = [saver.save(engine).kind]
        for day in (5, 6, 7, 8):
            touch_one_observation(engine, day=day)
            kinds.append(saver.save(engine).kind)
        assert kinds == ["full", "delta", "delta", "full", "delta"]
        assert [h["kind"] for h, _ in _read_segments(saver.path)] == ["full", "delta"]
        restored = restore_engine(read_state(saver.path), origin_of=origin_of)
        assert state_dump(restored) == state_dump(engine)

    def test_failed_delta_append_rolls_back(self, tmp_path, monkeypatch):
        import repro.stream.ckptbin as ckptbin

        engine = small_engine()
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        saver.save(engine)
        good = saver.path.read_bytes()
        touch_one_observation(engine)

        real_write = ckptbin._write_segment

        def torn_write(fh, header_bytes, blobs):
            real_write(fh, header_bytes, blobs[:1])
            raise OSError("disk full")

        monkeypatch.setattr(ckptbin, "_write_segment", torn_write)
        with pytest.raises(OSError):
            saver.save(engine)
        # The torn append was truncated away: the last good chain loads.
        assert saver.path.read_bytes() == good
        read_state(saver.path)

    def test_failed_full_rewrite_leaves_no_tmp(self, tmp_path, monkeypatch):
        import repro.stream.ckptbin as ckptbin

        engine = small_engine()
        saver = BinaryCheckpointer(tmp_path / "ckpt.bin")
        saver.save(engine)
        good = saver.path.read_bytes()

        def torn_write(fh, header_bytes, blobs):
            fh.write(b"partial")
            raise OSError("disk full")

        monkeypatch.setattr(ckptbin, "_write_segment", torn_write)
        with pytest.raises(OSError):
            saver.save(engine, mode="full")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.bin"]
        assert saver.path.read_bytes() == good

    def test_failed_json_save_leaves_no_tmp(self, tmp_path):
        engine = small_engine()
        path = tmp_path / "ckpt.json"
        save_engine(engine, path)
        good = path.read_bytes()
        engine._days_seen.add("not-a-day")  # poisons engine_state's sort
        with pytest.raises(TypeError):
            save_engine(engine, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.json"]
        assert path.read_bytes() == good


class TestCampaignBinaryCheckpoints:
    def test_per_day_checkpoints_chain_and_count(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        campaign = StreamingCampaign(
            build_campaign(),
            checkpoint_path=path,
            checkpoint_every=1,
            checkpoint_format="binary",
        )
        campaign.run()
        kinds = [header["kind"] for header, _ in _read_segments(path)]
        assert kinds[0] == "full"
        assert kinds.count("delta") == len(kinds) - 1 >= 1
        stats = campaign.stats()
        assert stats["checkpoints_written"] == len(kinds)
        assert stats["checkpoints_full"] == 1
        assert stats["checkpoints_delta"] == len(kinds) - 1
        assert stats["last_checkpoint_bytes"] == path.stat().st_size

    def test_json_campaign_counts_fulls_only(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign = StreamingCampaign(
            build_campaign(),
            checkpoint_path=path,
            checkpoint_every=1,
            checkpoint_format="json",
        )
        campaign.run()
        stats = campaign.stats()
        assert stats["checkpoints_written"] == stats["checkpoints_full"] > 1
        assert stats["checkpoints_delta"] == 0
        assert stats["last_checkpoint_bytes"] == path.stat().st_size

    def test_delta_chain_resume_matches_uninterrupted_run(self, tmp_path):
        """The acceptance path: a campaign checkpointing per day over a
        delta chain, interrupted and resumed, must land on the same
        state as an uninterrupted run -- in either format."""
        json_path = tmp_path / "ref.json"
        StreamingCampaign(build_campaign(), checkpoint_path=json_path).run()

        full_path = tmp_path / "full.bin"
        StreamingCampaign(
            build_campaign(),
            checkpoint_path=full_path,
            checkpoint_every=1,
            checkpoint_format="binary",
        ).run()

        resumed_path = tmp_path / "resumed.bin"
        StreamingCampaign(
            build_campaign(),
            checkpoint_path=resumed_path,
            checkpoint_every=1,
            checkpoint_format="binary",
        ).run(max_days=3)
        assert len(_read_segments(resumed_path)) > 1  # mid-run delta chain
        resumed = StreamingCampaign.resume(
            build_campaign(),
            resumed_path,
            checkpoint_every=1,
            checkpoint_format="binary",
        )
        resumed.run()

        assert checkpoint_fingerprint(resumed_path) == checkpoint_fingerprint(
            full_path
        )
        # ...and both match the canonical JSON run, state-for-state.
        ref = StreamingCampaign.resume(build_campaign(), json_path)
        fin = StreamingCampaign.resume(build_campaign(), resumed_path)
        assert state_dump(fin.engine) == state_dump(ref.engine)
        assert fin.result.store.snapshot_rows() == ref.result.store.snapshot_rows()
        assert (fin.result.days_run, fin.result.probes_sent) == (
            ref.result.days_run,
            ref.result.probes_sent,
        )
