"""The columnar kernel: selection, fallback, and primitive correctness.

The fuzz harness (``test_fuzz_equivalence.py``) pins whole-engine
checkpoint bytes across ingestion modes; these tests cover what it
cannot: kernel selection (auto / forced-off / forced-fallback / numpy
genuinely absent), the vectorized primitives against their scalar
oracles, and the pure-Python fallback agreeing with the numpy path.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.records import ProbeObservation
from repro.core.rotation_detect import RotationDetection, diff_pairs
from repro.net.eui64 import is_eui64_iid, mac_to_eui64_iid
from repro.stream import columnar
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.shard import shard_index

SRC_DIR = Path(__file__).resolve().parent.parent.parent / "src"

needs_numpy = pytest.mark.skipif(
    not columnar.numpy_enabled(), reason="numpy kernel unavailable"
)


def origin_of(address: int) -> int:
    return 64512 + ((address >> 80) % 5)


def small_corpus() -> list:
    """A deterministic mini-corpus: EUI and non-EUI devices over 4 days,
    with duplicates, a scan gap, and /64 movement."""
    rng = random.Random(0xC01)
    net48s = [(0x20010DB8 << 16) + 9 * i for i in range(3)]
    devices = []
    for i in range(12):
        if i % 4 == 3:
            iid = rng.getrandbits(64)
            while is_eui64_iid(iid):
                iid = rng.getrandbits(64)
        else:
            iid = mac_to_eui64_iid(rng.getrandbits(48))
        devices.append((iid, net48s[i % 3], rng.randrange(1 << 12)))
    corpus = []
    for day in (0, 1, 3, 4):  # day 2 is an unscanned gap
        day_obs = []
        for iid, net48, start in devices:
            net64 = (net48 << 16) | ((start + day) % (1 << 16))
            for k in range(3):
                day_obs.append(
                    ProbeObservation(
                        day=day,
                        t_seconds=day * 86_400.0 + k,
                        target=(net64 << 64) | rng.getrandbits(64),
                        source=(net64 << 64) | iid,
                    )
                )
            day_obs.append(day_obs[-1])  # exact duplicate response
        rng.shuffle(day_obs)
        corpus.extend(day_obs)
    return corpus


def reference_state(corpus) -> str:
    engine = StreamEngine(StreamConfig(num_shards=4), origin_of=origin_of)
    for observation in corpus:
        engine.ingest(observation)
    engine.flush()
    return json.dumps(engine_state(engine))


class TestKernelSelection:
    def test_columnar_false_forces_classic_loop(self):
        engine = StreamEngine(StreamConfig(num_shards=2), columnar=False)
        assert engine._acc is None

    @needs_numpy
    def test_auto_selects_numpy_kernel(self):
        engine = StreamEngine(StreamConfig(num_shards=2))
        assert engine._acc is not None

    def test_force_fallback_env_disables_kernel(self, monkeypatch):
        monkeypatch.setenv(columnar.FORCE_FALLBACK_ENV, "1")
        assert not columnar.numpy_enabled()
        engine = StreamEngine(StreamConfig(num_shards=2), columnar=True)
        assert engine._acc is None  # degraded silently, not an error

    def test_forced_fallback_agrees_with_reference(self, monkeypatch):
        """The pure-Python fallback run: same corpus, same bytes."""
        corpus = small_corpus()
        expected = reference_state(corpus)
        monkeypatch.setenv(columnar.FORCE_FALLBACK_ENV, "1")
        engine = StreamEngine(
            StreamConfig(num_shards=4), origin_of=origin_of, columnar=True
        )
        engine.ingest_batch(corpus)
        engine.flush()
        assert json.dumps(engine_state(engine)) == expected

    @needs_numpy
    def test_numpy_kernel_agrees_with_reference(self):
        corpus = small_corpus()
        engine = StreamEngine(
            StreamConfig(num_shards=4), origin_of=origin_of, columnar=True
        )
        assert engine._acc is not None
        engine.ingest_batch(corpus)
        engine.flush()
        assert json.dumps(engine_state(engine)) == reference_state(corpus)

    @needs_numpy
    def test_mixed_per_observation_and_batch_ingest(self):
        """Interleaving ingest() and ingest_batch() on one columnar
        engine must match the reference -- the per-observation path
        writes shard state directly, which flips later day closes onto
        the merged-set diff."""
        corpus = small_corpus()
        engine = StreamEngine(
            StreamConfig(num_shards=4), origin_of=origin_of, columnar=True
        )
        third = len(corpus) // 3
        engine.ingest_batch(corpus[:third])
        for observation in corpus[third : 2 * third]:
            engine.ingest(observation)
        engine.ingest_batch(corpus[2 * third :])
        engine.flush()
        assert json.dumps(engine_state(engine)) == reference_state(corpus)


@needs_numpy
class TestKernelPrimitives:
    def test_vector_shard_index_matches_scalar(self):
        import numpy as np

        rng = random.Random(7)
        keys = [rng.getrandbits(64) for _ in range(2000)]
        for num_shards in (1, 2, 7, 8, 64):
            expected = [shard_index(k, num_shards) for k in keys]
            got = columnar.vector_shard_index(
                np.array(keys, dtype=np.uint64), num_shards
            )
            assert got.tolist() == expected

    def test_eui64_mask_matches_scalar(self):
        import numpy as np

        rng = random.Random(8)
        iids = [rng.getrandbits(64) for _ in range(500)]
        iids += [mac_to_eui64_iid(rng.getrandbits(48)) for _ in range(500)]
        got = columnar.eui64_mask(np.array(iids, dtype=np.uint64))
        assert got.tolist() == [is_eui64_iid(i) for i in iids]

    def _pair_columns(self, pairs):
        import numpy as np

        mask = (1 << 64) - 1
        return [
            np.array(values, dtype=np.uint64)
            for values in (
                [t >> 64 for t, _ in pairs],
                [t & mask for t, _ in pairs],
                [s >> 64 for _, s in pairs],
                [s & mask for _, s in pairs],
            )
        ]

    def test_diff_pair_columns_matches_diff_pairs(self):
        rng = random.Random(9)
        for trial in range(20):
            universe = [
                (rng.getrandbits(128), rng.getrandbits(128)) for _ in range(120)
            ]
            pairs_a = set(rng.sample(universe, rng.randrange(len(universe))))
            pairs_b = set(rng.sample(universe, rng.randrange(len(universe))))
            expected = diff_pairs(pairs_a, pairs_b)
            changed, net48s, stable, appeared = columnar.diff_pair_columns(
                self._pair_columns(sorted(pairs_a)),
                self._pair_columns(sorted(pairs_b)),
            )
            detection = RotationDetection()
            columnar.fold_changed([(changed, net48s)], detection)
            assert detection.changed_pairs == expected.changed_pairs
            assert detection.rotating_prefixes == expected.rotating_prefixes
            assert stable == expected.stable_pairs
            assert int(appeared.sum()) == len(pairs_b - pairs_a)

    def test_dedup_rows_drops_exact_duplicates_only(self):
        rng = random.Random(10)
        rows = [(rng.getrandbits(128), rng.getrandbits(128)) for _ in range(200)]
        with_dups = rows + rng.sample(rows, 50)
        rng.shuffle(with_dups)
        cols = self._pair_columns(with_dups)
        deduped = columnar._dedup_rows(cols)
        mask = (1 << 64) - 1
        got = {
            ((int(a) << 64) | int(b), (int(c) << 64) | int(d))
            for a, b, c, d in zip(*(c.tolist() for c in deduped))
        }
        assert got == set(rows)
        assert len(deduped[0]) == len(rows)


# The subprocess bootstrap: install a meta-path blocker so every numpy
# import raises, *then* import this module (which pulls repro.stream in
# its no-numpy configuration) and emit the fallback engine's state.
_NO_NUMPY_BOOTSTRAP = """
import sys

class BlockNumpy:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is blocked for this test")
        return None

sys.meta_path.insert(0, BlockNumpy())
sys.path.insert(0, {test_dir!r})
sys.path.insert(0, {src_dir!r})
import test_columnar

test_columnar.emit_fallback_state()
"""


def emit_fallback_state() -> None:
    """Subprocess body: prove the fallback runs and print its checkpoint."""
    assert columnar.np is None, "numpy import was not blocked"
    assert not columnar.numpy_enabled()
    engine = StreamEngine(
        StreamConfig(num_shards=4), origin_of=origin_of, columnar=True
    )
    assert engine._acc is None  # silent fallback, not an error
    engine.ingest_batch(small_corpus())
    engine.flush()
    print(json.dumps(engine_state(engine)))


def test_import_and_ingest_without_numpy_installed():
    """End to end with numpy genuinely unimportable (not just forced).

    A subprocess blocks every ``numpy`` import at the meta-path level
    before ``repro.stream`` is first imported, ingests the
    deterministic corpus through a ``columnar=True`` engine (which must
    silently fall back), and prints the checkpoint JSON -- byte-compared
    here against the per-observation reference from the (typically
    numpy-enabled) parent.
    """
    code = _NO_NUMPY_BOOTSTRAP.format(
        test_dir=str(Path(__file__).resolve().parent), src_dir=str(SRC_DIR)
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=120,
        env=dict(os.environ),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == reference_state(small_corpus())
