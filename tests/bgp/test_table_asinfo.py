"""Tests for the RIB and the AS registry."""

import pytest

from repro.bgp.asinfo import UNKNOWN_COUNTRY, UNKNOWN_NAME, AsRegistry
from repro.bgp.table import Route, RoutingTable
from repro.net.addr import Prefix, parse_addr


class TestRoutingTable:
    def build(self) -> RoutingTable:
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        rib.advertise(Prefix.parse("2003:e2::/32"), 3320)
        rib.advertise(Prefix.parse("2001:16b8:8000::/33"), 64512)
        return rib

    def test_lookup_origin(self):
        rib = self.build()
        assert rib.origin_of(parse_addr("2001:16b8:1d01::1")) == 8881
        assert rib.origin_of(parse_addr("2003:e2:f000::1")) == 3320

    def test_longest_match_wins(self):
        rib = self.build()
        assert rib.origin_of(parse_addr("2001:16b8:8000::1")) == 64512

    def test_unrouted(self):
        rib = self.build()
        assert rib.lookup(parse_addr("2a00::1")) is None
        assert rib.origin_of(parse_addr("2a00::1")) is None
        assert rib.bgp_prefix_of(parse_addr("2a00::1")) is None

    def test_bgp_prefix_of(self):
        rib = self.build()
        assert rib.bgp_prefix_of(parse_addr("2001:16b8:1::1")) == Prefix.parse(
            "2001:16b8::/32"
        )

    def test_withdraw(self):
        rib = self.build()
        assert rib.withdraw(Prefix.parse("2001:16b8:8000::/33"))
        assert rib.origin_of(parse_addr("2001:16b8:8000::1")) == 8881
        assert not rib.withdraw(Prefix.parse("2001:16b8:8000::/33"))

    def test_len_and_routes(self):
        rib = self.build()
        assert len(rib) == 3
        routes = list(rib.routes())
        assert all(isinstance(r, Route) for r in routes)
        assert len(routes) == 3

    def test_routes_of_asn(self):
        rib = self.build()
        rib.advertise(Prefix.parse("2001:4860::/32"), 8881)
        assert len(rib.routes_of_asn(8881)) == 2

    def test_describe_lookup(self):
        rib = self.build()
        text = rib.describe_lookup(parse_addr("2001:16b8::1"))
        assert "AS8881" in text
        assert "unrouted" in rib.describe_lookup(parse_addr("2a00::1"))

    def test_replace_advertisement(self):
        rib = self.build()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 999)
        assert rib.origin_of(parse_addr("2001:16b8::1")) == 999
        assert len(rib) == 3


class TestOriginCache:
    """origin_of memoizes per covering /48; every mutation invalidates."""

    def test_cache_hit_returns_same_answer(self):
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        addr = parse_addr("2001:16b8:1d01::1")
        assert rib.origin_of(addr) == 8881
        assert rib._origin_cache  # populated
        assert rib.origin_of(addr) == 8881  # served from cache
        assert rib.origin_of(addr + 1) == 8881  # same /48, same slot
        assert len(rib._origin_cache) == 1

    def test_unrouted_negative_result_cached(self):
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        addr = parse_addr("2a00::1")
        assert rib.origin_of(addr) is None
        assert rib.origin_of(addr) is None
        assert len(rib._origin_cache) == 1  # the one negative slot

    def test_invalidated_on_more_specific_insert(self):
        """A cached /32 answer must not survive a later /33 covering it."""
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        addr = parse_addr("2001:16b8:8000::1")
        assert rib.origin_of(addr) == 8881
        rib.advertise(Prefix.parse("2001:16b8:8000::/33"), 64512)
        assert rib.origin_of(addr) == 64512

    def test_invalidated_on_withdraw(self):
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        rib.advertise(Prefix.parse("2001:16b8:8000::/33"), 64512)
        addr = parse_addr("2001:16b8:8000::1")
        assert rib.origin_of(addr) == 64512
        rib.withdraw(Prefix.parse("2001:16b8:8000::/33"))
        assert rib.origin_of(addr) == 8881

    def test_routes_longer_than_48_bypass_cache(self):
        """/48 cache slots would alias distinct /56 routes; the table
        must fall back to uncached bit-walks and stay correct."""
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        rib.advertise(Prefix.parse("2001:16b8:1:ff00::/56"), 64512)
        inside = parse_addr("2001:16b8:1:ff42::1")
        outside = parse_addr("2001:16b8:1:1::1")  # same /48, different /56
        assert rib.origin_of(inside) == 64512
        assert rib.origin_of(outside) == 8881
        assert not rib._origin_cache

    def test_withdraw_keeps_bypass_conservative(self):
        """max_plen is an upper bound: withdrawing the /56 must not
        re-enable /48 caching (the bound is not recomputed), and
        lookups stay correct either way."""
        rib = RoutingTable()
        rib.advertise(Prefix.parse("2001:16b8::/32"), 8881)
        rib.advertise(Prefix.parse("2001:16b8:1:ff00::/56"), 64512)
        rib.withdraw(Prefix.parse("2001:16b8:1:ff00::/56"))
        assert rib.origin_of(parse_addr("2001:16b8:1:ff42::1")) == 8881
        assert not rib._origin_cache


class TestAsRegistry:
    def test_bundled_records(self):
        reg = AsRegistry()
        assert reg.name_of(8881) == "Versatel / 1&1"
        assert reg.country_of(8881) == "DE"
        assert reg.country_of(9146) == "BA"
        assert 8422 in reg

    def test_unknown(self):
        reg = AsRegistry()
        assert reg.name_of(4242420000) == UNKNOWN_NAME
        assert reg.country_of(4242420000) == UNKNOWN_COUNTRY
        assert reg.get(4242420000) is None

    def test_register(self):
        reg = AsRegistry()
        reg.register(65000, "Test Net", "de")
        assert reg.country_of(65000) == "DE"
        assert reg.name_of(65000) == "Test Net"

    def test_register_validation(self):
        reg = AsRegistry()
        with pytest.raises(ValueError):
            reg.register(0, "X", "DE")
        with pytest.raises(ValueError):
            reg.register(65000, "X", "DEU")

    def test_country_queries(self):
        reg = AsRegistry()
        de = reg.asns_in_country("de")
        assert 8881 in de and 3320 in de and 8422 in de
        assert "DE" in reg.countries()

    def test_describe(self):
        reg = AsRegistry()
        assert "Versatel" in reg.describe(8881)
        assert "unregistered" in reg.describe(4242420000)

    def test_len_and_asns_sorted(self):
        reg = AsRegistry()
        asns = reg.asns()
        assert list(asns) == sorted(asns)
        assert len(reg) == len(asns)
