"""Tests for the binary radix trie, including a brute-force LPM oracle."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.trie import PrefixTrie
from repro.net.addr import ADDR_MAX, Prefix


def make_prefix(addr: int, plen: int) -> Prefix:
    return Prefix.containing(addr, plen)


class TestBasics:
    def test_empty_lookup(self):
        trie = PrefixTrie()
        assert trie.lookup(42) is None
        assert trie.longest_match(42) is None
        assert len(trie) == 0

    def test_insert_and_exact(self):
        trie = PrefixTrie()
        p = Prefix.parse("2001:db8::/32")
        trie.insert(p, "a")
        assert trie.exact(p) == "a"
        assert len(trie) == 1

    def test_exact_misses_different_plen(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("2001:db8::/32"), "a")
        assert trie.exact(Prefix.parse("2001:db8::/33")) is None
        assert trie.exact(Prefix.parse("2001:db8::/31")) is None

    def test_replace_value(self):
        trie = PrefixTrie()
        p = Prefix.parse("2001:db8::/32")
        trie.insert(p, "a")
        trie.insert(p, "b")
        assert trie.exact(p) == "b"
        assert len(trie) == 1

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("2001:db8::/32"), "wide")
        trie.insert(Prefix.parse("2001:db8:5::/48"), "narrow")
        addr_in_narrow = Prefix.parse("2001:db8:5::/48").network + 7
        addr_in_wide = Prefix.parse("2001:db8:6::/48").network + 7
        assert trie.lookup(addr_in_narrow) == "narrow"
        assert trie.lookup(addr_in_wide) == "wide"

    def test_longest_match_returns_covering_prefix(self):
        trie = PrefixTrie()
        p = Prefix.parse("2001:db8::/32")
        trie.insert(p, "x")
        match = trie.longest_match(p.network + 99)
        assert match is not None
        assert match[0] == p

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie.lookup(12345) == "default"
        trie.insert(Prefix.parse("2001:db8::/32"), "specific")
        assert trie.lookup(Prefix.parse("2001:db8::/32").network) == "specific"
        assert trie.lookup(0) == "default"

    def test_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("2001:db8::/32")
        trie.insert(p, "a")
        assert trie.remove(p)
        assert trie.exact(p) is None
        assert len(trie) == 0
        assert not trie.remove(p)

    def test_remove_missing_path(self):
        trie = PrefixTrie()
        assert not trie.remove(Prefix.parse("2001:db8::/32"))

    def test_remove_keeps_nested(self):
        trie = PrefixTrie()
        outer = Prefix.parse("2001:db8::/32")
        inner = Prefix.parse("2001:db8:5::/48")
        trie.insert(outer, "o")
        trie.insert(inner, "i")
        trie.remove(outer)
        assert trie.lookup(inner.network) == "i"
        assert trie.lookup(outer.network) is None

    def test_items_sorted_by_bits(self):
        trie = PrefixTrie()
        prefixes = [
            Prefix.parse("2001:db8::/32"),
            Prefix.parse("2001:db8:5::/48"),
            Prefix.parse("2001:16b8::/32"),
        ]
        for i, p in enumerate(prefixes):
            trie.insert(p, i)
        listed = [p for p, _ in trie.items()]
        assert len(listed) == 3
        assert listed == sorted(listed, key=lambda p: (p.network, p.plen))

    def test_covering_order(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("2001:db8::/32"), "a")
        trie.insert(Prefix.parse("2001:db8::/48"), "b")
        trie.insert(Prefix.parse("2001:db8::/64"), "c")
        addr = Prefix.parse("2001:db8::/64").network + 1
        values = [v for _, v in trie.covering(addr)]
        assert values == ["a", "b", "c"]


prefix_strategy = st.tuples(
    st.integers(min_value=0, max_value=ADDR_MAX),
    st.integers(min_value=8, max_value=64),
).map(lambda t: make_prefix(*t))


class TestAgainstBruteForce:
    @given(st.lists(prefix_strategy, min_size=1, max_size=40), st.data())
    @settings(max_examples=60, deadline=None)
    def test_lpm_matches_linear_scan(self, prefixes, data):
        trie = PrefixTrie()
        table = {}
        for i, p in enumerate(prefixes):
            trie.insert(p, i)
            table[p] = i  # later duplicates overwrite, same as trie

        base = data.draw(st.sampled_from(prefixes))
        addr = data.draw(
            st.integers(min_value=base.first, max_value=base.last)
        )

        best = None
        for p, v in table.items():
            if addr in p and (best is None or p.plen > best[0].plen):
                best = (p, v)
        assert best is not None
        match = trie.longest_match(addr)
        assert match is not None
        assert match[0].plen == best[0].plen
        assert match[1] == table[match[0]]

    def test_randomized_bulk(self):
        rng = random.Random(1234)
        trie = PrefixTrie()
        prefixes = []
        for i in range(300):
            plen = rng.choice([24, 32, 40, 48, 56])
            net = rng.getrandbits(128)
            p = make_prefix(net, plen)
            prefixes.append((p, i))
            trie.insert(p, i)
        for _ in range(500):
            p, _ = rng.choice(prefixes)
            addr = rng.randrange(p.first, p.last + 1)
            best_plen = max(q.plen for q, _ in prefixes if addr in q)
            match = trie.longest_match(addr)
            assert match is not None
            assert match[0].plen == best_plen
