"""End-to-end experiment tests: every artifact runs and matches the
paper's *shape* at small scale.

One shared context (simulated internet + pipeline + campaign) backs all
tests in this module; it is the expensive part, built once.
"""

import pytest

from repro.experiments import ablations, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments import fig10, fig11_12, headline, streaming, table1, tracking
from repro.experiments.context import ExperimentContext
from repro.experiments.scale import SMALL


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SMALL)


class TestTable1:
    def test_versatel_dominates(self, context):
        result = table1.run(context)
        top = result.top_asns()
        assert top[0][0] == 8881  # Versatel first, as in the paper
        assert top[0][1] >= 2 * top[2][1]  # clear dominance

    def test_germany_leads_countries(self, context):
        result = table1.run(context)
        countries = result.top_countries()
        assert countries[0][0] == "DE"
        assert countries[1][0] == "GR"

    def test_render(self, context):
        text = table1.run(context).render()
        assert "AS8881" in text and "Total" in text


class TestFig3:
    def test_all_three_exemplars_inferred_correctly(self, context):
        result = fig3.run(context)
        assert result.inferred[6568] == 56  # Entel
        assert result.inferred[9146] == 60  # BH Telecom
        assert result.inferred[7682] == 64  # Starcat
        assert "Entel" in result.render()


class TestFig4:
    def test_homogeneity_shape(self, context):
        result = fig4.run(context)
        assert len(result.values) >= 10
        # Paper: >half of ASes above 0.9, ~3/4 above 0.67; the scaled
        # scenario lands slightly lower on the 0.9 bar.
        assert result.report.fraction_above(0.9) > 0.3
        assert result.report.fraction_above(0.67) > 0.6
        assert "homogeneity" in result.render()


class TestFig5:
    def test_as_level_shape(self, context):
        result = fig5.run(context)
        # /56 is the dominant per-AS median (paper: ~half of ASes).
        assert result.fraction_of_ases_at(56) > 0.4
        histogram = result.as_histogram()
        assert set(histogram) <= {48, 56, 60, 64}

    def test_per_iid_covers_sizes(self, context):
        result = fig5.run(context)
        histogram = result.iid_histogram()
        assert histogram.get(56, 0) > 0
        assert histogram.get(64, 0) > 0
        assert "Figure 5" in result.render()


class TestFig6:
    def test_two_allocation_sizes_one_provider(self, context):
        result = fig6.run(context)
        assert result.inferred[56] == 56
        assert result.inferred[64] == 64
        assert "Versatel" in result.render()


class TestFig7:
    def test_pool_vs_bgp_shape(self, context):
        result = fig7.run(context)
        # A sizable non-rotating fraction (paper: >1/2; scaled scenario
        # skews toward rotators by construction).
        assert 0.15 <= result.fraction_non_rotating() <= 0.7
        # The pool/BGP gap is in the paper's ~16-bit ballpark.
        assert 12 <= result.median_gap_bits() <= 26
        assert "Figure 7" in result.render()


class TestFig8:
    def test_most_iids_rotate(self, context):
        result = fig8.run(context)
        assert result.fraction_multi() > 0.6  # paper: >70%
        assert max(result.values) > 5
        assert "Figure 8" in result.render()


class TestFig9:
    def test_increment_staircase(self, context):
        result = fig9.run(context)
        assert len(result.trajectories) == 3
        modal = result.modal_increments()
        # One /56 delegation per day = 256 /64 numbers.
        assert all(step == 256 for step in modal.values())
        assert "Figure 9" in result.render()


class TestFig10:
    def test_density_changes_in_rotation_window(self, context):
        result = fig10.run(context)
        assert len(result.series) == 4  # the /46's four /48s
        assert result.fraction_changes_in_window() > 0.8
        assert "Figure 10" in result.render()


class TestFig11And12:
    def test_mac_reuse_exhibit(self, context):
        result = fig11_12.run_fig11(context)
        assert result.exhibit_iid is not None
        assert len(result.exhibit_days_by_asn) >= 3  # several ASes at once
        assert "MAC reuse" in result.render()

    def test_zero_mac_spread(self, context):
        result = fig11_12.run_fig11(context)
        assert result.report.max_as_spread() >= 5

    def test_german_switches_detected(self, context):
        result = fig11_12.run_fig12(context)
        german = result.german_switches()
        assert len(german) >= 1
        switch = german[0]
        assert {switch.from_asn, switch.to_asn} == {8881, 3320}
        assert "Figure 12" in result.render()


class TestTracking:
    def test_random_cohort_found_consistently(self, context):
        result = tracking.run_fig13a(context)
        assert result.n_tracked >= 8
        assert result.min_found_per_day() >= result.n_tracked - 2

    def test_rotating_cohort_mostly_found(self, context):
        result = tracking.run_fig13b(context)
        assert result.n_tracked >= 8
        assert result.min_found_per_day() >= result.n_tracked // 2
        # Rotating cohort: prefix changes observed during tracking.
        assert sum(result.report.changed_prefix_per_day().values()) >= 3

    def test_table2_renders_with_metadata(self, context):
        result = tracking.run_table2(context)
        text = result.render_table2()
        assert "Mean Probes" in text
        countries = {meta[1] for meta in result.meta.values()}
        assert len(countries) == result.n_tracked  # one per country

    def test_probe_costs_far_below_naive(self, context):
        result = tracking.run_table2(context)
        for track in result.report.tracks.values():
            assert track.mean_probes < 2**20  # naive would be 2^32


class TestHeadlineAndAblations:
    def test_headline_counters(self, context):
        result = headline.run(context)
        assert result.pipeline_summary["rotating_48s"] > 50
        assert result.n_rotating_ases >= 20
        assert result.address_reuse_factor > 3.0
        assert "headline" in result.render().lower()

    def test_search_ablation_reductions(self, context):
        result = ablations.run_search_ablation(context)
        assert len(result.bounds) >= 10
        for bound in result.bounds.values():
            assert bound.reduction_factor >= 1
        assert any(b.reduction_factor > 1e4 for b in result.bounds.values())
        assert "A1" in result.render()

    def test_remediation_kills_tracking(self, context):
        result = ablations.run_remediation_ablation(context)
        assert result.remediated_devices > 100
        assert result.found_before > 0
        assert result.found_after == 0  # privacy IIDs end EUI-64 tracking
        assert "remediation" in result.render()

    def test_blocklist_policies(self, context):
        result = ablations.run_blocklist_ablation(context)
        prefix = result.outcomes["prefix"]
        iid = result.outcomes["iid"]
        asn = result.outcomes["asn"]
        assert prefix.block_rate < iid.block_rate
        assert iid.collateral_rate < 0.1
        assert asn.collateral_rate == 1.0
        assert "A3" in result.render()


class TestStreaming:
    def test_batch_and_stream_identical(self, context):
        result = streaming.run(context)
        assert result.stores_identical
        assert result.summaries_identical
        assert result.inferences_identical
        assert result.identical
        assert result.responses > 0

    def test_render(self, context):
        text = streaming.run(context).render()
        assert "batch" in text and "stream" in text
        assert "identical" in text
