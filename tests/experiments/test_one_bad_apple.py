"""The Saidi et al. scenario's acceptance properties.

Passive-only tracking success must rise monotonically with vantage
coverage, hybrid must never drop below active-only, and the parallel
(workers=2) ingestion mode must reproduce the serial numbers exactly.
"""

from repro.experiments import one_bad_apple

COVERAGES = (0.0, 0.25, 0.5, 0.75, 1.0)
PARAMS = dict(coverages=COVERAGES, n_days=3, n_devices=24, seed=0)


def test_passive_monotone_hybrid_bounded_serial_equals_parallel():
    serial = one_bad_apple.run(workers=0, **PARAMS)
    parallel = one_bad_apple.run(workers=2, **PARAMS)

    for result in (serial, parallel):
        passive = [result.passive_success[c] for c in COVERAGES]
        # Nested tap coverage: success never decreases, and a full tap
        # strictly beats a blind one.
        assert passive == sorted(passive)
        assert passive[0] == 0.0
        assert passive[-1] > 0.0
        # The hybrid adversary is bounded below by the paper's
        # active-only pursuit at every coverage point.
        for coverage in COVERAGES:
            assert result.hybrid_success[coverage] >= result.active_success
        # A blind tap adds nothing; a full tap must add something here
        # (the active pursuit misses some days to ICMP rate limiting).
        assert result.hybrid_success[0.0] == result.active_success
        assert result.hybrid_success[1.0] > result.active_success

    # Parallel ingestion is an execution detail, not a result change.
    assert parallel.active_success == serial.active_success
    assert parallel.passive_success == serial.passive_success
    assert parallel.hybrid_success == serial.hybrid_success
    assert parallel.hybrid_probes == serial.hybrid_probes


def test_render_mentions_modes():
    result = one_bad_apple.run(
        coverages=(0.0, 1.0), n_days=2, n_devices=8, seed=1, workers=0
    )
    text = result.render()
    assert "passive-only" in text and "hybrid" in text and "active-only" in text
