"""Tests for SimInternet: probing, tracing, routing, accounting."""

import pytest

from repro.net.addr import Prefix, iid_of, parse_addr
from repro.net.eui64 import addr_is_eui64, mac_to_eui64_iid
from repro.net.icmpv6 import IcmpCode, IcmpType
from repro.simnet.device import CpeDevice, ResponsePolicy
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation


def small_internet(**internet_kwargs) -> SimInternet:
    pool = RotationPool(
        prefix=Prefix.parse("2001:db8::/48"),
        delegation_plen=56,
        policy=IncrementRotation(interval_hours=24.0),
        pool_key=99,
    )
    for i in range(8):
        pool.add_device(CpeDevice(device_id=i + 1, mac=0x3810D5000100 + i))
    provider = Provider(
        asn=64512,
        name="Test ISP",
        country="DE",
        bgp_prefixes=[Prefix.parse("2001:db8::/32")],
        pools=[pool],
    )
    return SimInternet([provider], **internet_kwargs)


class TestProbe:
    def test_probe_delegated_space_reveals_cpe(self):
        internet = small_internet()
        provider = internet.providers[0]
        pool = provider.pools[0]
        delegation = pool.delegation_of(0, 0.0)
        response = internet.probe(delegation.network + 0xDEAD, 0.0)
        assert response is not None
        assert response.source == pool.wan_address_of(0, 0.0)
        assert addr_is_eui64(response.source)
        assert response.icmp_type is not IcmpType.ECHO_REPLY

    def test_probe_vacant_slot_silent(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        occupied = {pool.delegation_of(i, 0.0).network for i in range(8)}
        for subnet in pool.prefix.subnets(56):
            if subnet.network not in occupied:
                assert internet.probe(subnet.network + 1, 0.0) is None
                break
        assert internet.stats.vacant >= 1

    def test_probe_routed_undelegated_space_core_answers(self):
        internet = small_internet()
        target = parse_addr("2001:db8:ffff::1")  # inside /32, outside pool
        response = internet.probe(target, 0.0)
        assert response is not None
        assert response.code == int(IcmpCode.NO_ROUTE)
        assert not addr_is_eui64(response.source)
        assert internet.stats.core_responses == 1

    def test_core_answers_can_be_disabled(self):
        internet = small_internet(core_answers_unrouted=False)
        assert internet.probe(parse_addr("2001:db8:ffff::1"), 0.0) is None

    def test_probe_unrouted_space_silent(self):
        internet = small_internet()
        assert internet.probe(parse_addr("2a00::1"), 0.0) is None
        assert internet.stats.unrouted == 1

    def test_offline_device_silent(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        pool.devices[0].active_until_hours = 0.0  # retired before probe
        delegation = pool.delegation_of(0, 1.0)
        assert internet.probe(delegation.network + 1, 3600.0) is None
        assert internet.stats.offline == 1

    def test_silent_policy_device(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        pool.devices[1].policy = ResponsePolicy.silent()
        delegation = pool.delegation_of(1, 0.0)
        assert internet.probe(delegation.network + 1, 0.0) is None
        assert internet.stats.silent_policy == 1

    def test_rate_limited_device(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        pool.devices[2].icmp_rate = 1.0
        pool.devices[2].icmp_burst = 1.0
        delegation = pool.delegation_of(2, 0.0)
        assert internet.probe(delegation.network + 1, 0.0) is not None
        assert internet.probe(delegation.network + 2, 0.0) is None
        assert internet.stats.rate_limited == 1

    def test_rotation_changes_responding_prefix(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        day0 = pool.delegation_of(0, 12.0)
        response0 = internet.probe(day0.network + 5, 12.0 * 3600)
        day1 = pool.delegation_of(0, 36.0)
        response1 = internet.probe(day1.network + 5, 36.0 * 3600)
        assert response0 is not None and response1 is not None
        assert iid_of(response0.source) == iid_of(response1.source)
        assert response0.source != response1.source

    def test_stats_probe_counting(self):
        internet = small_internet()
        for i in range(5):
            internet.probe(parse_addr("2a00::1") + i, float(i))
        assert internet.stats.probes == 5


class TestTrace:
    def test_trace_reaches_cpe(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        delegation = pool.delegation_of(3, 0.0)
        hops = internet.trace(delegation.network + 77, 0.0)
        assert len(hops) == internet.providers[0].core_hops + 1
        assert hops[-1] == pool.wan_address_of(3, 0.0)
        assert all(h is not None for h in hops[:-1])

    def test_trace_vacant_ends_silent(self):
        internet = small_internet()
        hops = internet.trace(parse_addr("2001:db8:0:ff00::1"), 0.0)
        # Slot may be vacant or occupied depending on scatter; check shape.
        assert len(hops) == internet.providers[0].core_hops + 1

    def test_trace_unrouted(self):
        internet = small_internet()
        assert internet.trace(parse_addr("2a00::1"), 0.0) == [None, None]

    def test_core_hops_statically_addressed(self):
        internet = small_internet()
        provider = internet.providers[0]
        hops = internet.trace(parse_addr("2001:db8:0:100::1"), 0.0)
        for index, hop in enumerate(hops[:-1]):
            assert hop == provider.core_router_address(index)
            assert not addr_is_eui64(hop)


class TestConstruction:
    def test_registry_populated(self):
        internet = small_internet()
        assert internet.registry.country_of(64512) == "DE"

    def test_rib_populated(self):
        internet = small_internet()
        assert internet.rib.origin_of(parse_addr("2001:db8::1")) == 64512

    def test_duplicate_asn_rejected(self):
        provider = small_internet().providers[0]
        with pytest.raises(ValueError):
            SimInternet([provider, provider])

    def test_overlapping_pools_rejected(self):
        prefix = Prefix.parse("2001:db8::/32")
        pool_a = RotationPool(prefix=Prefix.parse("2001:db8::/48"), delegation_plen=56)
        pool_b = RotationPool(prefix=Prefix.parse("2001:db8::/46"), delegation_plen=56)
        provider = Provider(
            asn=1, name="X", country="DE", bgp_prefixes=[prefix], pools=[pool_a, pool_b]
        )
        with pytest.raises(ValueError):
            SimInternet([provider])

    def test_pool_outside_bgp_rejected(self):
        with pytest.raises(ValueError):
            Provider(
                asn=1,
                name="X",
                country="DE",
                bgp_prefixes=[Prefix.parse("2001:db8::/32")],
                pools=[RotationPool(prefix=Prefix.parse("2a00::/48"), delegation_plen=56)],
            )

    def test_resolve_ground_truth(self):
        internet = small_internet()
        pool = internet.providers[0].pools[0]
        delegation = pool.delegation_of(0, 0.0)
        residence = internet.resolve(delegation.network + 1, 0.0)
        assert residence is not None
        assert iid_of(residence.wan_address) == mac_to_eui64_iid(pool.devices[0].mac)

    def test_all_devices(self):
        internet = small_internet()
        assert len(list(internet.all_devices())) == 8
