"""Tests for scenario events and the paper-mix builder."""


import pytest

from repro.net.eui64 import mac_to_eui64_iid
from repro.net.oui import OuiRegistry
from repro.simnet.builder import (
    InternetSpec,
    PoolSpec,
    ProviderSpec,
    build_internet,
    build_paper_internet,
    next_device_id,
    paper_internet_spec,
)
from repro.simnet.device import AddressingMode
from repro.simnet.events import (
    apply_vendor_remediation,
    clone_mac_into_ases,
    retire_device,
    switch_provider,
)
from repro.simnet.rotation import IncrementRotation, NoRotation


def tiny_spec(n_providers=2, occupancy=0.5) -> InternetSpec:
    providers = tuple(
        ProviderSpec(
            asn=65000 + i,
            name=f"ISP {i}",
            country="DE" if i % 2 == 0 else "GR",
            pools=(PoolSpec(48, 56, occupancy, IncrementRotation(24.0)),),
            vendor_mix=(("AVM", 0.8), ("ZTE", 0.2)),
        )
        for i in range(n_providers)
    )
    return InternetSpec(providers=providers, seed=7)


class TestBuildInternet:
    def test_deterministic(self):
        a = build_internet(tiny_spec())
        b = build_internet(tiny_spec())
        macs_a = sorted(d.mac for d in a.all_devices())
        macs_b = sorted(d.mac for d in b.all_devices())
        assert macs_a == macs_b

    def test_device_count_matches_occupancy(self):
        internet = build_internet(tiny_spec(n_providers=1, occupancy=0.5))
        pool = internet.providers[0].pools[0]
        assert pool.n_customers == 128  # half of 256 slots

    def test_unique_device_ids_and_macs(self):
        internet = build_internet(tiny_spec(n_providers=3))
        devices = list(internet.all_devices())
        ids = [d.device_id for d in devices]
        macs = [d.mac for d in devices]
        assert len(set(ids)) == len(ids)
        assert len(set(macs)) == len(macs)

    def test_vendor_mix_respected(self):
        internet = build_internet(tiny_spec(n_providers=1))
        registry = OuiRegistry.bundled()
        vendors = [registry.vendor_of_mac(d.mac) for d in internet.all_devices()]
        avm = sum(1 for v in vendors if v == "AVM")
        assert avm / len(vendors) > 0.6

    def test_synthetic_bgp_allocation_distinct(self):
        internet = build_internet(tiny_spec(n_providers=4))
        prefixes = {str(p.bgp_prefixes[0]) for p in internet.providers}
        assert len(prefixes) == 4

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PoolSpec(pool_plen=40)
        with pytest.raises(ValueError):
            PoolSpec(occupancy=0.0)
        with pytest.raises(ValueError):
            PoolSpec(pool_plen=48, delegation_plen=40)
        with pytest.raises(ValueError):
            ProviderSpec(asn=1, name="x", country="DE", pools=())
        with pytest.raises(ValueError):
            ProviderSpec(
                asn=1, name="x", country="DE",
                pools=(PoolSpec(),), vendor_mix=(("AVM", 0.5),),
            )


class TestEvents:
    def test_switch_provider_moves_mac(self):
        internet = build_internet(tiny_spec(n_providers=2))
        pool_a = internet.providers[0].pools[0]
        device = pool_a.devices[0]
        new = switch_provider(
            internet, device.device_id, from_asn=65000, to_asn=65001,
            at_hours=100.0, next_device_id=next_device_id(internet),
        )
        assert new.mac == device.mac
        assert device.active_until_hours == 100.0
        assert new.active_from_hours == 100.0
        assert not device.is_active(101.0)
        assert new.is_active(101.0)
        assert internet.providers[1].pools[0].customer_index_of(new.device_id) is not None

    def test_switch_provider_unknown_device(self):
        internet = build_internet(tiny_spec(n_providers=2))
        with pytest.raises(ValueError):
            switch_provider(internet, 10**9, 65000, 65001, 10.0, 1)

    def test_clone_mac_into_ases(self):
        internet = build_internet(tiny_spec(n_providers=3))
        clones = clone_mac_into_ases(
            internet, mac=0x3810D5FFFFFF, asns=[65000, 65001, 65002],
            first_device_id=next_device_id(internet),
        )
        assert len(clones) == 3
        assert len({c.device_id for c in clones}) == 3
        assert all(c.mac == 0x3810D5FFFFFF for c in clones)

    def test_remediation_switches_vendor_devices(self):
        internet = build_internet(tiny_spec(n_providers=1))
        registry = OuiRegistry.bundled()
        count = apply_vendor_remediation(internet, "AVM", at_hours=500.0)
        assert count > 0
        for device in internet.all_devices():
            if registry.vendor_of_mac(device.mac) == "AVM" and device.addressing is AddressingMode.EUI64:
                assert device.addressing_at(501.0) is AddressingMode.PRIVACY
                assert device.addressing_at(499.0) is AddressingMode.EUI64

    def test_retire_device(self):
        internet = build_internet(tiny_spec(n_providers=1))
        device = internet.providers[0].pools[0].devices[0]
        retire_device(internet, 65000, device.device_id, at_hours=50.0)
        assert not device.is_active(51.0)


class TestPaperInternet:
    @pytest.fixture(scope="class")
    def internet(self):
        return build_paper_internet(seed=1, n_tail_ases=20)

    def test_named_providers_present(self, internet):
        for asn in (8881, 6799, 3320, 8422, 7552, 9146, 6568, 7682):
            assert internet.provider_of_asn(asn) is not None

    def test_versatel_prefix_matches_paper(self, internet):
        versatel = internet.provider_of_asn(8881)
        assert str(versatel.bgp_prefixes[0]) == "2001:16b8::/32"

    def test_versatel_rotates_daily_increment(self, internet):
        versatel = internet.provider_of_asn(8881)
        pool = versatel.pools[0]
        assert isinstance(pool.policy, IncrementRotation)
        assert pool.policy.interval_hours == 24.0

    def test_starcat_does_not_rotate(self, internet):
        starcat = internet.provider_of_asn(7682)
        assert isinstance(starcat.pools[0].policy, NoRotation)
        assert starcat.pools[0].delegation_plen == 64

    def test_bh_telecom_allocates_60s(self, internet):
        bh = internet.provider_of_asn(9146)
        assert bh.pools[0].delegation_plen == 60

    def test_netcologne_avm_homogeneity(self, internet):
        registry = OuiRegistry.bundled()
        netcologne = internet.provider_of_asn(8422)
        vendors = [registry.vendor_of_mac(d.mac) for d in netcologne.all_devices()]
        assert sum(1 for v in vendors if v == "AVM") / len(vendors) > 0.99

    def test_zero_mac_cloned_into_twelve_ases(self, internet):
        holders = {
            provider.asn
            for provider in internet.providers
            for device in provider.all_devices()
            if device.mac == 0
        }
        assert len(holders) == 12

    def test_provider_switch_devices_exist(self, internet):
        # One MAC leaves AS3320 for AS8881, another the reverse.
        by_mac: dict[int, set[int]] = {}
        for provider in internet.providers:
            if provider.asn not in (3320, 8881):
                continue
            for device in provider.all_devices():
                by_mac.setdefault(device.mac, set()).add(provider.asn)
        switchers = [mac for mac, asns in by_mac.items() if len(asns) == 2]
        assert len(switchers) >= 2

    def test_tail_countries_diverse(self, internet):
        countries = {p.country for p in internet.providers}
        assert len(countries) >= 10

    def test_spec_inspectable(self):
        spec = paper_internet_spec(seed=1, n_tail_ases=5)
        assert len(spec.providers) == len(_named := [p for p in spec.providers if p.bgp_prefix]) + 5
        assert all(p.pools for p in spec.providers)

    def test_probe_smoke(self, internet):
        versatel = internet.provider_of_asn(8881)
        pool = versatel.pools[0]
        delegation = pool.delegation_of(0, 12.0)
        response = internet.probe(delegation.network + 3, 12.0 * 3600)
        device = pool.devices[0]
        if device.policy.responds and device.is_online(12.0):
            assert response is not None
            assert (response.source & ((1 << 64) - 1)) == mac_to_eui64_iid(device.mac)
