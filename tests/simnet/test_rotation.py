"""Tests for rotation policies: bijectivity, inversion, timing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.rotation import (
    IncrementRotation,
    NoRotation,
    RotationPolicy,
    ShuffleRotation,
)

POLICIES = [
    NoRotation(),
    IncrementRotation(interval_hours=24.0),
    ShuffleRotation(interval_hours=24.0),
]


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: type(p).__name__)
class TestAssignmentBijection:
    def test_slots_distinct_within_epoch(self, policy):
        nslots, key = 64, 12345
        slots = [policy.slot_of(i, 3, nslots, key) for i in range(nslots)]
        assert sorted(slots) == list(range(nslots))

    def test_customer_of_inverts_slot_of(self, policy):
        nslots, key = 64, 999
        for epoch in (0, 1, 7, -2):
            for i in range(nslots):
                slot = policy.slot_of(i, epoch, nslots, key)
                assert policy.customer_of(slot, epoch, nslots, key) == i

    def test_slot_in_range(self, policy):
        nslots, key = 128, 77
        for i in range(nslots):
            assert 0 <= policy.slot_of(i, 5, nslots, key) < nslots


class TestNoRotation:
    def test_slot_static_across_epochs(self):
        policy = NoRotation()
        assert policy.slot_of(5, 0, 64, 1) == policy.slot_of(5, 100, 64, 1)

    def test_rotates_flag(self):
        assert not NoRotation().rotates
        assert IncrementRotation().rotates
        assert ShuffleRotation().rotates


class TestIncrementRotation:
    def test_increments_by_one_per_epoch(self):
        """Figure 9: the slot advances by one each day, wrapping modulo
        the pool size."""
        policy = IncrementRotation(interval_hours=24.0)
        nslots, key = 64, 42
        for i in (0, 5, 33):
            s0 = policy.slot_of(i, 0, nslots, key)
            for epoch in range(1, 130):
                assert policy.slot_of(i, epoch, nslots, key) == (s0 + epoch) % nslots

    def test_epoch_advances_daily(self):
        policy = IncrementRotation(interval_hours=24.0, rotation_hour=0.0)
        assert policy.base_epoch(1.0) == 0
        assert policy.base_epoch(23.9) == 0
        assert policy.base_epoch(24.1) == 1
        assert policy.base_epoch(-0.1) == -1

    def test_rotation_hour_offsets_epoch(self):
        policy = IncrementRotation(interval_hours=24.0, rotation_hour=6.0)
        assert policy.base_epoch(5.9) == -1
        assert policy.base_epoch(6.1) == 0

    def test_jitter_within_window(self):
        policy = IncrementRotation(interval_hours=24.0, window_hours=6.0)
        for customer in range(50):
            jitter = policy.customer_jitter(customer, pool_key=9)
            assert 0.0 <= jitter < 6.0

    def test_jitter_deterministic(self):
        policy = IncrementRotation(interval_hours=24.0, window_hours=6.0)
        assert policy.customer_jitter(7, 9) == policy.customer_jitter(7, 9)

    def test_zero_window_means_zero_jitter(self):
        policy = IncrementRotation(interval_hours=24.0)
        assert policy.customer_jitter(7, 9) == 0.0

    def test_offset_in_epoch(self):
        policy = IncrementRotation(interval_hours=24.0, rotation_hour=3.0)
        assert policy.offset_in_epoch(3.0) == pytest.approx(0.0)
        assert policy.offset_in_epoch(10.5) == pytest.approx(7.5)
        assert policy.offset_in_epoch(27.0 + 24.0) == pytest.approx(0.0)

    def test_jitter_spreads_customers(self):
        policy = IncrementRotation(interval_hours=24.0, window_hours=6.0)
        jitters = {policy.customer_jitter(c, 3) for c in range(200)}
        assert len(jitters) > 150  # near-unique stagger times


class TestShuffleRotation:
    def test_epochs_produce_different_assignments(self):
        policy = ShuffleRotation(interval_hours=24.0)
        nslots, key = 256, 5
        a = [policy.slot_of(i, 0, nslots, key) for i in range(nslots)]
        b = [policy.slot_of(i, 1, nslots, key) for i in range(nslots)]
        assert a != b
        moved = sum(1 for x, y in zip(a, b) if x != y)
        assert moved > nslots // 2  # a real shuffle moves most customers


class TestValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            IncrementRotation(interval_hours=0)

    def test_window_must_fit_interval(self):
        with pytest.raises(ValueError):
            IncrementRotation(interval_hours=24.0, window_hours=24.0)
        with pytest.raises(ValueError):
            IncrementRotation(interval_hours=24.0, window_hours=-1.0)


@given(
    policy_index=st.integers(min_value=0, max_value=2),
    nslots_pow=st.integers(min_value=1, max_value=12),
    key=st.integers(min_value=0, max_value=2**31),
    epoch=st.integers(min_value=-50, max_value=50),
    customer=st.integers(min_value=0, max_value=4000),
)
@settings(max_examples=80, deadline=None)
def test_inversion_property(policy_index, nslots_pow, key, epoch, customer):
    policy: RotationPolicy = POLICIES[policy_index]
    nslots = 2**nslots_pow
    i = customer % nslots
    slot = policy.slot_of(i, epoch, nslots, key)
    assert 0 <= slot < nslots
    assert policy.customer_of(slot, epoch, nslots, key) == i
