"""Tests for the CPE device model and rotation pool resolution."""


import pytest

from repro.net.addr import IID_BITS, Prefix, iid_of
from repro.net.eui64 import is_eui64_iid, mac_to_eui64_iid
from repro.net.icmpv6 import IcmpType
from repro.simnet.device import AddressingMode, CpeDevice, ResponsePolicy
from repro.simnet.pool import RotationPool
from repro.simnet.rotation import IncrementRotation, NoRotation, ShuffleRotation


def make_device(device_id=1, mac=0x3810D5000001, **kwargs) -> CpeDevice:
    return CpeDevice(device_id=device_id, mac=mac, **kwargs)


class TestDevice:
    def test_eui64_wan_iid_static(self):
        device = make_device()
        iid_a = device.wan_iid(0x1111, 0.0)
        iid_b = device.wan_iid(0x2222, 500.0)
        assert iid_a == iid_b == mac_to_eui64_iid(device.mac)

    def test_privacy_iid_changes_with_prefix(self):
        device = make_device(addressing=AddressingMode.PRIVACY)
        iid_a = device.wan_iid(0x1111, 0.0)
        iid_b = device.wan_iid(0x2222, 0.0)
        assert iid_a != iid_b
        assert not is_eui64_iid(iid_a)
        assert not is_eui64_iid(iid_b)

    def test_privacy_iid_stable_for_same_prefix(self):
        device = make_device(addressing=AddressingMode.PRIVACY)
        assert device.wan_iid(0x1111, 0.0) == device.wan_iid(0x1111, 100.0)

    def test_static_iid(self):
        device = make_device(addressing=AddressingMode.STATIC)
        assert device.wan_iid(0x1111, 0.0) == 1

    def test_remediation_switch(self):
        device = make_device(privacy_switch_hours=100.0)
        assert device.addressing_at(99.0) is AddressingMode.EUI64
        assert device.addressing_at(100.0) is AddressingMode.PRIVACY
        before = device.wan_iid(0x1111, 99.0)
        after = device.wan_iid(0x1111, 101.0)
        assert is_eui64_iid(before)
        assert not is_eui64_iid(after)

    def test_active_window(self):
        device = make_device(active_from_hours=10.0, active_until_hours=20.0)
        assert not device.is_active(9.9)
        assert device.is_active(10.0)
        assert not device.is_active(20.0)

    def test_online_fraction_one_always_online(self):
        device = make_device()
        assert all(device.is_online(t * 24.0) for t in range(50))

    def test_online_fraction_zero_never_online(self):
        device = make_device(online_fraction=0.0)
        assert not any(device.is_online(t * 24.0) for t in range(50))

    def test_online_fraction_partial_deterministic(self):
        device = make_device(online_fraction=0.5)
        days = [device.is_online(t * 24.0) for t in range(200)]
        assert days == [device.is_online(t * 24.0) for t in range(200)]
        assert 40 < sum(days) < 160  # roughly half, loose bounds

    def test_online_stable_within_day(self):
        device = make_device(online_fraction=0.5)
        for day in range(10):
            base = device.is_online(day * 24.0)
            assert device.is_online(day * 24.0 + 13.7) == base

    def test_online_fraction_validation(self):
        with pytest.raises(ValueError):
            make_device(online_fraction=1.5)

    def test_rate_limiter_applies(self):
        device = make_device(icmp_rate=1.0, icmp_burst=2.0)
        assert device.allows_response(0.0)
        assert device.allows_response(0.0)
        assert not device.allows_response(0.0)

    def test_response_policy_factories(self):
        assert ResponsePolicy.silent().responds is False
        assert ResponsePolicy.no_route().icmp_code == 0
        assert ResponsePolicy.hop_limit_exceeded().icmp_type is IcmpType.TIME_EXCEEDED


def make_pool(
    plen=48, delegation=56, n_devices=16, policy=None, addressing=AddressingMode.EUI64
) -> RotationPool:
    pool = RotationPool(
        prefix=Prefix.parse(f"2001:db8::/{plen}"),
        delegation_plen=delegation,
        policy=policy or IncrementRotation(interval_hours=24.0),
        pool_key=1234,
    )
    for i in range(n_devices):
        pool.add_device(
            CpeDevice(device_id=100 + i, mac=0x3810D5000000 + i, addressing=addressing)
        )
    return pool


class TestPoolBasics:
    def test_nslots(self):
        assert make_pool(48, 56).nslots == 256
        assert make_pool(48, 60).nslots == 4096

    def test_occupancy(self):
        pool = make_pool(48, 56, n_devices=64)
        assert pool.occupancy == pytest.approx(0.25)

    def test_delegation_bounds_validated(self):
        with pytest.raises(ValueError):
            RotationPool(prefix=Prefix.parse("2001:db8::/48"), delegation_plen=40)
        with pytest.raises(ValueError):
            RotationPool(prefix=Prefix.parse("2001:db8::/48"), delegation_plen=65)

    def test_pool_full(self):
        pool = make_pool(62, 64, n_devices=4)
        with pytest.raises(ValueError):
            pool.add_device(make_device(device_id=999))

    def test_customer_index_of(self):
        pool = make_pool()
        assert pool.customer_index_of(100) == 0
        assert pool.customer_index_of(115) == 15
        assert pool.customer_index_of(31337) is None


class TestPoolResolution:
    def test_resolve_roundtrip_all_customers(self):
        pool = make_pool(n_devices=32)
        t = 5.0
        for i in range(pool.n_customers):
            delegation = pool.delegation_of(i, t)
            probe_addr = delegation.network + (1 << 20) + 99
            residence = pool.resolve(probe_addr, t)
            assert residence is not None
            assert residence.device.device_id == pool.devices[i].device_id
            assert residence.delegation == delegation

    def test_wan_address_inside_delegation(self):
        pool = make_pool(n_devices=8)
        for i in range(8):
            delegation = pool.delegation_of(i, 3.0)
            wan = pool.wan_address_of(i, 3.0)
            assert wan in delegation
            assert (wan >> IID_BITS) == delegation.network >> IID_BITS

    def test_wan_iid_is_eui64(self):
        pool = make_pool(n_devices=4)
        wan = pool.wan_address_of(0, 0.0)
        assert is_eui64_iid(iid_of(wan))

    def test_vacant_slot_resolves_none(self):
        pool = make_pool(n_devices=4)  # 4 of 256 slots occupied
        t = 0.0
        occupied = {pool.delegation_of(i, t).network for i in range(4)}
        vacant_count = 0
        for subnet in pool.prefix.subnets(56):
            if subnet.network not in occupied:
                if pool.resolve(subnet.network + 7, t) is None:
                    vacant_count += 1
        assert vacant_count == 256 - 4

    def test_address_outside_pool(self):
        pool = make_pool()
        assert pool.resolve(Prefix.parse("2001:db9::/48").network, 0.0) is None

    def test_rotation_moves_delegation_daily(self):
        pool = make_pool(n_devices=16)
        d0 = pool.delegation_of(3, 12.0)
        d1 = pool.delegation_of(3, 36.0)
        assert d0 != d1
        index0 = pool.prefix.subnet_index(d0.network, 56)
        index1 = pool.prefix.subnet_index(d1.network, 56)
        assert index1 == (index0 + 1) % 256

    def test_no_rotation_pool_is_static(self):
        pool = make_pool(policy=NoRotation(), n_devices=16)
        assert pool.delegation_of(3, 0.0) == pool.delegation_of(3, 24 * 365.0)

    def test_resolution_consistent_during_rotation_window(self):
        """Mid-window invariants: no slot ever has two tenants, and every
        customer is either resolvable at its reported delegation or
        mid-renumbering (its old slot already handed to someone else)."""
        policy = IncrementRotation(interval_hours=24.0, rotation_hour=0.0, window_hours=6.0)
        pool = make_pool(policy=policy, n_devices=64)
        for t in (23.5, 24.0, 24.5, 25.0, 27.3, 30.0, 30.1):
            # Single tenancy: scanning every slot yields distinct devices.
            seen_devices = set()
            for subnet in pool.prefix.subnets(56):
                residence = pool.resolve(subnet.network + 42, t)
                if residence is not None:
                    assert residence.device.device_id not in seen_devices
                    seen_devices.add(residence.device.device_id)
            # Reachability: each customer resolvable at its delegation,
            # or shadowed by a handover already granted to another.
            shadowed = 0
            for i in range(pool.n_customers):
                delegation = pool.delegation_of(i, t)
                residence = pool.resolve(delegation.network + 42, t)
                assert residence is not None
                if residence.device.device_id != pool.devices[i].device_id:
                    shadowed += 1
            assert shadowed <= pool.n_customers // 4

    def test_outside_window_everyone_resolvable(self):
        policy = IncrementRotation(interval_hours=24.0, rotation_hour=0.0, window_hours=6.0)
        pool = make_pool(policy=policy, n_devices=64)
        for t in (7.0, 12.0, 23.9, 31.0, 54.5):
            for i in range(pool.n_customers):
                delegation = pool.delegation_of(i, t)
                residence = pool.resolve(delegation.network + 42, t)
                assert residence is not None
                assert residence.device.device_id == pool.devices[i].device_id

    def test_shuffle_rotation_resolution(self):
        pool = make_pool(policy=ShuffleRotation(interval_hours=24.0), n_devices=32)
        for t in (0.0, 25.0, 49.0):
            for i in range(pool.n_customers):
                delegation = pool.delegation_of(i, t)
                residence = pool.resolve(delegation.network + 1, t)
                assert residence is not None
                assert residence.device.device_id == pool.devices[i].device_id

    def test_privacy_device_wan_changes_on_rotation(self):
        pool = make_pool(n_devices=4, addressing=AddressingMode.PRIVACY)
        wan0 = pool.wan_address_of(0, 0.0)
        wan1 = pool.wan_address_of(0, 24.5)
        assert wan0 != wan1
        assert iid_of(wan0) != iid_of(wan1)  # new prefix -> new random IID

    def test_eui64_device_iid_constant_across_rotation(self):
        pool = make_pool(n_devices=4)
        assert iid_of(pool.wan_address_of(0, 0.0)) == iid_of(pool.wan_address_of(0, 24.5))

    def test_delegation_of_bad_index(self):
        pool = make_pool(n_devices=4)
        with pytest.raises(IndexError):
            pool.delegation_of(4, 0.0)
