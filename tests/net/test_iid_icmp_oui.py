"""Tests for IID classification, the ICMPv6 model, and the OUI registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import ADDR_MAX, parse_addr
from repro.net.eui64 import mac_to_eui64_iid
from repro.net.icmpv6 import (
    IcmpCode,
    IcmpType,
    Icmpv6Message,
    ProbeResponse,
    checksum,
    decode,
    encode,
)
from repro.net.iid import IidKind, classify_iid
from repro.net.oui import UNKNOWN_VENDOR, OuiRegistry

addresses = st.integers(min_value=0, max_value=ADDR_MAX)


class TestClassifyIid:
    def test_eui64(self):
        assert classify_iid(mac_to_eui64_iid(0x3810D5AABBCC)) is IidKind.EUI64

    def test_low(self):
        assert classify_iid(1) is IidKind.LOW
        assert classify_iid(0xFFFF) is IidKind.LOW

    def test_embedded_port(self):
        assert classify_iid(443) is IidKind.EMBEDDED_PORT
        assert classify_iid(53) is IidKind.EMBEDDED_PORT

    def test_embedded_ipv4_hex_style(self):
        # ::c000:0201 == 192.0.2.1 embedded in the low 32 bits
        assert classify_iid(0xC000_0201) is IidKind.EMBEDDED_IPV4

    def test_embedded_ipv4_decimal_style(self):
        # ::192:0:2:1 style, groups readable as decimal octets
        iid = (0x192 << 48) | (0x0 << 32) | (0x2 << 16) | 0x1
        assert classify_iid(iid) is IidKind.EMBEDDED_IPV4

    def test_random(self):
        assert classify_iid(0xDEAD_BEEF_CAFE_F00D) is IidKind.RANDOM

    def test_range_check(self):
        with pytest.raises(ValueError):
            classify_iid(1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_total_function(self, iid):
        assert classify_iid(iid) in IidKind


class TestIcmpv6Model:
    def test_error_predicate(self):
        err = Icmpv6Message(IcmpType.DEST_UNREACHABLE, IcmpCode.ADMIN_PROHIBITED, 1, 2, 3)
        assert err.is_error
        reply = Icmpv6Message(IcmpType.ECHO_REPLY, 0, 1, 2)
        assert not reply.is_error

    def test_describe_mentions_type(self):
        err = Icmpv6Message(IcmpType.TIME_EXCEEDED, 0, 1, 2, 3)
        assert "TIME_EXCEEDED" in err.describe()

    def test_probe_response_error_predicate(self):
        r = ProbeResponse(1, 2, IcmpType.DEST_UNREACHABLE, 3, 0.0)
        assert r.is_error
        r2 = ProbeResponse(1, 2, IcmpType.ECHO_REPLY, 0, 0.0)
        assert not r2.is_error

    def test_probe_response_describe(self):
        r = ProbeResponse(parse_addr("2001:db8::1"), parse_addr("2001:db8::2"),
                          IcmpType.DEST_UNREACHABLE, 1, 1.5)
        text = r.describe()
        assert "2001:db8::1" in text
        assert "2001:db8::2" in text


class TestWireFormat:
    def test_checksum_known_value(self):
        # All-zero data checksums to 0xffff (one's complement of 0).
        assert checksum(b"\x00\x00") == 0xFFFF

    def test_checksum_odd_length_padded(self):
        assert checksum(b"\x01") == checksum(b"\x01\x00")

    def test_encode_decode_roundtrip_error(self):
        src = parse_addr("2001:db8::1")
        dst = parse_addr("2001:db8::2")
        quoted = parse_addr("2001:db8:ffff::42")
        msg = Icmpv6Message(IcmpType.DEST_UNREACHABLE, int(IcmpCode.ADDR_UNREACHABLE),
                            src, dst, quoted)
        wire = encode(msg)
        back = decode(src, dst, wire)
        assert back.icmp_type is IcmpType.DEST_UNREACHABLE
        assert back.code == int(IcmpCode.ADDR_UNREACHABLE)
        assert back.quoted_target == quoted

    def test_encode_decode_roundtrip_echo(self):
        src = parse_addr("2001:db8::1")
        dst = parse_addr("2001:db8::2")
        msg = Icmpv6Message(IcmpType.ECHO_REQUEST, 0, src, dst)
        back = decode(src, dst, encode(msg))
        assert back.icmp_type is IcmpType.ECHO_REQUEST
        assert back.quoted_target == 0

    def test_decode_rejects_corrupt(self):
        src = parse_addr("2001:db8::1")
        dst = parse_addr("2001:db8::2")
        msg = Icmpv6Message(IcmpType.ECHO_REQUEST, 0, src, dst)
        wire = bytearray(encode(msg))
        wire[0] ^= 0xFF
        with pytest.raises(ValueError):
            decode(src, dst, bytes(wire))

    def test_decode_rejects_short(self):
        with pytest.raises(ValueError):
            decode(0, 0, b"\x01")

    @given(addresses, addresses, addresses)
    def test_roundtrip_property(self, src, dst, quoted):
        msg = Icmpv6Message(IcmpType.TIME_EXCEEDED, 0, src, dst, quoted)
        back = decode(src, dst, encode(msg))
        assert back.quoted_target == quoted


class TestOuiRegistry:
    def test_bundled_has_avm(self):
        reg = OuiRegistry.bundled()
        assert reg.vendor_of_oui(0x3810D5) == "AVM"

    def test_bundled_has_lancom(self):
        reg = OuiRegistry.bundled()
        assert reg.vendor_of_oui(0x00A057) == "Lancom Systems"

    def test_vendor_of_mac(self):
        reg = OuiRegistry.bundled()
        assert reg.vendor_of_mac(0x3810D5AABBCC) == "AVM"

    def test_unknown(self):
        reg = OuiRegistry.bundled()
        assert reg.vendor_of_oui(0xDEAD01) == UNKNOWN_VENDOR

    def test_register_and_lookup(self):
        reg = OuiRegistry(table={})
        reg.register(0x123456, "TestVendor")
        assert reg.vendor_of_oui(0x123456) == "TestVendor"
        assert 0x123456 in reg
        assert len(reg) == 1

    def test_register_range_check(self):
        reg = OuiRegistry(table={})
        with pytest.raises(ValueError):
            reg.register(1 << 24, "X")

    def test_ouis_of_vendor(self):
        reg = OuiRegistry.bundled()
        avm = reg.ouis_of_vendor("AVM")
        assert 0x3810D5 in avm
        assert len(avm) >= 5

    def test_vendors_sorted_unique(self):
        reg = OuiRegistry.bundled()
        vendors = reg.vendors()
        assert list(vendors) == sorted(set(vendors))
        assert "ZTE" in vendors

    def test_describe(self):
        reg = OuiRegistry.bundled()
        assert "AVM" in reg.describe(0x3810D5)

    def test_no_duplicate_ouis_in_bundle(self):
        # vendor_oui_table raises on duplicates; loading proves uniqueness.
        assert len(OuiRegistry.bundled()) > 50
