"""Tests for MAC helpers and the EUI-64 bijection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.eui64 import (
    addr_is_eui64,
    addr_to_mac,
    eui64_iid_to_mac,
    is_eui64_iid,
    mac_to_eui64_iid,
)
from repro.net.mac import (
    MAC_MAX,
    format_mac,
    format_oui,
    is_locally_administered,
    is_multicast_mac,
    mac_from_oui,
    oui_of,
    parse_mac,
    parse_oui,
)

macs = st.integers(min_value=0, max_value=MAC_MAX)


class TestMacText:
    def test_format(self):
        assert format_mac(0x3810D5AABBCC) == "38:10:d5:aa:bb:cc"

    def test_parse_colon(self):
        assert parse_mac("38:10:d5:aa:bb:cc") == 0x3810D5AABBCC

    def test_parse_dash_and_case(self):
        assert parse_mac("38-10-D5-AA-BB-CC") == 0x3810D5AABBCC

    def test_parse_bare_hex(self):
        assert parse_mac("3810d5aabbcc") == 0x3810D5AABBCC

    def test_parse_rejects_bad_octet_count(self):
        with pytest.raises(ValueError):
            parse_mac("38:10:d5:aa:bb")

    def test_parse_rejects_oversize_octet(self):
        with pytest.raises(ValueError):
            parse_mac("338:10:d5:aa:bb:cc")

    @given(macs)
    def test_roundtrip(self, mac):
        assert parse_mac(format_mac(mac)) == mac


class TestOui:
    def test_oui_of(self):
        assert oui_of(0x3810D5AABBCC) == 0x3810D5

    def test_format_parse_roundtrip(self):
        assert parse_oui(format_oui(0x3810D5)) == 0x3810D5

    def test_mac_from_oui(self):
        assert mac_from_oui(0x3810D5, 0xAABBCC) == 0x3810D5AABBCC

    def test_mac_from_oui_range_checks(self):
        with pytest.raises(ValueError):
            mac_from_oui(1 << 24, 0)
        with pytest.raises(ValueError):
            mac_from_oui(0, 1 << 24)


class TestMacBits:
    def test_multicast_bit(self):
        assert is_multicast_mac(0x0100_0000_0000)
        assert not is_multicast_mac(0x3810D5AABBCC)

    def test_local_bit(self):
        assert is_locally_administered(0x0200_0000_0000)
        assert not is_locally_administered(0x3810D5AABBCC)


class TestEui64:
    def test_paper_figure1_example(self):
        """The canonical conversion of the paper's example CPE MAC.

        MAC 38:10:d5:aa:bb:cc -> IID 3a10:d5ff:feaa:bbcc (U/L bit of 0x38
        flips to 0x3a; ff:fe inserted in the middle).
        """
        mac = parse_mac("38:10:d5:aa:bb:cc")
        iid = mac_to_eui64_iid(mac)
        assert iid == 0x3A10_D5FF_FEAA_BBCC

    def test_detection(self):
        assert is_eui64_iid(0x3A10_D5FF_FEAA_BBCC)
        assert not is_eui64_iid(0x3A10_D5FF_FFAA_BBCC)
        assert not is_eui64_iid(0)

    def test_detection_rejects_out_of_range(self):
        assert not is_eui64_iid(-1)
        assert not is_eui64_iid(1 << 64)

    def test_inverse(self):
        mac = parse_mac("38:10:d5:aa:bb:cc")
        assert eui64_iid_to_mac(mac_to_eui64_iid(mac)) == mac

    def test_inverse_rejects_non_eui64(self):
        with pytest.raises(ValueError):
            eui64_iid_to_mac(0x1234)

    def test_zero_mac_is_valid_eui64(self):
        """The all-zero default MAC from the paper's Section 5.5."""
        iid = mac_to_eui64_iid(0)
        assert is_eui64_iid(iid)
        assert eui64_iid_to_mac(iid) == 0

    def test_addr_level_helpers(self):
        mac = parse_mac("38:10:d5:aa:bb:cc")
        addr = (0x2001_16B8_0000_0001 << 64) | mac_to_eui64_iid(mac)
        assert addr_is_eui64(addr)
        assert addr_to_mac(addr) == mac

    @given(macs)
    def test_bijection(self, mac):
        iid = mac_to_eui64_iid(mac)
        assert is_eui64_iid(iid)
        assert eui64_iid_to_mac(iid) == mac

    @given(macs)
    def test_ul_bit_flipped(self, mac):
        iid = mac_to_eui64_iid(mac)
        mac_top = mac >> 40
        iid_top = iid >> 56
        assert iid_top == mac_top ^ 0x02
