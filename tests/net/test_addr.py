"""Tests for repro.net.addr: formatting, parsing, and Prefix arithmetic."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import (
    ADDR_MAX,
    Prefix,
    format_addr,
    high64,
    iid_of,
    parse_addr,
    with_iid,
)

addresses = st.integers(min_value=0, max_value=ADDR_MAX)


class TestFormatAddr:
    def test_zero_is_double_colon(self):
        assert format_addr(0) == "::"

    def test_loopback(self):
        assert format_addr(1) == "::1"

    def test_documentation_prefix(self):
        addr = 0x20010DB8 << 96
        assert format_addr(addr) == "2001:db8::"

    def test_paper_example_prefix(self):
        # The provider prefix from the paper's Figure 1.
        addr = parse_addr("2001:16b8::")
        assert format_addr(addr) == "2001:16b8::"

    def test_no_compression_of_single_zero_group(self):
        addr = parse_addr("2001:db8:0:1:1:1:1:1")
        assert format_addr(addr) == "2001:db8:0:1:1:1:1:1"

    def test_leftmost_longest_run_wins(self):
        addr = parse_addr("2001:0:0:1:0:0:0:1")
        assert format_addr(addr) == "2001:0:0:1::1"

    def test_all_ones(self):
        assert format_addr(ADDR_MAX) == "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_addr(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            format_addr(ADDR_MAX + 1)


class TestParseAddr:
    def test_full_form(self):
        assert parse_addr("0:0:0:0:0:0:0:1") == 1

    def test_compressed(self):
        assert parse_addr("::1") == 1
        assert parse_addr("2001:db8::") == 0x20010DB8 << 96

    def test_whitespace_tolerated(self):
        assert parse_addr("  ::1  ") == 1

    def test_rejects_two_double_colons(self):
        with pytest.raises(ValueError):
            parse_addr("1::2::3")

    def test_rejects_wrong_group_count(self):
        with pytest.raises(ValueError):
            parse_addr("1:2:3")

    def test_rejects_oversize_group(self):
        with pytest.raises(ValueError):
            parse_addr("12345::")

    def test_rejects_useless_double_colon(self):
        with pytest.raises(ValueError):
            parse_addr("1:2:3:4:5:6:7::8")

    @given(addresses)
    def test_roundtrip(self, addr):
        assert parse_addr(format_addr(addr)) == addr


class TestHighLowHelpers:
    def test_iid_of(self):
        addr = (0xABCD << 64) | 0x1234
        assert iid_of(addr) == 0x1234

    def test_high64(self):
        addr = (0xABCD << 64) | 0x1234
        assert high64(addr) == 0xABCD

    @given(addresses)
    def test_split_recombine(self, addr):
        assert with_iid(high64(addr), iid_of(addr)) == addr

    def test_with_iid_range_checks(self):
        with pytest.raises(ValueError):
            with_iid(1 << 64, 0)
        with pytest.raises(ValueError):
            with_iid(0, 1 << 64)


class TestPrefix:
    def test_canonicalizes_host_bits(self):
        p = Prefix(parse_addr("2001:db8::ffff"), 32)
        assert p.network == parse_addr("2001:db8::")

    def test_parse_and_str_roundtrip(self):
        p = Prefix.parse("2001:16b8::/32")
        assert str(p) == "2001:16b8::/32"

    def test_parse_requires_len(self):
        with pytest.raises(ValueError):
            Prefix.parse("2001:db8::")

    def test_plen_bounds(self):
        with pytest.raises(ValueError):
            Prefix(0, 129)
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_contains(self):
        p = Prefix.parse("2001:db8::/32")
        assert parse_addr("2001:db8:ffff::1") in p
        assert parse_addr("2001:db9::") not in p

    def test_contains_prefix(self):
        outer = Prefix.parse("2001:db8::/32")
        inner = Prefix.parse("2001:db8:5::/48")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_num_subnets(self):
        p = Prefix.parse("2001:db8::/48")
        assert p.num_subnets(56) == 256
        assert p.num_subnets(64) == 65536

    def test_num_subnets_rejects_supernet(self):
        with pytest.raises(ValueError):
            Prefix.parse("2001:db8::/48").num_subnets(32)

    def test_subnet_indexing(self):
        p = Prefix.parse("2001:db8::/48")
        s = p.subnet(0x12, 56)
        assert str(s) == "2001:db8:0:1200::/56"
        assert p.subnet_index(s.network, 56) == 0x12

    def test_subnet_index_out_of_range(self):
        p = Prefix.parse("2001:db8::/48")
        with pytest.raises(IndexError):
            p.subnet(256, 56)

    def test_subnet_index_requires_membership(self):
        p = Prefix.parse("2001:db8::/48")
        with pytest.raises(ValueError):
            p.subnet_index(parse_addr("2001:db9::"), 56)

    def test_subnets_enumeration(self):
        p = Prefix.parse("2001:db8::/62")
        nets = list(p.subnets(64))
        assert len(nets) == 4
        assert nets[0].network == p.network
        assert all(n.plen == 64 for n in nets)
        assert nets[-1].last == p.last

    def test_random_addr_in_prefix(self):
        p = Prefix.parse("2001:db8:42::/48")
        rng = random.Random(7)
        for _ in range(100):
            assert p.random_addr(rng) in p

    def test_random_subnet_in_prefix(self):
        p = Prefix.parse("2001:db8:42::/48")
        rng = random.Random(7)
        for _ in range(50):
            s = p.random_subnet(64, rng)
            assert p.contains_prefix(s)

    def test_equality_and_hash(self):
        a = Prefix.parse("2001:db8::/32")
        b = Prefix(parse_addr("2001:db8::1"), 32)
        assert a == b
        assert hash(a) == hash(b)

    @given(addresses, st.integers(min_value=0, max_value=128))
    def test_containing_always_contains(self, addr, plen):
        assert addr in Prefix.containing(addr, plen)

    @given(addresses, st.integers(min_value=1, max_value=64))
    def test_subnet_roundtrip(self, addr, extra):
        base_plen = 128 - extra
        outer_plen = max(0, base_plen - 8)
        outer = Prefix.containing(addr, outer_plen)
        inner_plen = min(128, outer_plen + 8)
        idx = outer.subnet_index(addr, inner_plen)
        assert addr in outer.subnet(idx, inner_plen)
