"""Tests for shared utilities, the simulation clock, and bundled data."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.asinfo_db import AS_RECORDS, TAIL_COUNTRIES, records_by_asn
from repro.data.oui_db import VENDOR_OUIS, vendor_oui_table
from repro.simnet.clock import (
    HOURS_PER_DAY,
    day_of,
    day_start,
    hour_of_day,
    hours,
    seconds,
)
from repro.util import mean, median, mix64, stddev, unit_float


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_order_sensitive(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_arity_sensitive(self):
        assert mix64(1) != mix64(1, 0)

    def test_range(self):
        for args in [(0,), (1, 2), (2**63, 2**64 - 1)]:
            value = mix64(*args)
            assert 0 <= value < 2**64

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=1, max_size=5))
    def test_always_in_range(self, values):
        assert 0 <= mix64(*values) < 2**64

    def test_avalanche_rough(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = mix64(12345)
        flipped = mix64(12345 ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 10 <= differing <= 54

    def test_unit_float_range(self):
        for i in range(100):
            assert 0.0 <= unit_float(i, 7) < 1.0


class TestStats:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_stddev(self):
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([0, 2]) == 1.0

    def test_empty_raise(self):
        for fn in (median, mean, stddev):
            with pytest.raises(ValueError):
                fn([])

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    def test_median_between_min_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestClock:
    def test_conversions_roundtrip(self):
        assert hours(seconds(13.5)) == pytest.approx(13.5)

    def test_day_of(self):
        assert day_of(0.0) == 0
        assert day_of(23.99) == 0
        assert day_of(24.0) == 1
        assert day_of(-0.5) == -1

    def test_hour_of_day(self):
        assert hour_of_day(30.0) == pytest.approx(6.0)
        assert hour_of_day(-1.0) == pytest.approx(23.0)

    def test_day_start(self):
        assert day_start(3) == 3 * HOURS_PER_DAY

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_hour_of_day_in_range(self, t):
        assert 0.0 <= hour_of_day(t) < HOURS_PER_DAY + 1e-6

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_decomposition(self, t):
        assert day_of(t) * HOURS_PER_DAY + hour_of_day(t) == pytest.approx(
            t, abs=1e-6
        )


class TestBundledData:
    def test_oui_table_unique_and_plausible(self):
        table = vendor_oui_table()
        assert len(table) == sum(len(v) for v in VENDOR_OUIS.values())
        assert all(0 <= oui < 2**24 for oui in table)

    def test_major_vendors_present(self):
        assert {"AVM", "ZTE", "Huawei", "Sagemcom"} <= set(VENDOR_OUIS)

    def test_as_records_unique_asns(self):
        asns = [r.asn for r in AS_RECORDS]
        assert len(set(asns)) == len(asns)

    def test_paper_ases_present(self):
        by_asn = records_by_asn()
        for asn, cc in [(8881, "DE"), (6799, "GR"), (7552, "VN"), (9146, "BA")]:
            assert by_asn[asn].country == cc

    def test_tail_countries_count(self):
        # "25 different countries" in the paper's abstract.
        assert len(TAIL_COUNTRIES) == 25
        assert all(len(cc) == 2 and weight > 0 for cc, weight in TAIL_COUNTRIES)

    def test_country_codes_are_upper(self):
        assert all(r.country == r.country.upper() for r in AS_RECORDS)
