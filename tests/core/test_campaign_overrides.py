"""Tests for per-prefix campaign probe-granularity overrides."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.net.addr import Prefix
from repro.simnet.builder import InternetSpec, PoolSpec, ProviderSpec, build_internet
from repro.simnet.rotation import ShuffleRotation

ALWAYS = (("admin_prohibited", 1.0),)


def sixty_internet():
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001, name="Sixty", country="BA",
                pools=(PoolSpec(48, 60, 0.5, ShuffleRotation(24.0)),),
                eui64_fraction=1.0, online_fraction=1.0,
                new_since_seed_fraction=0.0, retired_fraction=0.0,
                response_mix=ALWAYS,
            ),
        ),
        seed=5,
    )
    return build_internet(spec)


class TestPlenOverrides:
    def test_override_multiplies_targets(self):
        internet = sixty_internet()
        prefix = Prefix(internet.providers[0].pools[0].prefix.network, 48)
        base = Campaign(internet, [prefix], CampaignConfig(days=1, seed=5))
        finer = Campaign(
            internet, [prefix], CampaignConfig(days=1, seed=5),
            plen_overrides={prefix: 60},
        )
        assert len(base.targets) == 256
        assert len(finer.targets) == 4096

    def test_finer_granularity_observes_all_devices(self):
        internet = sixty_internet()
        pool = internet.providers[0].pools[0]
        prefix = Prefix(pool.prefix.network, 48)

        coarse = Campaign(internet, [prefix], CampaignConfig(days=2, seed=5)).run()
        fine = Campaign(
            internet, [prefix], CampaignConfig(days=2, seed=5),
            plen_overrides={prefix: 60},
        ).run()
        coarse_iids = len(coarse.store.eui64_iids())
        fine_iids = len(fine.store.eui64_iids())
        # Per-/56 probing of /60 delegations samples ~1/16 of devices per
        # epoch; per-/60 probing sees everyone.
        assert fine_iids == pool.n_customers
        assert coarse_iids < fine_iids

    def test_override_validation(self):
        internet = sixty_internet()
        prefix = Prefix(internet.providers[0].pools[0].prefix.network, 48)
        with pytest.raises(ValueError):
            Campaign(
                internet, [prefix], CampaignConfig(days=1),
                plen_overrides={prefix: 40},
            )

    def test_override_for_unlisted_prefix_ignored(self):
        internet = sixty_internet()
        prefix = Prefix(internet.providers[0].pools[0].prefix.network, 48)
        other = Prefix.parse("2001:db8::/48")
        campaign = Campaign(
            internet, [prefix], CampaignConfig(days=1, seed=5),
            plen_overrides={other: 60},
        )
        assert len(campaign.targets) == 256
