"""Tests for allocation grids, homogeneity, and time-series analyses."""

import random

import pytest

from repro.core.grids import GRID_DIM, AllocationGrid, scan_allocation_grid
from repro.core.homogeneity import homogeneity_by_asn
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.timeseries import (
    density_over_time,
    distinct_net64_counts,
    fraction_multi_prefix,
    iid_trajectory,
    trajectory_increments,
)
from repro.net.addr import Prefix, with_iid
from repro.net.eui64 import mac_to_eui64_iid
from repro.net.oui import OuiRegistry
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, Zmap6

P48 = Prefix.parse("2001:db8::/48")


def obs(day, target, source, t=None):
    t_seconds = (day * 24 + 12) * 3600.0 if t is None else t
    return ProbeObservation(day=day, t_seconds=t_seconds, target=target, source=source)


class TestAllocationGrid:
    def test_requires_48(self):
        with pytest.raises(ValueError):
            AllocationGrid(prefix=Prefix.parse("2001:db8::/56"))

    def test_set_and_fraction(self):
        grid = AllocationGrid(prefix=P48)
        grid.set_response(P48.network, 42)
        assert grid.responsive_fraction == pytest.approx(1 / 65536)
        assert grid.distinct_sources() == {42}

    def test_infer_56_bands(self):
        """Filling entire rows with one source each reads as /56."""
        grid = AllocationGrid(prefix=P48)
        for row in range(0, 32):
            source = 1000 + row
            for col in range(GRID_DIM):
                grid.set_response(
                    P48.subnet(row * GRID_DIM + col, 64).network + 1, source
                )
        assert grid.infer_allocation_plen() == 56

    def test_infer_60_bands(self):
        grid = AllocationGrid(prefix=P48)
        for row in range(8):
            for sixteenth in range(16):
                source = 5000 + row * 16 + sixteenth
                for col in range(sixteenth * 16, sixteenth * 16 + 16):
                    grid.set_response(
                        P48.subnet(row * GRID_DIM + col, 64).network + 1, source
                    )
        assert grid.infer_allocation_plen() == 60

    def test_infer_64_pixels(self):
        grid = AllocationGrid(prefix=P48)
        rng = random.Random(0)
        for _ in range(500):
            index = rng.randrange(GRID_DIM * GRID_DIM)
            grid.set_response(P48.subnet(index, 64).network + 1, 10_000 + index)
        assert grid.infer_allocation_plen() == 64

    def test_infer_empty_raises(self):
        with pytest.raises(ValueError):
            AllocationGrid(prefix=P48).infer_allocation_plen()

    def test_render_ascii_shape(self):
        grid = AllocationGrid(prefix=P48)
        art = grid.render_ascii(downsample=8)
        lines = art.splitlines()
        assert len(lines) == 32
        assert all(len(line) == 32 for line in lines)
        assert set("".join(lines)) == {"."}

    def test_render_downsample_validation(self):
        with pytest.raises(ValueError):
            AllocationGrid(prefix=P48).render_ascii(downsample=7)

    def test_scan_grid_on_simulated_provider(self, rotating_internet):
        provider = rotating_internet.providers[0]
        pool = provider.pools[0]
        grid = scan_allocation_grid(rotating_internet, pool.prefix, t_seconds=3600.0)
        assert grid.infer_allocation_plen() == 56
        assert len(grid.distinct_sources()) == pool.n_customers
        art = grid.render_ascii()
        assert any(c != "." for line in art.splitlines() for c in line)


class TestHomogeneity:
    def build_store(self, vendor_macs: dict[str, int]) -> ObservationStore:
        registry = OuiRegistry.bundled()
        store = ObservationStore()
        serial = 0
        for vendor, count in vendor_macs.items():
            oui = registry.ouis_of_vendor(vendor)[0]
            for _ in range(count):
                mac = (oui << 24) | serial
                serial += 1
                iid = mac_to_eui64_iid(mac)
                store.add(obs(0, 1, with_iid(0x100 + serial, iid)))
        return store

    def test_homogeneity_value(self):
        store = self.build_store({"AVM": 90, "ZTE": 10})
        report = homogeneity_by_asn(store, lambda a: 8422, min_iids=10)
        entry = report.per_asn[8422]
        assert entry.dominant_vendor == "AVM"
        assert entry.homogeneity == pytest.approx(0.9)

    def test_min_iids_exclusion(self):
        store = self.build_store({"AVM": 5})
        report = homogeneity_by_asn(store, lambda a: 1, min_iids=100)
        assert report.per_asn  # computed...
        assert not report.included()  # ...but excluded from the CDF

    def test_fraction_above(self):
        store = self.build_store({"AVM": 99, "ZTE": 1})
        report = homogeneity_by_asn(store, lambda a: 1, min_iids=10)
        assert report.fraction_above(0.9) == 1.0
        assert report.fraction_above(0.999) == 0.0

    def test_fraction_above_empty_raises(self):
        report = homogeneity_by_asn(ObservationStore(), lambda a: 1)
        with pytest.raises(ValueError):
            report.fraction_above(0.5)

    def test_distinct_vendors(self):
        store = self.build_store({"AVM": 3, "ZTE": 3, "Huawei": 3})
        report = homogeneity_by_asn(store, lambda a: 1, min_iids=1)
        assert report.distinct_vendors() == {"AVM", "ZTE", "Huawei"}

    def test_iid_counted_once_per_as(self):
        registry = OuiRegistry.bundled()
        oui = registry.ouis_of_vendor("AVM")[0]
        iid = mac_to_eui64_iid(oui << 24)
        store = ObservationStore()
        for day in range(5):  # same IID, same AS, many sightings
            store.add(obs(day, 1, with_iid(0x100 + day, iid)))
        report = homogeneity_by_asn(store, lambda a: 1, min_iids=1)
        assert report.per_asn[1].total_iids == 1


EUI_X = mac_to_eui64_iid(0x3810D5BB0001)
EUI_Y = mac_to_eui64_iid(0x3810D5BB0002)


class TestTimeseries:
    def test_distinct_counts_and_fraction(self):
        store = ObservationStore()
        store.add(obs(0, 1, with_iid(0x10, EUI_X)))
        store.add(obs(1, 1, with_iid(0x11, EUI_X)))
        store.add(obs(0, 1, with_iid(0x20, EUI_Y)))
        store.add(obs(1, 1, with_iid(0x20, EUI_Y)))
        counts = distinct_net64_counts(store)
        assert counts[EUI_X] == 2
        assert counts[EUI_Y] == 1
        assert fraction_multi_prefix(store) == pytest.approx(0.5)

    def test_fraction_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_multi_prefix(ObservationStore())

    def test_trajectory_ordering_and_increments(self):
        store = ObservationStore()
        for day, net in [(2, 0x12), (0, 0x10), (1, 0x11), (4, 0x14)]:
            store.add(obs(day, 1, with_iid(net, EUI_X)))
        points = iid_trajectory(store, EUI_X)
        assert [p.day for p in points] == [0, 1, 2, 4]
        assert trajectory_increments(points) == [1, 1, 1]

    def test_trajectory_first_observation_wins(self):
        store = ObservationStore()
        store.add(obs(0, 1, with_iid(0x10, EUI_X), t=100.0))
        store.add(obs(0, 1, with_iid(0x99, EUI_X), t=200.0))
        points = iid_trajectory(store, EUI_X)
        assert len(points) == 1
        assert points[0].net64 == 0x10

    def test_density_over_time(self):
        p48 = Prefix.parse("2001:db8::/48")
        store = ObservationStore()
        # Hour 0: two EUI sources in the /48; hour 1: one.
        store.add(obs(0, 1, p48.network | (0x01 << 64) | EUI_X, t=0.0))
        store.add(obs(0, 1, p48.network | (0x02 << 64) | EUI_Y, t=10.0))
        store.add(obs(0, 1, p48.network | (0x03 << 64) | EUI_X, t=3600.0))
        series = density_over_time(store, [p48], blocks_per_48=256)
        points = dict(series[p48].sorted_points())
        assert points[0.0] == pytest.approx(2 / 256)
        assert points[1.0] == pytest.approx(1 / 256)

    def test_density_validation(self):
        with pytest.raises(ValueError):
            density_over_time(ObservationStore(), [P48], blocks_per_48=0)

    def test_simulated_increment_trajectory(self, rotating_internet):
        """Figure 9 end-to-end: daily scans show +1 /56 step per day."""
        provider = rotating_internet.providers[0]
        pool = provider.pools[0]
        rng = random.Random(6)
        targets = one_target_per_subnet(pool.prefix, 56, rng)
        store = ObservationStore()
        scanner = Zmap6(rotating_internet, ScanConfig(seed=8))
        for day in range(6):
            scan = scanner.scan(targets, start_seconds=(day * 24 + 12) * 3600.0)
            store.add_responses(scan.responses, day=day)
        iid = next(iter(store.eui64_iids()))
        points = iid_trajectory(store, iid)
        increments = trajectory_increments(points)
        # One /56 step = 256 /64 numbers; allow the wrap-day outlier.
        assert increments.count(256) >= len(increments) - 1
