"""Tests for the observation store and Algorithms 1 & 2."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    AllocationInference,
    allocation_bits,
    infer_allocation_plen,
    plen_from_bits,
)
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.rotation_pool import (
    RotationPoolInference,
    infer_rotation_pool_plen,
    pool_bits,
)
from repro.net.addr import Prefix, with_iid
from repro.net.eui64 import mac_to_eui64_iid
from repro.net.icmpv6 import IcmpType, ProbeResponse
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, Zmap6


def obs(day, target, source, t=0.0):
    return ProbeObservation(day=day, t_seconds=t, target=target, source=source)


EUI = mac_to_eui64_iid(0x3810D5AABBCC)
EUI2 = mac_to_eui64_iid(0x3810D5AABBCD)


class TestObservationStore:
    def test_counts_and_sets(self):
        store = ObservationStore()
        store.add(obs(0, with_iid(0x10, 1), with_iid(0x10, EUI)))
        store.add(obs(1, with_iid(0x11, 1), with_iid(0x11, EUI)))
        store.add(obs(1, with_iid(0x20, 1), with_iid(0x20, 0xDEAD)))
        assert len(store) == 3
        assert len(store.unique_sources()) == 3
        assert len(store.unique_eui64_sources()) == 2
        assert store.eui64_iids() == {EUI}

    def test_net64s_and_days_of_iid(self):
        store = ObservationStore()
        store.add(obs(0, 1, with_iid(0x10, EUI)))
        store.add(obs(3, 1, with_iid(0x11, EUI)))
        store.add(obs(3, 1, with_iid(0x11, EUI)))
        assert store.net64s_of_iid(EUI) == {0x10, 0x11}
        assert store.days_of_iid(EUI) == {0, 3}

    def test_on_day_and_eui_only(self):
        store = ObservationStore()
        store.add(obs(0, 1, with_iid(0x10, EUI)))
        store.add(obs(1, 2, with_iid(0x10, 0x1234)))
        assert len(store.on_day(0)) == 1
        assert len(store.eui64_only()) == 1

    def test_in_prefix(self):
        store = ObservationStore()
        inside = Prefix.parse("2001:db8::/32").network + 5
        store.add(obs(0, 1, inside))
        store.add(obs(0, 1, Prefix.parse("2a00::/32").network + 5))
        assert len(store.in_prefix(Prefix.parse("2001:db8::/32"))) == 1

    def test_targets_of_iid_on_day(self):
        store = ObservationStore()
        store.add(obs(0, 111, with_iid(0x10, EUI)))
        store.add(obs(0, 222, with_iid(0x10, EUI)))
        store.add(obs(1, 333, with_iid(0x11, EUI)))
        assert sorted(store.targets_of_iid_on_day(EUI, 0)) == [111, 222]

    def test_group_by_asn(self):
        store = ObservationStore()
        store.add(obs(0, 1, with_iid(0x10, EUI)))
        store.add(obs(0, 1, with_iid(0x20, EUI2)))
        groups = store.group_eui64_by_asn(lambda addr: 100 if (addr >> 64) < 0x18 else 200)
        assert set(groups) == {100, 200}

    def test_from_response(self):
        response = ProbeResponse(
            target=5, source=with_iid(1, EUI), icmp_type=IcmpType.DEST_UNREACHABLE,
            code=1, time=3600.0 * 30,
        )
        observation = ProbeObservation.from_response(response)
        assert observation.day == 1  # hour 30 -> day 1
        added = ObservationStore()
        added.add_responses([response], day=7)
        assert added.on_day(7)

    def test_eui64_histories(self):
        store = ObservationStore()
        store.add(obs(0, 1, with_iid(0x10, EUI)))
        store.add(obs(0, 1, with_iid(0x20, 0x1234)))
        histories = dict(store.eui64_histories())
        assert set(histories) == {EUI}


class TestAlgorithm1:
    def test_bits_known_values(self):
        # Targets spanning all 256 /64s of a /56: spread 255 -> ~8 bits.
        assert plen_from_bits(allocation_bits([0, 255])) == 56
        # Single /64: 0 bits -> /64.
        assert plen_from_bits(allocation_bits([7])) == 64
        # /60 delegation: spread 15 -> ~4 bits.
        assert plen_from_bits(allocation_bits([16, 31])) == 60

    def test_bits_empty_raises(self):
        with pytest.raises(ValueError):
            allocation_bits([])

    def test_plen_clamped(self):
        assert plen_from_bits(40.0) == 48
        assert plen_from_bits(-3.0) == 64

    def test_median_across_iids(self):
        targets = {
            1: [with_iid(0, 0), with_iid(255, 0)],   # /56
            2: [with_iid(0x300, 0), with_iid(0x3FF, 0)],  # /56
            3: [with_iid(0x500, 0)],                  # /64 (single)
        }
        assert infer_allocation_plen(targets) == 56

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            infer_allocation_plen({})

    def test_inference_on_simulated_provider(self, rotating_internet):
        """End-to-end: probe every /64 of the /56-rotator, run Algorithm 1."""
        provider = rotating_internet.providers[0]
        pool = provider.pools[0]
        rng = random.Random(3)
        targets = one_target_per_subnet(pool.prefix, 64, rng)
        scan = Zmap6(rotating_internet, ScanConfig(seed=5)).scan(targets, 3600.0)
        store = ObservationStore()
        store.add_responses(scan.responses, day=0)
        inference = AllocationInference.from_store(
            provider.asn, store, rotating_internet.rib.origin_of, day=0
        )
        assert inference.inferred_plen == 56
        histogram = inference.plen_histogram()
        assert histogram.get(56, 0) >= pool.n_customers - 2

    def test_inference_on_60_provider(self, rotating_internet):
        provider = rotating_internet.providers[1]
        pool = provider.pools[0]
        rng = random.Random(3)
        targets = one_target_per_subnet(pool.prefix, 64, rng)
        scan = Zmap6(rotating_internet, ScanConfig(seed=5)).scan(targets, 3600.0)
        store = ObservationStore()
        store.add_responses(scan.responses, day=0)
        inference = AllocationInference.from_store(
            provider.asn, store, rotating_internet.rib.origin_of, day=0
        )
        assert inference.inferred_plen == 60

    def test_no_observations_raises(self):
        store = ObservationStore()
        with pytest.raises(ValueError):
            AllocationInference.from_store(1, store, lambda a: 1)

    @given(
        plen=st.sampled_from([56, 60, 64]),
        base=st.integers(min_value=0, max_value=2**40),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovers_synthetic_delegation(self, plen, base):
        """Targets covering one delegation recover its plen exactly."""
        size = 1 << (64 - plen)
        start = (base << (64 - plen)) if plen < 64 else base
        net64s = [start, start + size - 1] if size > 1 else [start]
        targets = {EUI: [with_iid(n, 9) for n in net64s]}
        assert infer_allocation_plen(targets) == plen


class TestAlgorithm2:
    def test_pool_bits(self):
        assert pool_bits([0x100]) == 0.0
        assert pool_bits([0, 255]) == pytest.approx(7.994, abs=0.01)

    def test_single_prefix_is_64(self):
        assert infer_rotation_pool_plen({1: [with_iid(0x42, EUI)]}) == 64

    def test_full_pool_traversal(self):
        # An IID seen across a whole /48 (spread 2^16 of /64s).
        responses = {1: [with_iid(0, EUI), with_iid((1 << 16) - 1, EUI)]}
        assert infer_rotation_pool_plen(responses) == 48

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            infer_rotation_pool_plen({})

    def test_shuffle_rotator_inference(self, rotating_internet):
        """Observe the /60 shuffler for 20 days: inferred pool ~ /48."""
        provider = rotating_internet.providers[1]
        pool = provider.pools[0]
        rng = random.Random(1)
        targets = one_target_per_subnet(pool.prefix, 60, rng)
        store = ObservationStore()
        scanner = Zmap6(rotating_internet, ScanConfig(seed=2))
        for day in range(20):
            scan = scanner.scan(targets, start_seconds=(day * 24 + 12) * 3600.0)
            store.add_responses(scan.responses, day=day)
        inference = RotationPoolInference.from_store(
            provider.asn, store, rotating_internet.rib.origin_of
        )
        assert inference.rotates
        assert inference.inferred_plen <= 50  # near the true /48

    def test_non_rotator_inference(self, static_internet):
        provider = static_internet.providers[0]
        pool = provider.pools[0]
        rng = random.Random(1)
        targets = one_target_per_subnet(pool.prefix, 64, rng)
        store = ObservationStore()
        scanner = Zmap6(static_internet, ScanConfig(seed=2))
        for day in range(5):
            scan = scanner.scan(targets, start_seconds=(day * 24 + 12) * 3600.0)
            store.add_responses(scan.responses, day=day)
        inference = RotationPoolInference.from_store(
            provider.asn, store, static_internet.rib.origin_of
        )
        assert not inference.rotates
        assert inference.inferred_plen == 64

    def test_increment_rotator_underestimates(self, rotating_internet):
        """The paper's caveat: short windows under-measure increment pools."""
        provider = rotating_internet.providers[0]
        pool = provider.pools[0]
        rng = random.Random(1)
        targets = one_target_per_subnet(pool.prefix, 56, rng)
        store = ObservationStore()
        scanner = Zmap6(rotating_internet, ScanConfig(seed=2))
        for day in range(5):
            scan = scanner.scan(targets, start_seconds=(day * 24 + 12) * 3600.0)
            store.add_responses(scan.responses, day=day)
        inference = RotationPoolInference.from_store(
            provider.asn, store, rotating_internet.rib.origin_of
        )
        assert inference.rotates
        # 5 days x one /56 step/day: spread 4*256 of /64s -> ~/54, far
        # smaller than the true /48 pool.
        assert inference.inferred_plen > 48
