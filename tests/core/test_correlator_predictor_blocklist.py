"""Tests for flow correlation, next-prefix prediction, and blocklisting."""

import pytest

from repro.core.blocklist import (
    AbuseScenario,
    BlockPolicy,
    BlocklistEvaluator,
)
from repro.core.correlator import FlowCorrelator, synthesize_flows
from repro.core.predictor import (
    IncrementModel,
    fit_increment_model,
    prediction_hit_rate,
)
from repro.core.timeseries import TrajectoryPoint
from repro.net.addr import Prefix
from repro.simnet.device import AddressingMode, CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation


def build_internet(privacy_from: int = 48, n_devices: int = 64) -> SimInternet:
    """A rotator whose devices [privacy_from:] use privacy addressing."""
    pool = RotationPool(
        prefix=Prefix.parse("2001:db8::/46"),
        delegation_plen=56,
        policy=IncrementRotation(interval_hours=24.0),
        pool_key=31,
    )
    for i in range(n_devices):
        addressing = (
            AddressingMode.EUI64 if i < privacy_from else AddressingMode.PRIVACY
        )
        pool.add_device(
            CpeDevice(device_id=500 + i, mac=0x3810D5300000 + i, addressing=addressing)
        )
    provider = Provider(
        asn=65001, name="R", country="DE",
        bgp_prefixes=[Prefix.parse("2001:db8::/32")], pools=[pool],
    )
    return SimInternet([provider], core_answers_unrouted=False)


class TestCorrelator:
    def test_synthesize_flows_labelled(self):
        internet = build_internet()
        flows = synthesize_flows(internet, 65001, n_households=5,
                                 flows_per_day=4, days=[1, 2, 3], seed=1)
        assert len(flows) == 5 * 4 * 3
        assert {f.household for f in flows} == set(range(5))

    def test_synthesize_unknown_asn(self):
        internet = build_internet()
        with pytest.raises(ValueError):
            synthesize_flows(internet, 99999, 1, 1, [1])

    def test_flows_with_eui_cpe_identified(self):
        internet = build_internet(privacy_from=64)  # all EUI-64
        flows = synthesize_flows(internet, 65001, 8, 3, [1, 2], seed=2)
        correlator = FlowCorrelator(internet, seed=3)
        outcome = correlator.correlate(flows)
        assert len(outcome.identified) == len(flows)
        assert outcome.recall(flows) == 1.0

    def test_privacy_cpe_defeats_correlation(self):
        internet = build_internet(privacy_from=0)  # all privacy mode
        flows = synthesize_flows(internet, 65001, 8, 3, [1, 2], seed=2)
        correlator = FlowCorrelator(internet, seed=3)
        outcome = correlator.correlate(flows)
        assert not outcome.identified
        assert outcome.recall(flows) == 0.0

    def test_mixed_population_partial_recall(self):
        """The paper's 60-90% case-study accuracy band."""
        internet = build_internet(privacy_from=48, n_devices=64)  # 75% EUI
        flows = synthesize_flows(internet, 20, 0, [1], seed=0) if False else \
            synthesize_flows(internet, 65001, 20, 3, [1, 2, 3], seed=4)
        correlator = FlowCorrelator(internet, seed=5)
        outcome = correlator.correlate(flows)
        recall = outcome.recall(flows)
        assert 0.4 < recall < 1.0

    def test_no_false_links(self):
        internet = build_internet(privacy_from=64)
        flows = synthesize_flows(internet, 65001, 10, 2, [1], seed=6)
        outcome = FlowCorrelator(internet, seed=7).correlate(flows)
        _correct, incorrect, _undecided = outcome.pairs_linked(flows)
        assert incorrect == 0

    def test_probes_accounted(self):
        internet = build_internet(privacy_from=64)
        flows = synthesize_flows(internet, 65001, 4, 2, [1], seed=8)
        outcome = FlowCorrelator(internet, probes_per_flow=2, seed=9).correlate(flows)
        assert outcome.probes_sent >= len(flows)

    def test_recall_requires_pairs(self):
        internet = build_internet()
        outcome = FlowCorrelator(internet).correlate([])
        with pytest.raises(ValueError):
            outcome.recall([])

    def test_probes_per_flow_validation(self):
        internet = build_internet()
        with pytest.raises(ValueError):
            FlowCorrelator(internet, probes_per_flow=0)


POOL = Prefix.parse("2001:db8::/46")
POOL64_BASE = POOL.network >> 64


def staircase(days, step=256, start=0):
    """An AS8881-style trajectory: +step /64s per day, modulo the pool."""
    size = 1 << (64 - 46)
    return [
        TrajectoryPoint(day=d, net64=POOL64_BASE + (start + d * step) % size)
        for d in days
    ]


class TestPredictor:
    def test_fit_recovers_step(self):
        model = fit_increment_model(staircase(range(6)), POOL)
        assert model is not None
        assert model.step_net64 == 256
        assert model.confidence == 1.0

    def test_fit_handles_wrap(self):
        size = 1 << 18
        points = staircase(range(8), step=256, start=size - 3 * 256)
        model = fit_increment_model(points, POOL)
        assert model is not None
        assert model.step_net64 == 256

    def test_fit_with_gaps(self):
        model = fit_increment_model(staircase([0, 1, 3, 6]), POOL)
        assert model is not None
        assert model.step_net64 == 256

    def test_fit_rejects_short(self):
        assert fit_increment_model(staircase([0, 1]), POOL) is None

    def test_fit_rejects_random_walk(self):
        points = [
            TrajectoryPoint(day=d, net64=POOL64_BASE + n)
            for d, n in [(0, 10), (1, 5000), (2, 17), (3, 60000), (4, 123)]
        ]
        model = fit_increment_model(points, POOL)
        assert model is None or model.confidence < 0.5

    def test_min_points_validation(self):
        with pytest.raises(ValueError):
            fit_increment_model(staircase(range(4)), POOL, min_points=1)

    def test_prediction_future_only(self):
        model = fit_increment_model(staircase(range(5)), POOL)
        with pytest.raises(ValueError):
            model.predict_net64(2)

    def test_prediction_hit_rate_perfect(self):
        points = staircase(range(10))
        model = fit_increment_model(points[:5], POOL)
        assert prediction_hit_rate(model, points) == 1.0

    def test_prediction_wraps(self):
        size = 1 << 18
        model = IncrementModel(
            step_net64=256, pool=POOL, last_day=0,
            last_net64=POOL64_BASE + size - 256, confidence=1.0,
        )
        assert model.predict_net64(1) == POOL64_BASE  # wrapped to pool start

    def test_hit_rate_requires_future(self):
        model = fit_increment_model(staircase(range(5)), POOL)
        with pytest.raises(ValueError):
            prediction_hit_rate(model, staircase(range(3)))


class TestBlocklist:
    @pytest.fixture(scope="class")
    def scenario_setup(self):
        internet = build_internet(privacy_from=64, n_devices=64)
        flows = synthesize_flows(internet, 65001, 12, 3, [1, 4, 5], seed=11)
        def day_of(flow):
            return int(flow.t_seconds // 86400.0)

        scenario = AbuseScenario(
            training=[f for f in flows if day_of(f) == 1],
            evaluation=[f for f in flows if day_of(f) in (4, 5)],
            abusive_households={0, 1, 2},
        )
        return internet, scenario

    def test_prefix_blocking_defeated_by_rotation(self, scenario_setup):
        """Section 9's point: /64 blocklists rot as prefixes rotate."""
        internet, scenario = scenario_setup
        evaluator = BlocklistEvaluator(internet, block_plen=64)
        outcome = evaluator.evaluate(scenario, BlockPolicy.PREFIX)
        assert outcome.block_rate < 0.3

    def test_iid_blocking_survives_rotation(self, scenario_setup):
        internet, scenario = scenario_setup
        evaluator = BlocklistEvaluator(internet)
        outcome = evaluator.evaluate(scenario, BlockPolicy.IID)
        assert outcome.block_rate > 0.9
        assert outcome.collateral_rate < 0.05

    def test_asn_blocking_blunt(self, scenario_setup):
        internet, scenario = scenario_setup
        evaluator = BlocklistEvaluator(internet)
        outcome = evaluator.evaluate(scenario, BlockPolicy.ASN)
        assert outcome.block_rate == 1.0
        assert outcome.collateral_rate == 1.0  # everyone in the AS blocked

    def test_block_plen_validation(self, scenario_setup):
        internet, _scenario = scenario_setup
        with pytest.raises(ValueError):
            BlocklistEvaluator(internet, block_plen=8)

    def test_metrics_require_flows(self):
        from repro.core.blocklist import BlocklistOutcome
        outcome = BlocklistOutcome(policy=BlockPolicy.PREFIX)
        with pytest.raises(ValueError):
            outcome.block_rate
        with pytest.raises(ValueError):
            outcome.collateral_rate
