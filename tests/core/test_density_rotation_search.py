"""Tests for density classification, rotation detection, and search-space math."""

import random

import pytest

from repro.core.density import DensityClass, classify_density
from repro.core.rotation_detect import detect_rotating_prefixes, rotating_asns
from repro.core.search_space import (
    SearchSpaceBound,
    expected_probes_to_hit,
    probes_to_sweep,
    sweep_seconds,
)
from repro.net.addr import Prefix, with_iid
from repro.net.eui64 import mac_to_eui64_iid
from repro.net.icmpv6 import IcmpType, ProbeResponse
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, ScanResult, Zmap6

P48 = Prefix.parse("2001:db8::/48")
EUI_A = mac_to_eui64_iid(0x3810D5AA0001)
EUI_B = mac_to_eui64_iid(0x3810D5AA0002)


def response(target, source, t=0.0):
    return ProbeResponse(target=target, source=source,
                         icmp_type=IcmpType.DEST_UNREACHABLE, code=1, time=t)


class TestDensity:
    def test_high_density(self):
        responses = [
            response(P48.network + i, with_iid(0x100 + i, EUI_A + i)) for i in range(10)
        ]
        report = classify_density(P48, 256, responses)
        assert report.classification is DensityClass.HIGH
        assert report.unique_eui64 == 10
        assert report.density == pytest.approx(10 / 256)

    def test_low_density_single_device(self):
        """A /48 delegated whole to one device answers every probe from
        one address: unique-EUI density 1/256 < 0.01."""
        source = with_iid(0x100, EUI_A)
        responses = [response(P48.network + i, source) for i in range(256)]
        report = classify_density(P48, 256, responses)
        assert report.classification is DensityClass.LOW
        assert report.unique_eui64 == 1

    def test_two_responders_still_low(self):
        responses = [
            response(P48.network, with_iid(0x100, EUI_A)),
            response(P48.network + 1, with_iid(0x200, EUI_B)),
        ]
        report = classify_density(P48, 256, responses)
        assert report.classification is DensityClass.LOW

    def test_three_responders_high(self):
        responses = [
            response(P48.network + i, with_iid(0x100 * (i + 1), EUI_A + i))
            for i in range(3)
        ]
        assert classify_density(P48, 256, responses).classification is DensityClass.HIGH

    def test_unresponsive(self):
        report = classify_density(P48, 256, [])
        assert report.classification is DensityClass.UNRESPONSIVE
        assert report.density == 0.0

    def test_non_eui_responses_do_not_count(self):
        responses = [response(P48.network + i, with_iid(0x100 + i, 0x1234 + i))
                     for i in range(20)]
        report = classify_density(P48, 256, responses)
        assert report.unique_eui64 == 0
        # responsive but not EUI-dense -> low, not unresponsive
        assert report.classification is DensityClass.LOW

    def test_probe_count_validation(self):
        with pytest.raises(ValueError):
            classify_density(P48, 0, [])

    def test_describe(self):
        report = classify_density(P48, 256, [])
        assert "unresponsive" in report.describe()


def scan_result(responses):
    result = ScanResult(probes_sent=len(responses))
    result.responses = list(responses)
    return result


class TestRotationDetect:
    def test_changed_pair_flags_prefix(self):
        target = P48.network + 7
        first = scan_result([response(target, with_iid(0x100, EUI_A))])
        second = scan_result([response(target, with_iid(0x100, EUI_B))])
        detection = detect_rotating_prefixes(first, second)
        assert detection.n_rotating == 1
        assert P48 in detection.rotating_prefixes

    def test_stable_pair_not_flagged(self):
        target = P48.network + 7
        snap = scan_result([response(target, with_iid(0x100, EUI_A))])
        detection = detect_rotating_prefixes(snap, scan_result(snap.responses))
        assert detection.n_rotating == 0
        assert detection.stable_pairs == 1

    def test_eui_to_nothing_flags(self):
        target = P48.network + 7
        first = scan_result([response(target, with_iid(0x100, EUI_A))])
        detection = detect_rotating_prefixes(first, scan_result([]))
        assert detection.n_rotating == 1

    def test_nothing_to_eui_flags(self):
        target = P48.network + 7
        second = scan_result([response(target, with_iid(0x100, EUI_A))])
        detection = detect_rotating_prefixes(scan_result([]), second)
        assert detection.n_rotating == 1

    def test_non_eui_changes_ignored(self):
        target = P48.network + 7
        first = scan_result([response(target, with_iid(0x100, 0x1))])
        second = scan_result([response(target, with_iid(0x100, 0x2))])
        detection = detect_rotating_prefixes(first, second)
        assert detection.n_rotating == 0

    def test_rotating_asns_counting(self):
        targets = [P48.network + 1, Prefix.parse("2001:db9::/48").network + 1]
        first = scan_result([response(t, with_iid(0x100, EUI_A)) for t in targets])
        second = scan_result([response(t, with_iid(0x200, EUI_B)) for t in targets])
        detection = detect_rotating_prefixes(first, second)
        counts = rotating_asns(
            detection,
            lambda addr: 8881 if addr < Prefix.parse("2001:db9::/48").network else 6799,
        )
        assert counts == {8881: 1, 6799: 1}

    def test_end_to_end_on_rotator(self, rotating_internet):
        provider = rotating_internet.providers[0]
        pool = provider.pools[0]
        rng = random.Random(2)
        targets = one_target_per_subnet(pool.prefix, 56, rng)
        scanner = Zmap6(rotating_internet, ScanConfig(seed=4))
        snap_a = scanner.scan(targets, start_seconds=12 * 3600.0)
        snap_b = scanner.scan(targets, start_seconds=36 * 3600.0)
        detection = detect_rotating_prefixes(snap_a, snap_b)
        assert pool.prefix in detection.rotating_prefixes

    def test_end_to_end_on_static(self, static_internet):
        provider = static_internet.providers[0]
        pool = provider.pools[0]
        rng = random.Random(2)
        targets = one_target_per_subnet(pool.prefix, 64, rng)
        scanner = Zmap6(static_internet, ScanConfig(seed=4))
        snap_a = scanner.scan(targets, start_seconds=12 * 3600.0)
        snap_b = scanner.scan(targets, start_seconds=36 * 3600.0)
        detection = detect_rotating_prefixes(snap_a, snap_b)
        assert detection.n_rotating == 0


class TestSearchSpace:
    def test_probes_to_sweep(self):
        assert probes_to_sweep(48, 64) == 65536
        assert probes_to_sweep(48, 56) == 256
        assert probes_to_sweep(46, 56) == 1024
        assert probes_to_sweep(64, 64) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            probes_to_sweep(56, 48)
        with pytest.raises(ValueError):
            probes_to_sweep(48, 65)

    def test_expected_probes(self):
        assert expected_probes_to_hit(46, 64) == pytest.approx((2**18 + 1) / 2)

    def test_paper_example_thirteen_seconds(self):
        """Figure 2's worked example: /46 pool of /64s at 10kpps ~ 13 s
        for the expected half-sweep."""
        expected = expected_probes_to_hit(46, 64)
        assert sweep_seconds(int(expected), 10_000.0) == pytest.approx(13.1, abs=0.2)

    def test_sweep_seconds_validation(self):
        with pytest.raises(ValueError):
            sweep_seconds(100, 0)

    def test_bound_reduction(self):
        bound = SearchSpaceBound(bgp_plen=32, pool_plen=46, allocation_plen=56)
        assert bound.naive_probes == 2**32
        assert bound.reduced_probes == 2**10
        assert bound.reduction_factor == 2**22
        assert bound.seconds_at(10_000.0) == pytest.approx(0.1024)
        assert bound.naive_seconds_at(10_000.0) > 4e5

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            SearchSpaceBound(bgp_plen=48, pool_plen=46, allocation_plen=56)
        with pytest.raises(ValueError):
            SearchSpaceBound(bgp_plen=32, pool_plen=46, allocation_plen=44)

    def test_entel_efficiency_claim(self):
        """Section 3.2.1: knowing Entel allocates /56s cuts probing cost
        by 99.6% versus per-/64."""
        naive = probes_to_sweep(48, 64)
        informed = probes_to_sweep(48, 56)
        assert 1 - informed / naive == pytest.approx(0.996, abs=0.001)

    def test_describe(self):
        bound = SearchSpaceBound(bgp_plen=32, pool_plen=46, allocation_plen=56)
        text = bound.describe()
        assert "1024" in text and "/46" in text
