"""Tests for the Section 4 pipeline and Section 5 campaign."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.pipeline import DiscoveryPipeline, PipelineConfig
from repro.net.addr import Prefix
from repro.simnet.builder import InternetSpec, PoolSpec, ProviderSpec, build_internet
from repro.simnet.internet import SimInternet
from repro.simnet.rotation import IncrementRotation, NoRotation


ALWAYS_ANSWER = (("admin_prohibited", 1.0),)


def pipeline_internet() -> SimInternet:
    """Three providers: a daily rotator, a non-rotator, a low-density AS.

    Fully online, no silent devices, high occupancy -- so the pipeline's
    stage outcomes are exact rather than probabilistic.
    """
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001, name="Rotator", country="DE",
                pools=(PoolSpec(46, 56, 1.0, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 1.0),),
                eui64_fraction=1.0, online_fraction=1.0,
                new_since_seed_fraction=0.0, retired_fraction=0.0,
                response_mix=ALWAYS_ANSWER,
            ),
            ProviderSpec(
                asn=65002, name="Static", country="JP",
                pools=(PoolSpec(48, 56, 1.0, NoRotation()),),
                vendor_mix=(("Sercomm", 1.0),),
                eui64_fraction=1.0, online_fraction=1.0,
                new_since_seed_fraction=0.0, retired_fraction=0.0,
                response_mix=ALWAYS_ANSWER,
            ),
            ProviderSpec(
                asn=65003, name="LowDensity", country="TW",
                pools=(PoolSpec(44, 48, 0.5, NoRotation()),),
                vendor_mix=(("Zyxel", 1.0),),
                eui64_fraction=1.0, online_fraction=1.0,
                new_since_seed_fraction=0.0, retired_fraction=0.0,
                response_mix=ALWAYS_ANSWER,
            ),
        ),
        seed=11,
    )
    return build_internet(spec)


@pytest.fixture(scope="module")
def pipeline_result():
    internet = pipeline_internet()
    pipeline = DiscoveryPipeline(internet, PipelineConfig(seed=11, coverage_48s=32))
    return internet, pipeline.run()


class TestPipeline:
    def test_seed_finds_occupied_48s(self, pipeline_result):
        internet, result = pipeline_result
        assert result.seed_48s
        assert len(result.seed_32s) == 3  # all three providers seeded

    def test_seed_48s_have_eui_cpe(self, pipeline_result):
        internet, result = pipeline_result
        for prefix48 in result.seed_48s:
            entry = internet.pool_of(prefix48.network)
            assert entry is not None

    def test_expansion_covers_rotator_pool(self, pipeline_result):
        internet, result = pipeline_result
        rotator_pool = internet.provider_of_asn(65001).pools[0]
        expanded_in_pool = {
            p for p in result.expanded_48s if rotator_pool.prefix.contains_prefix(p)
        }
        assert len(expanded_in_pool) == 4  # all four /48s of the /46

    def test_density_classification(self, pipeline_result):
        internet, result = pipeline_result
        low_density_pool = internet.provider_of_asn(65003).pools[0]
        flagged_low = {
            p for p in result.low_density_48s if low_density_pool.prefix.contains_prefix(p)
        }
        assert flagged_low  # /48-per-device prefixes classified low
        assert result.high_density_48s

    def test_rotation_detection_flags_rotator(self, pipeline_result):
        internet, result = pipeline_result
        rotator_pool = internet.provider_of_asn(65001).pools[0]
        rotating_in_pool = {
            p for p in result.rotating_48s if rotator_pool.prefix.contains_prefix(p)
        }
        assert len(rotating_in_pool) == 4

    def test_static_provider_not_flagged(self, pipeline_result):
        internet, result = pipeline_result
        static_pool = internet.provider_of_asn(65002).pools[0]
        rotating_in_static = {
            p for p in result.rotating_48s if static_pool.prefix.contains_prefix(p)
        }
        assert not rotating_in_static  # fully online + static = no churn signal

    def test_table1_attribution(self, pipeline_result):
        internet, result = pipeline_result
        by_asn = result.rotating_by_asn(internet.rib.origin_of)
        assert by_asn.get(65001) == 4
        by_country = result.rotating_by_country(
            internet.rib.origin_of, internet.registry.country_of
        )
        assert by_country.get("DE") == 4

    def test_summary_counters(self, pipeline_result):
        internet, result = pipeline_result
        summary = result.summary()
        assert summary["probes_sent"] == result.probes_sent > 0
        assert summary["unique_eui64_iids"] > 0
        assert summary["eui64_addresses"] >= summary["unique_eui64_iids"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(coverage_48s=0)
        with pytest.raises(ValueError):
            PipelineConfig(snapshot_a_hour=10.0, snapshot_b_hour=20.0)


class TestCampaign:
    @pytest.fixture(scope="class")
    def setup(self):
        internet = pipeline_internet()
        pool = internet.provider_of_asn(65001).pools[0]
        prefixes = list(pool.prefix.subnets(48))
        config = CampaignConfig(days=6, start_day=2, seed=5)
        campaign = Campaign(internet, prefixes, config)
        return internet, campaign, campaign.run()

    def test_fixed_targets_across_days(self, setup):
        _internet, campaign, _result = setup
        assert campaign.targets == campaign.targets
        assert len(campaign.targets) == 4 * 256

    def test_run_accounting(self, setup):
        _internet, campaign, result = setup
        assert result.days_run == 6
        assert result.probes_sent == 6 * len(campaign.targets)
        assert result.targets_per_day == len(campaign.targets)

    def test_all_devices_observed_every_day(self, setup):
        internet, _campaign, result = setup
        pool = internet.provider_of_asn(65001).pools[0]
        for day in range(2, 8):
            day_iids = {o.source_iid for o in result.store.on_day(day) if o.is_eui64}
            assert len(day_iids) == pool.n_customers

    def test_rotation_visible_in_store(self, setup):
        internet, _campaign, result = setup
        summary = result.summary()
        # Daily rotation: every device appears at 6 distinct addresses but
        # keeps one IID.
        assert summary["unique_eui64_addresses"] == 6 * summary["unique_eui64_iids"]

    def test_validation(self):
        internet = pipeline_internet()
        with pytest.raises(ValueError):
            Campaign(internet, [], CampaignConfig(days=1))
        with pytest.raises(ValueError):
            Campaign(internet, [Prefix.parse("2001:db8::/56")])
        with pytest.raises(ValueError):
            CampaignConfig(days=0)
        with pytest.raises(ValueError):
            CampaignConfig(scan_hour=24.0)

    def test_hourly_mode(self):
        internet = pipeline_internet()
        pool = internet.provider_of_asn(65001).pools[0]
        prefixes = list(pool.prefix.subnets(48))[:1]
        campaign = Campaign(internet, prefixes, CampaignConfig(days=6, start_day=2, seed=5))
        result = campaign.run_hourly(days=2, start_day=10)
        assert result.days_run == 2
        assert result.probes_sent == 48 * 256
        hours_seen = {round(o.t_seconds / 3600.0) for o in result.store}
        assert len(hours_seen) == 48
