"""Tests for the Section 6 tracker and Section 5.5 pathology analyses."""

import pytest

from repro.core.pathology import analyze_pathologies
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.tracker import AsProfile, DeviceTracker, TrackerConfig
from repro.net.addr import IID_BITS, Prefix, with_iid
from repro.net.eui64 import mac_to_eui64_iid
from repro.simnet.device import CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation, NoRotation


def build_internet() -> SimInternet:
    rot_pool = RotationPool(
        prefix=Prefix.parse("2001:db8::/46"),
        delegation_plen=56,
        policy=IncrementRotation(interval_hours=24.0),
        pool_key=21,
    )
    for i in range(64):
        rot_pool.add_device(CpeDevice(device_id=100 + i, mac=0x3810D5100000 + i))
    rotator = Provider(
        asn=65001, name="Rotator", country="DE",
        bgp_prefixes=[Prefix.parse("2001:db8::/32")], pools=[rot_pool],
    )
    static_pool = RotationPool(
        prefix=Prefix.parse("2001:dc8::/48"),
        delegation_plen=64,
        policy=NoRotation(),
        pool_key=22,
    )
    for i in range(16):
        static_pool.add_device(CpeDevice(device_id=300 + i, mac=0x3810D5200000 + i))
    static = Provider(
        asn=65002, name="Static", country="JP",
        bgp_prefixes=[Prefix.parse("2001:dc8::/32")], pools=[static_pool],
    )
    return SimInternet([rotator, static], core_answers_unrouted=False)


@pytest.fixture()
def tracked_internet() -> SimInternet:
    return build_internet()


class TestAsProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsProfile(asn=1, allocation_plen=44, pool_plen=46)
        with pytest.raises(ValueError):
            AsProfile(asn=1, allocation_plen=65, pool_plen=46)

    def test_tracker_config_validation(self):
        with pytest.raises(ValueError):
            TrackerConfig(widen_bits=-1)


class TestTracker:
    def make_tracker(self, internet, widen=True) -> DeviceTracker:
        profiles = {
            65001: AsProfile(asn=65001, allocation_plen=56, pool_plen=46),
            65002: AsProfile(asn=65002, allocation_plen=64, pool_plen=48),
        }
        config = TrackerConfig(seed=3, max_widenings=1 if widen else 0)
        return DeviceTracker(internet, profiles, config)

    def test_tracks_rotating_device_every_day(self, tracked_internet):
        pool = tracked_internet.providers[0].pools[0]
        device = pool.devices[5]
        iid = mac_to_eui64_iid(device.mac)
        initial = pool.wan_address_of(5, 12.0)
        tracker = self.make_tracker(tracked_internet)
        track = tracker.track(iid, initial, days=list(range(1, 8)))
        assert track.days_found == 7
        assert track.distinct_net64s == 8  # initial + 7 daily rotations
        assert track.ever_rotated

    def test_found_addresses_are_ground_truth(self, tracked_internet):
        pool = tracked_internet.providers[0].pools[0]
        device = pool.devices[9]
        iid = mac_to_eui64_iid(device.mac)
        initial = pool.wan_address_of(9, 12.0)
        tracker = self.make_tracker(tracked_internet)
        track = tracker.track(iid, initial, days=[1, 2, 3])
        for outcome in track.outcomes:
            assert outcome.found
            t_hours = outcome.day * 24.0 + 13.0
            index = pool.customer_index_of(device.device_id)
            assert outcome.source == pool.wan_address_of(index, t_hours)

    def test_probe_budget_bounded_by_pool_sweep(self, tracked_internet):
        pool = tracked_internet.providers[0].pools[0]
        device = pool.devices[3]
        iid = mac_to_eui64_iid(device.mac)
        initial = pool.wan_address_of(3, 12.0)
        tracker = self.make_tracker(tracked_internet, widen=False)
        track = tracker.track(iid, initial, days=[1])
        assert track.outcomes[0].probes_sent <= 1024  # one /56 sweep of a /46

    def test_static_device_trivially_tracked(self, tracked_internet):
        pool = tracked_internet.providers[1].pools[0]
        device = pool.devices[2]
        iid = mac_to_eui64_iid(device.mac)
        initial = pool.wan_address_of(2, 12.0)
        tracker = self.make_tracker(tracked_internet)
        track = tracker.track(iid, initial, days=[1, 2, 3])
        assert track.days_found == 3
        assert not track.ever_rotated
        assert track.distinct_net64s == 1

    def test_missing_device_not_found(self, tracked_internet):
        pool = tracked_internet.providers[0].pools[0]
        device = pool.devices[4]
        device.active_until_hours = 20.0  # retires before tracking days
        iid = mac_to_eui64_iid(device.mac)
        initial = pool.wan_address_of(4, 12.0)
        tracker = self.make_tracker(tracked_internet)
        track = tracker.track(iid, initial, days=[2, 3])
        assert track.days_found == 0
        # a miss costs the base sweep plus one widened sweep
        assert track.outcomes[0].probes_sent > 1024

    def test_track_many_report(self, tracked_internet):
        pool = tracked_internet.providers[0].pools[0]
        targets = {}
        for i in (0, 1, 2):
            targets[mac_to_eui64_iid(pool.devices[i].mac)] = pool.wan_address_of(i, 12.0)
        tracker = self.make_tracker(tracked_internet)
        report = tracker.track_many(targets, days=[1, 2])
        per_day = report.found_per_day()
        assert per_day == {1: 3, 2: 3}
        changed = report.changed_prefix_per_day()
        same = report.same_prefix_per_day()
        for day in (1, 2):
            assert changed.get(day, 0) + same.get(day, 0) == 3

    def test_profile_missing_raises(self, tracked_internet):
        tracker = DeviceTracker(tracked_internet, profiles={})
        with pytest.raises(ValueError):
            tracker.track(1, Prefix.parse("2001:db8::/64").network + 1, days=[1])

    def test_mean_and_stddev_probes(self, tracked_internet):
        pool = tracked_internet.providers[0].pools[0]
        device = pool.devices[7]
        iid = mac_to_eui64_iid(device.mac)
        tracker = self.make_tracker(tracked_internet)
        track = tracker.track(iid, pool.wan_address_of(7, 12.0), days=[1, 2, 3])
        assert track.mean_probes > 0
        assert track.stddev_probes >= 0


EUI_P = mac_to_eui64_iid(0x3810D5CC0001)
EUI_Q = mac_to_eui64_iid(0x3810D5CC0002)


def observation(day, net64, iid):
    return ProbeObservation(
        day=day, t_seconds=(day * 24 + 12) * 3600.0, target=1,
        source=with_iid(net64, iid),
    )


class TestPathology:
    def asn_of(self, addr):
        # crude mapping by high bits for synthetic observations
        return (addr >> IID_BITS) >> 32

    def test_single_as_iid_not_flagged(self):
        store = ObservationStore()
        for day in range(5):
            store.add(observation(day, (100 << 32) + day, EUI_P))
        report = analyze_pathologies(store, lambda a: self.asn_of(a))
        assert report.n_multi_as == 0
        assert not report.switches

    def test_mac_reuse_detected(self):
        store = ObservationStore()
        for day in range(5):  # same IID in two ASes concurrently
            store.add(observation(day, (100 << 32) + day, EUI_P))
            store.add(observation(day, (200 << 32) + day, EUI_P))
        report = analyze_pathologies(store, lambda a: self.asn_of(a))
        assert EUI_P in report.mac_reuse_iids
        assert report.max_as_spread() == 2

    def test_provider_switch_detected(self):
        store = ObservationStore()
        for day in range(0, 4):
            store.add(observation(day, (100 << 32) + day, EUI_Q))
        for day in range(6, 10):
            store.add(observation(day, (200 << 32) + day, EUI_Q))
        report = analyze_pathologies(store, lambda a: self.asn_of(a))
        assert EUI_Q not in report.mac_reuse_iids
        switches = [s for s in report.switches if s.iid == EUI_Q]
        assert len(switches) == 1
        assert switches[0].from_asn == 100
        assert switches[0].to_asn == 200
        assert switches[0].last_day_old == 3
        assert switches[0].first_day_new == 6

    def test_non_eui_ignored(self):
        store = ObservationStore()
        store.add(observation(0, 100 << 32, 0x1234))
        store.add(observation(0, 200 << 32, 0x1234))
        report = analyze_pathologies(store, lambda a: self.asn_of(a))
        assert report.n_multi_as == 0

    def test_twelve_as_zero_mac(self):
        store = ObservationStore()
        zero_iid = mac_to_eui64_iid(0)
        for asn in range(1, 13):
            store.add(observation(asn % 3, (asn << 32), zero_iid))
        report = analyze_pathologies(store, lambda a: self.asn_of(a))
        assert report.max_as_spread() == 12
