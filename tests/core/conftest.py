"""Shared fixtures: small simulated internets for core-layer tests."""

import pytest

from repro.net.addr import Prefix
from repro.simnet.device import AddressingMode, CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation, NoRotation, ShuffleRotation


def make_provider(
    asn: int,
    bgp: str,
    pool48: str,
    delegation_plen: int,
    policy,
    n_devices: int,
    country: str = "DE",
    mac_base: int = 0x3810D5000000,
    addressing: AddressingMode = AddressingMode.EUI64,
    pool_key: int = 7,
) -> Provider:
    pool = RotationPool(
        prefix=Prefix.parse(pool48),
        delegation_plen=delegation_plen,
        policy=policy,
        pool_key=pool_key,
    )
    for i in range(n_devices):
        pool.add_device(
            CpeDevice(
                device_id=asn * 10_000 + i,
                mac=mac_base + asn * 0x1000 + i,
                addressing=addressing,
            )
        )
    return Provider(
        asn=asn, name=f"AS{asn}", country=country,
        bgp_prefixes=[Prefix.parse(bgp)], pools=[pool],
    )


@pytest.fixture()
def rotating_internet() -> SimInternet:
    """Two providers: a daily /56 increment rotator and a /60 shuffler."""
    a = make_provider(
        65001, "2001:db8::/32", "2001:db8::/48", 56,
        IncrementRotation(interval_hours=24.0), 48, country="DE",
    )
    b = make_provider(
        65002, "2001:db9::/32", "2001:db9::/48", 60,
        ShuffleRotation(interval_hours=24.0), 64, country="GR",
    )
    return SimInternet([a, b], core_answers_unrouted=False)


@pytest.fixture()
def static_internet() -> SimInternet:
    """One provider that never rotates (/64 delegations)."""
    provider = make_provider(
        65010, "2001:dba::/32", "2001:dba::/48", 64, NoRotation(), 40, country="JP",
    )
    return SimInternet([provider], core_answers_unrouted=False)
