"""Stage-isolation tests for the discovery pipeline.

The end-to-end behaviour is covered in test_pipeline_campaign; these
tests drive individual stages with handcrafted preconditions, including
failure injection (silent providers, stale seeds, empty inputs).
"""

from repro.core.density import DensityClass
from repro.core.pipeline import DiscoveryPipeline, PipelineConfig, PipelineResult
from repro.simnet.builder import InternetSpec, PoolSpec, ProviderSpec, build_internet
from repro.simnet.internet import SimInternet
from repro.simnet.rotation import IncrementRotation

ALWAYS = (("admin_prohibited", 1.0),)
SILENT = (("silent", 1.0),)


def one_provider_internet(response_mix=ALWAYS, new_fraction=0.0) -> SimInternet:
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001, name="P", country="DE",
                pools=(PoolSpec(46, 56, 1.0, IncrementRotation(24.0)),),
                eui64_fraction=1.0, online_fraction=1.0,
                new_since_seed_fraction=new_fraction, retired_fraction=0.0,
                response_mix=response_mix,
            ),
        ),
        seed=3,
    )
    return build_internet(spec)


def make_pipeline(internet, **overrides) -> DiscoveryPipeline:
    config = PipelineConfig(seed=3, coverage_48s=32, **overrides)
    return DiscoveryPipeline(internet, config)


class TestSeedStage:
    def test_finds_fully_occupied_pool(self):
        internet = one_provider_internet()
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        assert len(result.seed_32s) == 1
        assert len(result.seed_48s) == 4  # all /48s of the /46

    def test_silent_provider_invisible(self):
        internet = one_provider_internet(response_mix=SILENT)
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        # Silent CPE still answer traceroute? No: trace ends at the CPE
        # only if the device is online; silence policy applies to error
        # generation.  The trace path reveals the WAN hop regardless, so
        # the seed still finds these /48s -- which is faithful: yarrp
        # sees Hop-Limit-Exceeded from hops that would drop Echo probes.
        assert len(result.seed_48s) == 4

    def test_devices_newer_than_seed_unseen(self):
        internet = one_provider_internet(new_fraction=1.0)
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        assert not result.seed_48s  # nobody existed a year ago

    def test_empty_internet(self):
        internet = SimInternet([])
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        assert not result.seed_48s
        assert result.probes_sent == 0


class TestExpansionStage:
    def test_without_seed_is_noop(self):
        internet = one_provider_internet()
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_expansion_stage(result)
        assert not result.expanded_48s
        assert result.probes_sent == 0

    def test_silent_devices_kill_expansion(self):
        """Echo probes into silent-CPE space get nothing back, so the
        stale seed is not revalidated -- the paper's validation step."""
        internet = one_provider_internet(response_mix=SILENT)
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        pipeline.run_expansion_stage(result)
        assert result.seed_48s
        assert not result.expanded_48s


class TestDensityStage:
    def test_reports_cover_expanded_set(self):
        internet = one_provider_internet()
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        pipeline.run_expansion_stage(result)
        pipeline.run_density_stage(result)
        assert set(result.density_reports) == result.expanded_48s
        assert all(
            r.classification is DensityClass.HIGH
            for r in result.density_reports.values()
        )

    def test_threshold_configurable(self):
        internet = one_provider_internet()
        # A fully occupied pool reaches density 1.0; only a threshold
        # above that reclassifies everything as low.
        pipeline = make_pipeline(internet, density_threshold=1.01)
        result = PipelineResult()
        pipeline.run_seed_stage(result)
        pipeline.run_expansion_stage(result)
        pipeline.run_density_stage(result)
        # With an absurd threshold everything is "low density".
        assert not result.high_density_48s
        assert result.low_density_48s == result.expanded_48s


class TestRotationStage:
    def test_without_high_density_is_noop(self):
        internet = one_provider_internet()
        pipeline = make_pipeline(internet)
        result = PipelineResult()
        pipeline.run_rotation_stage(result)
        assert result.detection.n_rotating == 0

    def test_full_run_equivalent_to_stage_sequence(self):
        internet_a = one_provider_internet()
        internet_b = one_provider_internet()
        full = make_pipeline(internet_a).run()
        stepwise = PipelineResult()
        pipeline = make_pipeline(internet_b)
        pipeline.run_seed_stage(stepwise)
        pipeline.run_expansion_stage(stepwise)
        pipeline.run_density_stage(stepwise)
        pipeline.run_rotation_stage(stepwise)
        assert full.rotating_48s == stepwise.rotating_48s
        assert full.summary() == stepwise.summary()


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = make_pipeline(one_provider_internet()).run()
        b = make_pipeline(one_provider_internet()).run()
        assert a.summary() == b.summary()
        assert a.rotating_48s == b.rotating_48s

    def test_different_seed_may_differ_but_valid(self):
        internet = one_provider_internet()
        result = DiscoveryPipeline(
            internet, PipelineConfig(seed=99, coverage_48s=32)
        ).run()
        assert result.summary()["rotating_48s"] == 4  # fully occupied pool
