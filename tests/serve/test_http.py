"""TrackerServer endpoints and snapshot isolation under concurrency.

Endpoint tests run over a real socket (ephemeral port, loopback) via
urllib, so the whole stack -- routing, JSON envelopes, error statuses,
Prometheus exposition -- is exercised exactly as a client sees it.  The
hammering test is the serve layer's core claim: reader threads querying
continuously while the ingest thread appends and republishes never see
torn state, and every response's ``snapshot_version`` is monotonically
non-decreasing per connection.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from _serve_world import corpus, device_iid, origin_of

from repro.obs import Telemetry
from repro.serve import SnapshotPublisher, TrackerServer
from repro.stream.engine import StreamConfig, StreamEngine


@pytest.fixture()
def served(engine):
    telemetry = Telemetry()
    publisher = SnapshotPublisher(engine, telemetry)
    server = TrackerServer(publisher, telemetry)
    url = server.start()
    try:
        yield url, publisher, server
    finally:
        server.stop()


def get_json(url: str, status: int = 200) -> dict:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == status
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        assert error.code == status, f"{url}: {error.code} != {status}"
        return json.loads(error.read())


def test_iid_endpoint_accepts_three_spellings(served):
    url, publisher, _ = served
    iid = device_iid(0)
    for token in (str(iid), hex(iid), f"{iid:x}"):
        payload = get_json(f"{url}/iid/{token}")
        assert payload["iid"] == iid
        assert payload["watched"] is True
        assert payload["sighting"]["day"] == 3
        assert payload["snapshot_version"] == publisher.version


def test_iid_endpoint_rejects_garbage(served):
    url, _, _ = served
    payload = get_json(f"{url}/iid/not-an-iid", status=400)
    assert "error" in payload and "snapshot_version" in payload


def test_rotations_endpoint(served):
    url, _, _ = served
    newest = get_json(f"{url}/rotations")
    assert newest["day"] == 3 and newest["closed"] is True
    assert newest["rotating_prefixes"] == ["2001:db8::/48"]
    explicit = get_json(f"{url}/rotations?day=2")
    assert explicit["day"] == 2 and explicit["closed"] is True
    open_day = get_json(f"{url}/rotations?day=9")
    assert open_day["closed"] is False and open_day["rotating_prefixes"] == []
    bad = get_json(f"{url}/rotations?day=tuesday", status=400)
    assert "error" in bad


def test_profiles_and_stats_endpoints(served):
    url, publisher, server = served
    profiles = get_json(f"{url}/profiles")["profiles"]
    assert profiles and all(
        set(body) == {"allocation_plen", "pool_plen"} for body in profiles.values()
    )
    stats = get_json(f"{url}/stats")
    assert stats["snapshot_version"] == publisher.version
    assert stats["responses"] == publisher.current.responses
    assert stats["requests_served"] >= 1
    assert stats["uptime_seconds"] >= 0


def test_healthz_and_unknown_routes(served):
    url, _, _ = served
    assert get_json(f"{url}/healthz")["status"] == "ok"
    assert "error" in get_json(f"{url}/nope", status=404)


def test_metrics_endpoint_exposes_prometheus_text(served):
    url, _, _ = served
    get_json(f"{url}/healthz")  # ensure at least one counted request
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        body = response.read().decode()
    assert "repro_serve_requests_total" in body
    assert "repro_serve_snapshot_version" in body


def test_metrics_404_without_telemetry(engine):
    server = TrackerServer(SnapshotPublisher(engine))
    url = server.start()
    try:
        assert "error" in get_json(f"{url}/metrics", status=404)
    finally:
        server.stop()


def test_shutdown_post_invokes_callback(engine):
    fired = threading.Event()
    server = TrackerServer(
        SnapshotPublisher(engine), on_shutdown=fired.set
    )
    url = server.start()
    try:
        request = urllib.request.Request(f"{url}/shutdown", method="POST")
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "shutting down"
        assert fired.wait(5)
    finally:
        server.stop()


def test_stop_is_idempotent_and_releases_port(engine):
    server = TrackerServer(SnapshotPublisher(engine))
    url = server.start()
    port = server.port
    server.stop()
    server.stop()  # second stop must not raise
    with pytest.raises(OSError):
        urllib.request.urlopen(f"{url}/healthz", timeout=2)
    # The port is reusable immediately.
    again = TrackerServer(SnapshotPublisher(engine), port=port)
    again.start()
    again.stop()


def test_concurrent_readers_never_see_torn_state():
    """Readers hammer /iid and /rotations while the ingest thread
    appends and republishes: every body must be internally consistent
    and versions per reader monotonically non-decreasing."""
    engine = StreamEngine(
        StreamConfig(keep_observations=False), origin_of=origin_of
    )
    engine.watch(device_iid(0))
    publisher = SnapshotPublisher(engine)
    server = TrackerServer(publisher)
    url = server.start()
    stream = corpus(days=6, devices=8)
    ingest_done = threading.Event()
    failures: list[str] = []

    def reader() -> None:
        iid = device_iid(0)
        last_version = 0
        while not ingest_done.is_set() or last_version < publisher.version:
            sighting = get_json(f"{url}/iid/{iid}")
            rotations = get_json(f"{url}/rotations")
            for body in (sighting, rotations):
                if body["snapshot_version"] < last_version:
                    failures.append(
                        f"version went backwards: {body['snapshot_version']}"
                        f" < {last_version}"
                    )
                    return
                last_version = body["snapshot_version"]
            # Torn-state checks: each body is self-consistent.
            if sighting["watched"] and sighting["sighting"] is not None:
                if sighting["sighting"]["day"] is None:
                    failures.append("watched sighting without a day")
                    return
            if rotations["closed"] != bool(rotations["rotating_prefixes"]):
                failures.append(
                    f"closed={rotations['closed']} with "
                    f"{len(rotations['rotating_prefixes'])} prefixes"
                )
                return
            if last_version >= publisher.version and ingest_done.is_set():
                return

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()
    try:
        for start in range(0, len(stream), 5):
            engine.ingest_batch(stream[start : start + 5])
            publisher.refresh()
        engine.flush()
        publisher.refresh(force=True)
    finally:
        ingest_done.set()
        for thread in readers:
            thread.join(timeout=30)
        server.stop()
    assert not failures, failures
    assert all(not thread.is_alive() for thread in readers)
    assert publisher.version > 1
