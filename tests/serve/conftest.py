"""Shared fixtures for serve-layer tests (world lives in _serve_world.py)."""

import pytest

from _serve_world import build_engine

from repro.stream.engine import StreamEngine


@pytest.fixture()
def engine() -> StreamEngine:
    return build_engine()
