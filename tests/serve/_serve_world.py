"""Deterministic world for serve-layer tests (fixtures in conftest.py).

One corpus generator and one pre-ingested engine builder, so
snapshot/http/daemon tests all exercise identical tracker state and
can assert exact payloads.  The corpus models the serve layer's target
workload: EUI-64 devices moving to a new /64 every day inside a stable
/48, which makes every day a rotation day once two consecutive days
have been diffed.
"""

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.records import ProbeObservation
from repro.net.addr import Prefix
from repro.net.eui64 import mac_to_eui64_iid
from repro.simnet.device import AddressingMode, CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation
from repro.stream.engine import StreamConfig, StreamEngine

NET48 = 0x20010DB8 << 16


def origin_of(address: int) -> int:
    return 64512 + ((address >> 80) % 5)


def device_iid(d: int) -> int:
    return mac_to_eui64_iid(0x3810D5000000 + d)


def device_address(d: int, day: int) -> int:
    net64 = (NET48 << 16) | ((d * 11 + day) % (1 << 16))  # daily move
    return (net64 << 64) | device_iid(d)


def corpus(days: int = 4, devices: int = 6) -> list[ProbeObservation]:
    out = []
    for day in range(days):
        for d in range(devices):
            source = device_address(d, day)
            out.append(
                ProbeObservation(
                    day=day,
                    t_seconds=day * 86_400.0 + d,
                    target=(source >> 64 << 64) | 1,
                    source=source,
                )
            )
    return out


def build_engine(days: int = 4, devices: int = 6, **config) -> StreamEngine:
    """An engine that has ingested *days* full days and watches IID 0."""
    engine = StreamEngine(
        StreamConfig(keep_observations=False, **config), origin_of=origin_of
    )
    engine.watch(device_iid(0))
    engine.ingest_batch(corpus(days=days, devices=devices))
    engine.flush()
    return engine


CAMPAIGN_CONFIG = CampaignConfig(days=4, start_day=1, seed=3)


def build_campaign() -> Campaign:
    """A small single-provider campaign world for daemon tests.

    Deterministic: every call builds an identical world, so a served
    run and an unserved run see identical responses (the daemon tests
    pin their checkpoints byte-identical).
    """
    pool = RotationPool(
        prefix=Prefix.parse("2001:db8::/48"),
        delegation_plen=56,
        policy=IncrementRotation(interval_hours=24.0),
        pool_key=7,
    )
    for i in range(24):
        pool.add_device(
            CpeDevice(
                device_id=65001 * 10_000 + i,
                mac=0x3810D5000000 + i,
                addressing=AddressingMode.EUI64,
            )
        )
    provider = Provider(
        asn=65001,
        name="AS65001",
        country="DE",
        bgp_prefixes=[Prefix.parse("2001:db8::/32")],
        pools=[pool],
    )
    internet = SimInternet([provider], core_answers_unrouted=False)
    return Campaign(internet, [Prefix.parse("2001:db8::/48")], CAMPAIGN_CONFIG)
