"""SnapshotPublisher semantics: versioning, isolation, parity.

The contract the HTTP layer leans on: ``current`` is always a complete
snapshot, versions move forward by exactly one per publication, an
unchanged engine republishes nothing, and a held snapshot is immune to
later ingest.  Parity tests pin snapshot fields against the engine
accessors they mirror, so a drift in either layer fails loudly here
rather than as a subtle serving discrepancy.
"""

import json

import pytest

from _serve_world import (
    build_engine,
    corpus,
    device_address,
    device_iid,
    origin_of,
)

from repro.obs import Telemetry
from repro.serve import SnapshotPublisher
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.parallel import ParallelStreamEngine


def test_initial_snapshot_is_version_one_and_complete(engine):
    publisher = SnapshotPublisher(engine)
    snapshot = publisher.current
    assert snapshot.version == 1
    assert publisher.version == 1
    assert snapshot.responses == engine.responses_ingested
    assert snapshot.current_day == engine.current_day


def test_refresh_bumps_version_by_exactly_one(engine):
    publisher = SnapshotPublisher(engine)
    engine.ingest_batch(corpus(days=5)[len(corpus(days=4)) :])
    engine.flush()
    snapshot = publisher.refresh()
    assert snapshot.version == 2
    assert publisher.current is snapshot


def test_refresh_on_unchanged_engine_republishes_nothing(engine):
    publisher = SnapshotPublisher(engine)
    held = publisher.current
    for _ in range(5):
        assert publisher.refresh() is held
    assert publisher.version == 1


def test_force_refresh_bypasses_signature(engine):
    publisher = SnapshotPublisher(engine)
    assert publisher.refresh(force=True).version == 2
    assert publisher.refresh(force=True).version == 3


def test_min_interval_rate_limits_rebuilds(engine):
    ticks = iter([0.0, 1.0, 12.0, 12.5])
    publisher = SnapshotPublisher(
        engine, min_interval=10.0, clock=lambda: next(ticks)
    )
    engine.ingest_batch(corpus(days=5)[len(corpus(days=4)) :])
    engine.flush()
    assert publisher.refresh().version == 1  # inside the interval: stale
    assert publisher.refresh().version == 2  # elapsed: rebuilt
    assert publisher.version == 2


def test_held_snapshot_is_isolated_from_later_ingest(engine):
    publisher = SnapshotPublisher(engine)
    held = publisher.current
    before = (
        held.responses,
        dict(held.sightings),
        {day: prefixes for day, prefixes in held.rotations_by_day.items()},
        set(held.rotating_prefixes),
    )
    engine.ingest_batch(corpus(days=6)[len(corpus(days=4)) :])
    engine.flush()
    publisher.refresh()
    assert held.responses == before[0]
    assert dict(held.sightings) == before[1]
    assert dict(held.rotations_by_day) == before[2]
    assert set(held.rotating_prefixes) == before[3]


def test_snapshot_mappings_are_immutable(engine):
    snapshot = SnapshotPublisher(engine).current
    with pytest.raises(TypeError):
        snapshot.profiles[65000] = None
    with pytest.raises(TypeError):
        snapshot.sightings[1] = (0, 0, 0.0)
    with pytest.raises(Exception):  # frozen dataclass
        snapshot.version = 99


def test_snapshot_parity_with_engine_accessors(engine):
    snapshot = SnapshotPublisher(engine).current
    assert snapshot.profiles.keys() == engine.as_profiles().keys()
    assert snapshot.unique_addresses == engine.unique_sources()
    assert snapshot.unique_eui64_addresses == engine.unique_eui64_sources()
    assert snapshot.changed_pairs == len(engine.live_detection.changed_pairs)
    assert snapshot.rotating_prefixes == engine.live_detection.rotating_prefixes
    assert set(snapshot.rotations_by_day) == set(engine.rotation_days)
    for day, prefixes in engine.rotation_days.items():
        assert set(snapshot.rotations_by_day[day]) == prefixes
    iid = device_iid(0)
    sighting = engine.last_sighting(iid)
    assert snapshot.iid_location(iid) == (
        sighting.source,
        sighting.day,
        sighting.t_seconds,
    )


def test_daily_movers_attributed_to_every_close(engine):
    # 4 ingested (and flushed) days with daily /64 moves: day N's close
    # diffs N-1 vs N, so days 1..3 each attribute the shared /48; day 0
    # has no earlier day to diff against.
    snapshot = SnapshotPublisher(engine).current
    assert set(snapshot.rotations_by_day) == {1, 2, 3}
    for day in (1, 2, 3):
        assert snapshot.rotations_on(day), f"day {day} should attribute the /48"
    assert snapshot.newest_rotation_day() == 3
    assert snapshot.rotations_on(0) is None


def test_payload_shapes(engine):
    snapshot = SnapshotPublisher(engine).current
    iid = device_iid(0)
    payload = snapshot.iid_payload(iid)
    assert payload["watched"] is True
    assert payload["iid_hex"] == f"{iid:016x}"
    assert payload["sighting"]["day"] == 3
    assert payload["snapshot_version"] == snapshot.version
    assert snapshot.iid_payload(0xDEAD)["sighting"] is None

    rotations = snapshot.rotations_payload(None)
    assert rotations["day"] == 3 and rotations["closed"] is True
    assert rotations["rotating_prefixes"] == ["2001:db8::/48"]
    assert snapshot.rotations_payload(4)["closed"] is False
    assert snapshot.rotations_payload(4)["rotating_prefixes"] == []

    profiles = snapshot.profiles_payload()["profiles"]
    assert profiles  # at least one AS profiled
    for body in profiles.values():
        assert set(body) == {"allocation_plen", "pool_plen"}
    json.dumps(snapshot.stats())  # stats must be JSON-clean


def test_refresh_never_perturbs_checkpoint_state():
    """Serving an engine mid-stream leaves its checkpoint bytes exactly
    as an unserved twin's -- refreshes materialize but never mutate."""
    stream = corpus(days=5)

    def fresh() -> StreamEngine:
        engine = StreamEngine(
            StreamConfig(keep_observations=False), origin_of=origin_of
        )
        engine.watch(device_iid(0))
        return engine

    baseline, served = fresh(), fresh()
    publisher = SnapshotPublisher(served)
    for start in range(0, len(stream), 7):
        chunk = stream[start : start + 7]
        baseline.ingest_batch(chunk)
        served.ingest_batch(chunk)
        publisher.refresh()
    baseline.flush()
    served.flush()
    publisher.refresh(force=True)
    assert json.dumps(engine_state(served)) == json.dumps(engine_state(baseline))


def test_rebind_same_engine_is_noop(engine):
    publisher = SnapshotPublisher(engine)
    publisher.refresh()
    signature = publisher._signature
    publisher.rebind(engine)
    assert publisher._signature == signature  # no forced rebuild
    other = build_engine(days=2)
    publisher.rebind(other)
    assert publisher._signature is None
    assert publisher.refresh().responses == other.responses_ingested


def test_publisher_over_parallel_engine():
    parallel = ParallelStreamEngine(
        StreamConfig(keep_observations=False),
        origin_of=origin_of,
        num_workers=2,
        batch_rows=16,
    )
    try:
        parallel.watch(device_iid(0))
        publisher = SnapshotPublisher(parallel)
        for observation in corpus(days=3):
            parallel.ingest(observation)
        parallel.flush()
        snapshot = publisher.refresh()
        assert snapshot.version == 2
        assert snapshot.responses == parallel.responses_ingested
        assert set(snapshot.rotations_by_day) == {1, 2}
        reference = build_engine(days=3)
        assert snapshot.profiles.keys() == reference.as_profiles().keys()
        assert snapshot.rotating_prefixes == (
            reference.live_detection.rotating_prefixes
        )
    finally:
        parallel.close()


def test_publisher_telemetry_instruments(engine):
    telemetry = Telemetry()
    publisher = SnapshotPublisher(engine, telemetry)
    publisher.refresh(force=True)
    snap = telemetry.snapshot()
    assert snap["gauges"]["repro_serve_snapshot_version"] == 2
    assert snap["counters"]["repro_serve_snapshot_refreshes_total"] == 2
    assert (
        snap["histograms"]["repro_serve_snapshot_refresh_seconds"]["count"] == 2
    )


def test_watch_sighting_address_tracks_the_daily_move(engine):
    snapshot = SnapshotPublisher(engine).current
    payload = snapshot.iid_payload(device_iid(0))
    from repro.net.addr import parse_addr

    assert parse_addr(payload["sighting"]["address"]) == device_address(0, 3)
