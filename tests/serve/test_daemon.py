"""TrackerDaemon lifecycle: ingest-while-serving, shutdown, durability.

The daemon's contract in four parts: a full run serves queries during
real ingest and stops clean; ``POST /shutdown`` (or :meth:`shutdown`)
stops at the next day boundary with a loadable final checkpoint; a
served run's checkpoint is byte-identical to an unserved run's; and a
finished daemon lingers only as long as asked.  Everything binds
ephemeral loopback ports and runs the campaign worlds from
``_serve_world`` (seconds, not minutes).
"""

import json
import threading
import time
import urllib.error
import urllib.request

from _serve_world import build_campaign

from repro.obs import Telemetry
from repro.obs.events import read_events
from repro.serve import TrackerDaemon
from repro.stream.campaign import StreamingCampaign


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def wait_for_server(url: str, deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            get_json(f"{url}/healthz")
            return
        except OSError:
            time.sleep(0.02)
    raise AssertionError(f"server at {url} never came up")


def test_daemon_serves_during_ingest_and_stops_clean(tmp_path):
    events_path = tmp_path / "events.jsonl"
    telemetry = Telemetry(event_path=events_path)
    streaming = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "ck.json",
        telemetry=telemetry,
    )
    daemon = TrackerDaemon(streaming)
    versions: list[int] = []
    done = threading.Event()

    def query() -> None:
        wait_for_server(daemon.url)
        while not done.is_set():
            try:
                stats = get_json(f"{daemon.url}/stats")
                rotations = get_json(f"{daemon.url}/rotations")
            except OSError:
                break  # server stopped between checks
            versions.append(stats["snapshot_version"])
            versions.append(rotations["snapshot_version"])

    reader = threading.Thread(target=query)
    reader.start()
    try:
        daemon.run()
    finally:
        done.set()
        reader.join(timeout=30)
    assert not reader.is_alive()
    assert streaming.finished
    assert daemon.days_served == streaming.campaign.config.days
    # Readers overlapped ingest; versions never went backwards.
    assert versions
    assert versions == sorted(versions)
    # The final checkpoint resumes to a finished campaign.
    resumed = StreamingCampaign.resume(build_campaign(), tmp_path / "ck.json")
    assert resumed.finished
    # Lifecycle events bracket the run.
    telemetry.close()
    names = [event["event"] for event in read_events(events_path)]
    assert names[0] == "serve_start"
    assert names[-1] == "serve_stop"
    assert "campaign_finished" in names
    stop = read_events(events_path)[-1]
    assert stop["finished"] is True
    assert stop["snapshot_version"] >= daemon.days_served
    # The server is down.
    try:
        get_json(f"{daemon.url}/healthz")
        raise AssertionError("server still answering after stop")
    except OSError:
        pass


def test_post_shutdown_stops_at_day_boundary_with_checkpoint(tmp_path):
    # Pinned to the JSON oracle: this test asserts raw byte identity,
    # which only the canonical format guarantees under any cadence
    # (the binary state test below covers the other format).
    streaming = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "ck.json",
        checkpoint_format="json",
    )
    daemon = TrackerDaemon(streaming)
    # Stop after the first completed day, through the same hook the
    # daemon uses for refreshes.
    day_hook = streaming.on_day_complete

    def stop_after_first_day(day: int) -> None:
        day_hook(day)
        request = urllib.request.Request(
            f"{daemon.url}/shutdown", method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert json.loads(response.read())["status"] == "shutting down"

    streaming.on_day_complete = stop_after_first_day
    daemon.run()
    assert daemon.shutdown_requested
    assert not streaming.finished
    assert streaming.result.days_run == 1
    # The interrupted run resumes and finishes; its final checkpoint is
    # byte-identical to an uninterrupted unserved run's.
    resumed = StreamingCampaign.resume(
        build_campaign(), tmp_path / "ck.json", checkpoint_format="json"
    )
    resumed.run()
    assert resumed.finished
    clean = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "clean.json",
        checkpoint_format="json",
    )
    clean.run()
    assert (tmp_path / "ck.json").read_bytes() == (
        tmp_path / "clean.json"
    ).read_bytes()


def test_served_checkpoint_byte_identical_to_unserved(tmp_path):
    # JSON oracle again: byte identity is the point of this test.
    served = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "served.json",
        checkpoint_format="json",
    )
    TrackerDaemon(served).run()
    unserved = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "unserved.json",
        checkpoint_format="json",
    )
    unserved.run()
    assert (tmp_path / "served.json").read_bytes() == (
        tmp_path / "unserved.json"
    ).read_bytes()


def test_served_binary_checkpoint_state_identical(tmp_path):
    """Binary files accrue delta segments per write, and the daemon's
    day-at-a-time cadence writes more of them than one uninterrupted
    run -- so the pin is on the state read back, not the file bytes
    (the JSON test above covers byte identity)."""
    from repro.stream.ckptbin import read_state

    served = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "served.ckpt",
        checkpoint_every=1,
        checkpoint_format="binary",
    )
    TrackerDaemon(served).run()
    unserved = StreamingCampaign(
        build_campaign(),
        checkpoint_path=tmp_path / "unserved.ckpt",
        checkpoint_every=1,
        checkpoint_format="binary",
    )
    unserved.run()
    assert json.dumps(
        read_state(tmp_path / "served.ckpt"), sort_keys=True
    ) == json.dumps(read_state(tmp_path / "unserved.ckpt"), sort_keys=True)


def test_finished_daemon_lingers_until_shutdown(tmp_path):
    # Ingest (and the campaign's store) stays on this thread -- the
    # daemon's contract, and what the sqlite store leg requires.  A
    # helper thread watches the linger window and posts the shutdown.
    streaming = StreamingCampaign(
        build_campaign(), checkpoint_path=tmp_path / "ck.json"
    )
    daemon = TrackerDaemon(streaming)
    observed: dict = {}
    failures: list[Exception] = []

    def poke() -> None:
        try:
            wait_for_server(daemon.url)
            deadline = time.monotonic() + 60
            while not streaming.finished and time.monotonic() < deadline:
                time.sleep(0.02)
            observed["finished_while_serving"] = streaming.finished
            stats = get_json(f"{daemon.url}/stats")
            observed["responses"] = stats["responses"]
            request = urllib.request.Request(
                f"{daemon.url}/shutdown", method="POST"
            )
            urllib.request.urlopen(request, timeout=10).read()
        except Exception as exc:  # surfaced by the main-thread asserts
            failures.append(exc)
            daemon.shutdown()  # never leave the main thread lingering

    poker = threading.Thread(target=poke, daemon=True)
    poker.start()
    daemon.run(linger=60.0)
    poker.join(timeout=30)
    assert not failures, failures
    # The run ended on the posted shutdown, not the linger timeout: the
    # campaign had already finished while the server still answered.
    assert daemon.shutdown_requested
    assert observed["finished_while_serving"] is True
    assert observed["responses"] == streaming.live_engine.responses_ingested


def test_finished_daemon_linger_times_out(tmp_path):
    streaming = StreamingCampaign(
        build_campaign(), checkpoint_path=tmp_path / "ck.json"
    )
    daemon = TrackerDaemon(streaming)
    daemon.run(linger=0.1)  # no shutdown request: returns on its own
    assert streaming.finished
    assert not daemon.shutdown_requested


def test_daemon_without_checkpoint_path(tmp_path):
    streaming = StreamingCampaign(build_campaign())
    daemon = TrackerDaemon(streaming)
    daemon.run()
    assert streaming.finished
    assert daemon.publisher.version >= 1
