"""Schema check for the committed BENCH_stream.json.

The benchmark file is the cross-PR perf record; CI re-validates it both
as committed (here, in tier-1) and after regenerating it in the bench
job.  The contract: one git rev stamps the whole file (sections never
mix revisions), and every throughput figure is a positive number.
"""

import json
import numbers
from pathlib import Path

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

# Top-level metadata keys; everything else is a benchmark section.
META_KEYS = {"git_rev", "cpu_count", "python"}
# At minimum these sections must be present and well-formed.
REQUIRED_SECTIONS = {"engine_batch_ingest", "stream_vs_batch"}


def _walk(node, path=""):
    yield path, node
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _walk(value, f"{path}.{key}" if path else key)


def validate_bench(data: dict) -> None:
    """Assert the BENCH_stream.json contract on parsed *data*."""
    assert isinstance(data, dict), "bench file must hold one JSON object"
    rev = data.get("git_rev")
    assert isinstance(rev, str) and rev.strip(), "sections must carry a git rev"
    assert isinstance(data.get("cpu_count"), int) and data["cpu_count"] > 0
    assert isinstance(data.get("python"), str) and data["python"]

    sections = {k: v for k, v in data.items() if k not in META_KEYS}
    assert REQUIRED_SECTIONS <= set(sections), (
        f"missing sections: {REQUIRED_SECTIONS - set(sections)}"
    )
    for name, section in sections.items():
        assert isinstance(section, dict), f"section {name!r} must be an object"
        for path, value in _walk(section, name):
            leaf = path.rsplit(".", 1)[-1]
            if leaf.endswith("_per_s") or leaf == "speedup":
                assert isinstance(value, numbers.Real) and value > 0, (
                    f"{path} must be a positive number, got {value!r}"
                )
            elif leaf in ("responses", "lookups"):
                assert isinstance(value, int) and value > 0, (
                    f"{path} must be a positive count, got {value!r}"
                )
            elif leaf.endswith("seconds"):
                assert isinstance(value, numbers.Real) and value >= 0, (
                    f"{path} must be a non-negative duration, got {value!r}"
                )


def test_committed_bench_file_matches_schema():
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    validate_bench(json.loads(BENCH_JSON.read_text()))
