"""Schema and regression checks for the committed BENCH_stream.json.

The benchmark file is the cross-PR perf record; CI re-validates it both
as committed (here, in tier-1) and after regenerating it in the bench
job.  The contract: one git rev stamps the whole file (sections never
mix revisions), and every throughput figure is a positive number.

The regression gate compares the working-tree file's key throughput
figures against a baseline -- ``$BENCH_BASELINE_JSON`` when set (the
bench CI job points it at the committed copy it saved before
regenerating), otherwise ``git show HEAD:BENCH_stream.json`` -- and
fails on a >30% drop.  On an unmodified checkout the comparison is
trivially against itself, so tier-1 stays green locally while a bench
regeneration on the same host gets a real check.
"""

import json
import numbers
import os
import subprocess
from pathlib import Path

import pytest

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

# Top-level metadata keys; everything else is a benchmark section.
META_KEYS = {"git_rev", "cpu_count", "python"}
# At minimum these sections must be present and well-formed.
REQUIRED_SECTIONS = {
    "engine_batch_ingest",
    "stream_vs_batch",
    "columnar_ingest",
    "store_backends",
    "telemetry_overhead",
    "checkpoint",
    "serve_queries",
    "replication",
}

# Enabled-telemetry cost cap on the columnar ingest path: the recorded
# overhead may go slightly negative (timer noise) but must never exceed
# this, on any host -- instrumentation is batch-granular by design.
TELEMETRY_OVERHEAD_CAP_PCT = 5.0

# Absolute binary-checkpoint bars (design properties, like the
# telemetry cap): a binary full save must be >= 3x faster than the
# canonical JSON save, and a one-dirty-shard delta segment must cost
# <= 25% of the full segment's bytes.
CHECKPOINT_SPEEDUP_FLOOR = 3.0
CHECKPOINT_DELTA_CAP_PCT = 25.0

# Serving cost cap: sustained concurrent queries (paced readers against
# the snapshot HTTP API) may not cost the columnar ingest path more
# than this -- reads come off published snapshots, never engine locks.
SERVE_INGEST_OVERHEAD_CAP_PCT = 15.0

# Replication cost cap: shipping every checkpoint segment to one live
# warm standby may not cost the primary process more than this much of
# its own CPU time on the ingest-and-checkpoint path -- a ship is a
# byte-range read plus a bounded async enqueue, never a
# re-serialization (and with no shipper attached the cost is
# structurally zero, not merely small).  CPU time, not wall-clock: the
# bench records wall figures too, but on a single-core runner the
# standby's recv is forced into the primary's wall-clock by sendall
# backpressure, a cost the primary never bears once the standby has
# its own core or machine.
REPLICATION_OVERHEAD_CAP_PCT = 10.0

# Throughput figures the regression gate tracks (dotted paths), and how
# much of a drop versus the baseline is tolerated before CI fails.  The
# speedup entry is a within-run ratio, so it stays meaningful even when
# the baseline was recorded on different hardware; the 30% tolerance on
# the absolute figures absorbs ordinary cross-host and runner-noise
# deltas while still catching order-of-magnitude rots.
GATED_METRICS = (
    "engine_batch_ingest.responses_per_s",
    "columnar_ingest.columnar_responses_per_s",
    "columnar_ingest.classic_responses_per_s",
    "columnar_ingest.speedup",
    "store_backends.object.append_rows_per_s",
    "store_backends.columnar.append_rows_per_s",
    "store_backends.columnar.scan_rows_per_s",
    "store_backends.sqlite.append_rows_per_s",
    "serve_queries.sustained_queries_per_s",
    "replication.replicated_responses_per_s",
)
REGRESSION_TOLERANCE = 0.30


def _walk(node, path=""):
    yield path, node
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _walk(value, f"{path}.{key}" if path else key)


def validate_bench(data: dict) -> None:
    """Assert the BENCH_stream.json contract on parsed *data*."""
    assert isinstance(data, dict), "bench file must hold one JSON object"
    rev = data.get("git_rev")
    assert isinstance(rev, str) and rev.strip(), "sections must carry a git rev"
    assert isinstance(data.get("cpu_count"), int) and data["cpu_count"] > 0
    assert isinstance(data.get("python"), str) and data["python"]

    sections = {k: v for k, v in data.items() if k not in META_KEYS}
    assert REQUIRED_SECTIONS <= set(sections), (
        f"missing sections: {REQUIRED_SECTIONS - set(sections)}"
    )
    for name, section in sections.items():
        assert isinstance(section, dict), f"section {name!r} must be an object"
        for path, value in _walk(section, name):
            leaf = path.rsplit(".", 1)[-1]
            if leaf.endswith("_per_s") or leaf == "speedup":
                assert isinstance(value, numbers.Real) and value > 0, (
                    f"{path} must be a positive number, got {value!r}"
                )
            elif leaf in ("responses", "lookups"):
                assert isinstance(value, int) and value > 0, (
                    f"{path} must be a positive count, got {value!r}"
                )
            elif leaf.endswith("seconds"):
                assert isinstance(value, numbers.Real) and value >= 0, (
                    f"{path} must be a non-negative duration, got {value!r}"
                )
            elif leaf.endswith("_pct"):
                # Percentages may be negative (e.g. telemetry overhead
                # measuring inside timer noise) but must stay sane.
                assert isinstance(value, numbers.Real) and -100 <= value <= 10_000, (
                    f"{path} must be a bounded percentage, got {value!r}"
                )


def test_committed_bench_file_matches_schema():
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    validate_bench(json.loads(BENCH_JSON.read_text()))


# -- throughput regression gate -------------------------------------------


def _dig(data: dict, dotted: str):
    node = data
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def load_baseline() -> dict | None:
    """The figures to regress against.

    ``$BENCH_BASELINE_JSON`` wins (CI saves the committed file there
    before the bench regenerates it); otherwise the committed copy at
    HEAD.  ``None`` when neither is available (fresh repo, no git).
    """
    env_path = os.environ.get("BENCH_BASELINE_JSON")
    if env_path:
        return json.loads(Path(env_path).read_text())
    try:
        show = subprocess.run(
            ["git", "show", "HEAD:BENCH_stream.json"],
            capture_output=True,
            text=True,
            cwd=BENCH_JSON.parent,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if show.returncode != 0:
        return None
    try:
        return json.loads(show.stdout)
    except ValueError:
        return None


def check_regressions(current: dict, baseline: dict) -> list[str]:
    """Gated metrics that regressed beyond tolerance; empty means pass.

    A metric missing from the baseline (older revision) or from the
    current file (benchmark not run, e.g. the no-numpy leg never
    records a columnar figure it can't produce) is skipped rather than
    failed -- the gate polices regressions, not coverage.
    """
    failures = []
    for metric in GATED_METRICS:
        base = _dig(baseline, metric)
        now = _dig(current, metric)
        if not isinstance(base, numbers.Real) or not isinstance(now, numbers.Real):
            continue
        floor = base * (1.0 - REGRESSION_TOLERANCE)
        if now < floor:
            failures.append(
                f"{metric}: {now:,.0f}/s is below {floor:,.0f}/s "
                f"(baseline {base:,.0f}/s - {REGRESSION_TOLERANCE:.0%})"
            )
    return failures


def test_throughput_not_regressed_beyond_tolerance():
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    current = json.loads(BENCH_JSON.read_text())
    baseline = load_baseline()
    if baseline is None:
        pytest.skip("no baseline available (no $BENCH_BASELINE_JSON and no git)")
    failures = check_regressions(current, baseline)
    assert not failures, "throughput regressed:\n" + "\n".join(failures)


def test_telemetry_overhead_within_budget():
    """The committed overhead figure must honour the <=5% contract.

    Unlike the throughput gate this is an absolute cap, not a
    baseline-relative one: instrumentation cost is a design property
    (batch-granular updates), so it must hold on every host, not just
    relative to the last run.
    """
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    current = json.loads(BENCH_JSON.read_text())
    overhead = _dig(current, "telemetry_overhead.enabled_overhead_pct")
    assert isinstance(overhead, numbers.Real), (
        "telemetry_overhead.enabled_overhead_pct missing from BENCH_stream.json"
    )
    assert overhead <= TELEMETRY_OVERHEAD_CAP_PCT, (
        f"enabled telemetry costs {overhead:.2f}% on columnar ingest "
        f"(cap {TELEMETRY_OVERHEAD_CAP_PCT:.0f}%)"
    )


def test_checkpoint_format_gates():
    """The committed binary-checkpoint figures must honour both bars.

    Absolute, like the telemetry cap: the binary format's whole point
    is taking serialization off the hot path, so a committed baseline
    where the full save is under 3x the JSON save -- or where an
    incremental delta costs more than a quarter of a full rewrite --
    is a design regression, not host noise.
    """
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    current = json.loads(BENCH_JSON.read_text())
    speedup = _dig(current, "checkpoint.speedup")
    delta_pct = _dig(current, "checkpoint.delta_bytes_pct_of_full")
    assert isinstance(speedup, numbers.Real), (
        "checkpoint.speedup missing from BENCH_stream.json"
    )
    assert isinstance(delta_pct, numbers.Real), (
        "checkpoint.delta_bytes_pct_of_full missing from BENCH_stream.json"
    )
    assert speedup >= CHECKPOINT_SPEEDUP_FLOOR, (
        f"binary full save is only {speedup:.2f}x the JSON save "
        f"(floor {CHECKPOINT_SPEEDUP_FLOOR:.1f}x)"
    )
    assert delta_pct <= CHECKPOINT_DELTA_CAP_PCT, (
        f"delta segment costs {delta_pct:.1f}% of a full rewrite "
        f"(cap {CHECKPOINT_DELTA_CAP_PCT:.0f}%)"
    )


def test_serve_queries_gates():
    """The committed serving figures must honour the acceptance bars.

    Absolute, like the telemetry cap: queries are answered from
    atomically published read snapshots, so sustained concurrent load
    costing ingest more than 15% -- or any response carrying a
    snapshot version that moved backwards -- is a design regression,
    not host noise.
    """
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    current = json.loads(BENCH_JSON.read_text())
    overhead = _dig(current, "serve_queries.ingest_overhead_pct")
    monotonic = _dig(current, "serve_queries.snapshot_versions_monotonic")
    sustained = _dig(current, "serve_queries.sustained_queries_per_s")
    assert isinstance(overhead, numbers.Real), (
        "serve_queries.ingest_overhead_pct missing from BENCH_stream.json"
    )
    assert overhead <= SERVE_INGEST_OVERHEAD_CAP_PCT, (
        f"sustained queries cost {overhead:.2f}% of columnar ingest "
        f"(cap {SERVE_INGEST_OVERHEAD_CAP_PCT:.0f}%)"
    )
    assert monotonic is True, (
        "serve_queries.snapshot_versions_monotonic must be recorded True"
    )
    assert isinstance(sustained, numbers.Real) and sustained > 0, (
        "serve_queries.sustained_queries_per_s must be a positive rate"
    )


def test_replication_gates():
    """The committed replication figures must honour the failover bars.

    Absolute, like the serve cap: a segment ship is a byte-range read
    off the checkpoint file plus an async enqueue to the subscriber's
    bounded outbox, so one warm standby costing the primary more than
    10% -- or a standby whose assembled state ever diverged from the
    primary's file -- is a design regression, not host noise.
    """
    assert BENCH_JSON.exists(), "BENCH_stream.json must be committed at repo root"
    current = json.loads(BENCH_JSON.read_text())
    overhead = _dig(current, "replication.shipping_overhead_pct")
    identical = _dig(current, "replication.standby_state_identical")
    applied = _dig(current, "replication.follower.segments_applied")
    assert isinstance(overhead, numbers.Real), (
        "replication.shipping_overhead_pct missing from BENCH_stream.json"
    )
    assert overhead <= REPLICATION_OVERHEAD_CAP_PCT, (
        f"one warm standby costs the primary {overhead:.2f}% of its own "
        f"CPU on ingest-and-checkpoint "
        f"(cap {REPLICATION_OVERHEAD_CAP_PCT:.0f}%)"
    )
    assert identical is True, (
        "replication.standby_state_identical must be recorded True"
    )
    assert isinstance(applied, int) and applied > 0, (
        "replication.follower.segments_applied must be a positive count"
    )
