"""The StoreBackend contract, cross-backend equivalence, and sqlite
incremental checkpoint/resume.

Every backend must hold the same corpus the same way the old
object-list store did: insertion order everywhere, value-exact snapshot
rows, and engine checkpoints that do not depend on the storage layout.
"""

import json
import random

import pytest

from repro.core.records import ObservationStore, ProbeObservation
from repro.net.addr import with_iid
from repro.net.eui64 import is_eui64_iid, mac_to_eui64_iid
from repro.store import (
    BACKEND_ENV,
    ColumnarBackend,
    ColumnBatch,
    ObjectBackend,
    SqliteBackend,
    StoreBackend,
    default_backend_name,
    make_backend,
)
from repro.stream.checkpoint import engine_state, restore_engine
from repro.stream.engine import StreamConfig, StreamEngine

EUI = mac_to_eui64_iid(0x3810D5AABBCC)

BACKENDS = ["object", "columnar", "sqlite"]


def fresh_backend(kind: str, tmp_path):
    if kind == "sqlite":
        tmp_path.mkdir(parents=True, exist_ok=True)
        return SqliteBackend(tmp_path / "store.sqlite")
    return make_backend(kind)


def obs(day, target, source, t=0.0):
    return ProbeObservation(day=day, t_seconds=t, target=target, source=source)


def sample_corpus(n=200, seed=7):
    """A deterministic mixed corpus: EUI and privacy IIDs, repeat
    visitors across days, duplicates, non-monotone timestamps."""
    rng = random.Random(seed)
    iids = [mac_to_eui64_iid(rng.getrandbits(48)) for _ in range(6)]
    iids += [rng.getrandbits(64) | (1 << 63) for _ in range(3)]
    corpus = []
    for i in range(n):
        day = i // 50
        net64 = 0x20010DB8_0000_0000 + (i % 7) * 0x10000 + day
        iid = iids[i % len(iids)]
        corpus.append(
            obs(
                day,
                with_iid(net64, rng.getrandbits(64)),
                with_iid(net64, iid),
                t=day * 86_400.0 + rng.uniform(0, 86_399),
            )
        )
        if i % 13 == 0:
            corpus.append(corpus[-1])  # exact duplicate row
    return corpus


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendContract:
    def test_satisfies_protocol(self, kind, tmp_path):
        assert isinstance(fresh_backend(kind, tmp_path), StoreBackend)

    def test_insertion_order_and_views(self, kind, tmp_path):
        corpus = sample_corpus()
        store = ObservationStore(fresh_backend(kind, tmp_path))
        # Mixed currencies: singles, object batches, column batches.
        for observation in corpus[:10]:
            store.add(observation)
        store.extend(corpus[10:100])
        store.extend_columns(ColumnBatch.from_observations(corpus[100:]))

        assert len(store) == len(corpus)
        assert list(store) == corpus
        assert store.days() == sorted({o.day for o in corpus})
        for day in store.days():
            expected = [o for o in corpus if o.day == day]
            assert store.on_day(day) == expected
            assert store.day_slice(day).observations() == expected
        for iid in {o.source_iid for o in corpus}:
            expected = [o for o in corpus if o.source_iid == iid]
            assert store.observations_of_iid(iid) == expected
            assert store.iid_history(iid).sources() == [o.source for o in expected]
            assert store.net64s_of_iid(iid) == {o.source_net64 for o in expected}
            assert store.days_of_iid(iid) == {o.day for o in expected}

    def test_counters_and_sets(self, kind, tmp_path):
        corpus = sample_corpus()
        store = ObservationStore(fresh_backend(kind, tmp_path))
        store.extend(corpus)
        assert store.unique_sources() == {o.source for o in corpus}
        assert store.unique_eui64_sources() == {
            o.source for o in corpus if o.is_eui64
        }
        assert store.eui64_iids() == {o.source_iid for o in corpus if o.is_eui64}
        stats = store.stats()
        assert stats.backend == kind
        assert stats.rows == len(corpus)
        assert stats.eui_rows == sum(1 for o in corpus if o.is_eui64)
        assert stats.days == len(store.days())

    def test_scan_chunks_cover_corpus_in_order(self, kind, tmp_path):
        corpus = sample_corpus()
        store = ObservationStore(fresh_backend(kind, tmp_path))
        store.extend(corpus)
        chunks = list(store.scan_columns(chunk_rows=37))
        assert all(len(c) <= 37 for c in chunks)
        assert ColumnBatch.concat(chunks).observations() == corpus

    def test_snapshot_rows_and_restore_round_trip(self, kind, tmp_path):
        corpus = sample_corpus()
        store = ObservationStore(fresh_backend(kind, tmp_path))
        store.extend(corpus)
        rows = store.snapshot_rows()
        assert rows == [[o.day, o.t_seconds, o.target, o.source] for o in corpus]
        restored = ObservationStore(fresh_backend(kind, tmp_path / "restored"))
        restored.restore_rows(rows)
        assert restored.snapshot_rows() == rows
        assert list(restored) == corpus

    def test_restore_converges_on_checkpoint(self, kind, tmp_path):
        """restore() must land exactly on the checkpoint rows whatever
        the backend already held -- prefix kept, suffix discarded,
        divergence rejected -- on every backend alike."""
        corpus = sample_corpus(n=60)
        rows = [[o.day, o.t_seconds, o.target, o.source] for o in corpus]
        backend = fresh_backend(kind, tmp_path)
        backend.append_observations(corpus)
        # Held suffix beyond the checkpoint: verified, then discarded.
        assert backend.restore(rows[:30]) == 0
        assert backend.rows == 30
        assert backend.snapshot() == rows[:30]
        assert backend.eui_iids() == {
            o.source_iid for o in corpus[:30] if o.is_eui64
        }
        # Held prefix: kept, only the tail appends.
        assert backend.restore(rows) == len(rows) - 30
        assert backend.snapshot() == rows
        # Divergence anywhere in the shared prefix: rejected -- at the
        # boundary and (the subtler case) at an early row behind an
        # agreeing boundary.
        bad = [list(r) for r in rows]
        bad[-1] = [99, 0.0, 1, 2]
        with pytest.raises(ValueError, match="not the same corpus"):
            backend.restore(bad)
        bad_early = [list(r) for r in rows]
        bad_early[0] = [0, 0.0, 1, 2]
        with pytest.raises(ValueError, match="at row 0"):
            backend.restore(bad_early)

    def test_value_types_survive_snapshot(self, kind, tmp_path):
        """int days stay int, float timestamps stay float -- the JSON
        byte-identity contract across backends."""
        store = ObservationStore(fresh_backend(kind, tmp_path))
        source = with_iid(0x10, EUI)
        store.extend([obs(0, 1, source, t=0.0), obs(1, 2, 3, t=5)])
        dumped = json.dumps(store.snapshot_rows())
        assert dumped == f"[[0, 0.0, 1, {source}], [1, 5, 2, 3]]"


def test_ingest_columns_empty_batch_is_noop():
    engine = StreamEngine(StreamConfig(num_shards=2))
    assert engine.ingest_columns(ColumnBatch()) == 0
    assert engine.responses_ingested == 0
    from repro.stream.parallel import ParallelStreamEngine

    with ParallelStreamEngine(StreamConfig(num_shards=2), num_workers=1) as parallel:
        assert parallel.ingest_columns(ColumnBatch()) == 0
        assert parallel.responses_ingested == 0


def test_add_batches_through_pending_buffer(tmp_path):
    """Satellite: ``add`` buffers instead of a 1-element extend each."""
    calls = []

    class CountingBackend(ObjectBackend):
        def append_observations(self, observations):
            calls.append(len(observations))
            return super().append_observations(observations)

    store = ObservationStore(CountingBackend())
    for i in range(ObservationStore.ADD_BUFFER_ROWS + 10):
        store.add(obs(0, i, with_iid(0x10, EUI)))
    assert calls == [ObservationStore.ADD_BUFFER_ROWS]  # one bulk append
    assert len(store) == ObservationStore.ADD_BUFFER_ROWS + 10  # pending counted
    assert len(list(store)) == ObservationStore.ADD_BUFFER_ROWS + 10  # read flushes
    assert calls == [ObservationStore.ADD_BUFFER_ROWS, 10]


def test_env_override_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "object")
    assert default_backend_name() == "object"
    assert isinstance(ObservationStore().backend, ObjectBackend)
    monkeypatch.setenv(BACKEND_ENV, "columnar")
    assert isinstance(ObservationStore().backend, ColumnarBackend)
    monkeypatch.setenv(BACKEND_ENV, "bogus")
    with pytest.raises(ValueError, match="bogus"):
        ObservationStore()


def origin_of(address: int) -> int:
    return 64512 + ((address >> 80) % 5)


def test_engine_checkpoints_identical_across_backends(tmp_path):
    """The acceptance bar: same stream, any backend, same checkpoint
    bytes -- via per-observation, batch, and column ingestion."""
    corpus = sample_corpus(n=300)
    config = StreamConfig(num_shards=4)
    states = {}
    for kind in BACKENDS:
        engine = StreamEngine(
            config,
            origin_of=origin_of,
            store=ObservationStore(fresh_backend(kind, tmp_path / kind)),
        )
        engine.watch(EUI)
        for observation in corpus[:40]:
            engine.ingest(observation)
        engine.ingest_batch(corpus[40:150])
        engine.ingest_columns(ColumnBatch.from_observations(corpus[150:]))
        engine.flush()
        states[kind] = json.dumps(engine_state(engine))
    assert states["object"] == states["columnar"] == states["sqlite"]


def test_sqlite_incremental_checkpoint_counts(tmp_path):
    backend = SqliteBackend(tmp_path / "inc.sqlite")
    corpus = sample_corpus(n=120)
    backend.append_columns(ColumnBatch.from_observations(corpus[:80]))
    assert backend.appended_since_checkpoint == 80
    assert backend.checkpoint() == 80  # first delta: everything
    assert backend.appended_since_checkpoint == 0
    assert backend.checkpointed_rows() == 80
    backend.append_columns(ColumnBatch.from_observations(corpus[80:]))
    assert backend.checkpoint() == len(corpus) - 80  # only the tail
    assert backend.checkpointed_rows() == len(corpus)
    assert backend.checkpoint() == 0  # nothing new -> empty delta


def test_sqlite_mid_stream_resume_byte_identical(tmp_path):
    """Incremental resume: reattach the sqlite file mid-stream and end
    with the exact bytes of an uninterrupted run."""
    corpus = sample_corpus(n=260)
    split = 130
    config = StreamConfig(num_shards=4)

    reference = StreamEngine(config, origin_of=origin_of)
    reference.ingest_batch(corpus)
    reference.flush()
    final = json.dumps(engine_state(reference))

    db = tmp_path / "campaign.sqlite"
    first = StreamEngine(
        config, origin_of=origin_of, store=ObservationStore(SqliteBackend(db))
    )
    first.ingest_batch(corpus[:split])
    state = engine_state(first)  # snapshot: commits the sqlite delta
    # Crash: drop the engine without closing; committed rows persist.
    del first

    reattached = ObservationStore(SqliteBackend(db))
    assert len(reattached) == split  # the file already holds phase 1
    appended = reattached.restore_rows(state["store"])
    assert appended == 0  # incremental resume replays nothing
    resumed = restore_engine(state, origin_of=origin_of, store=reattached)
    resumed.ingest_batch(corpus[split:])
    resumed.flush()
    assert json.dumps(engine_state(resumed)) == final


def test_sqlite_restore_discards_uncheckpointed_suffix(tmp_path):
    """A run that kept ingesting after its last checkpoint commits on
    close; resuming from that checkpoint must drop the suffix (the
    resumed stream replays those responses), not dead-end."""
    corpus = sample_corpus(n=40)
    rows = [[o.day, o.t_seconds, o.target, o.source] for o in corpus]
    backend = SqliteBackend(tmp_path / "a.sqlite")
    backend.append_observations(corpus)
    backend.close()  # commits everything, checkpointed or not
    reattached = SqliteBackend(tmp_path / "a.sqlite")
    assert reattached.rows == len(corpus)
    assert reattached.restore(rows[:20]) == 0  # nothing appended...
    assert reattached.rows == 20  # ...and the suffix is gone
    assert reattached.snapshot() == rows[:20]
    assert reattached.eui_iids() == {
        o.source_iid for o in corpus[:20] if o.is_eui64
    }
    # The resumed stream re-appends the replayed responses cleanly.
    reattached.append_observations(corpus[20:])
    assert reattached.snapshot() == rows


def test_sqlite_restore_rejects_mismatched_file(tmp_path):
    corpus = sample_corpus(n=40)
    backend = SqliteBackend(tmp_path / "a.sqlite")
    backend.append_observations(corpus)
    backend.checkpoint()
    rows = [[o.day, o.t_seconds, o.target, o.source] for o in corpus]
    bad_short = [list(r) for r in rows[:20]]
    bad_short[-1] = [99, 0.0, 1, 2]
    with pytest.raises(ValueError, match="not the same corpus"):
        backend.restore(bad_short)  # boundary row disagrees (shorter)
    bad_long = [list(r) for r in rows]
    bad_long[-1] = [99, 0.0, 1, 2]
    bad_long.append([99, 1.0, 3, 4])
    with pytest.raises(ValueError, match="not the same corpus"):
        backend.restore(bad_long)  # boundary row disagrees (longer)


def test_sqlite_close_removes_owned_tempfile():
    backend = SqliteBackend()  # no path: throwaway temp file
    path = backend.path
    assert path.exists()
    backend.append_observations([obs(0, 1, with_iid(0x10, EUI))])
    backend.close()
    assert not path.exists()


def test_eui_classification_matches_scalar_oracle(tmp_path):
    rng = random.Random(3)
    iids = [mac_to_eui64_iid(rng.getrandbits(48)) for _ in range(4)]
    iids += [rng.getrandbits(64) for _ in range(4)]
    corpus = [
        obs(0, 1, with_iid(0x10 + i, rng.choice(iids))) for i in range(64)
    ]
    for kind in BACKENDS:
        store = ObservationStore(fresh_backend(kind, tmp_path / f"e-{kind}"))
        store.extend(corpus)
        assert store.eui64_iids() == {
            o.source_iid for o in corpus if is_eui64_iid(o.source_iid)
        }, kind
