"""Built-in datasets: vendor OUI assignments and AS metadata.

These stand in for the external data sources the paper consults (the IEEE
OUI registry and Routeviews/registry AS information), packaged so the
library works fully offline.
"""

from repro.data.asinfo_db import AS_RECORDS, AsRecord
from repro.data.oui_db import VENDOR_OUIS, vendor_oui_table

__all__ = ["AS_RECORDS", "AsRecord", "VENDOR_OUIS", "vendor_oui_table"]
