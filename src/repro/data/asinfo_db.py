"""AS metadata records for the networks the paper names.

The paper's tables attribute measurements to real ASNs.  We carry those
ASNs with their operator names and ISO country codes so the reproduction's
tables read like the paper's.  ASNs the paper identifies explicitly
(AS8881 Versatel, AS8422 NetCologne, AS7552 Viettel, AS9146 BH Telecom,
AS3320 Deutsche Telekom, ...) use their real-world identities; the
remaining "96 other ASes" of Table 1 are synthesized by the scenario
builder from :data:`TAIL_COUNTRIES`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AsRecord:
    """Registry identity of one autonomous system."""

    asn: int
    name: str
    country: str  # ISO 3166-1 alpha-2


# ASes named in the paper's text, Table 1, and Table 2.
AS_RECORDS: tuple[AsRecord, ...] = (
    AsRecord(8881, "Versatel / 1&1", "DE"),
    AsRecord(6799, "OTE (Hellenic Telecom)", "GR"),
    AsRecord(1241, "Forthnet", "GR"),
    AsRecord(9808, "China Mobile Guangdong", "CN"),
    AsRecord(3320, "Deutsche Telekom", "DE"),
    AsRecord(8422, "NetCologne", "DE"),
    AsRecord(7552, "Viettel Group", "VN"),
    AsRecord(9146, "BH Telecom", "BA"),
    AsRecord(6568, "Entel Bolivia", "BO"),
    AsRecord(7682, "Starcat Cable Network", "JP"),
    AsRecord(56044, "China Mobile Zhejiang", "CN"),
    AsRecord(262557, "Claro Fibra", "BR"),
    AsRecord(27699, "Telefonica Brasil", "BR"),
    AsRecord(14868, "Copel Telecom", "BR"),
    AsRecord(10834, "Telefonica de Argentina", "AR"),
    AsRecord(200924, "Stadtwerke Netz", "DE"),
    AsRecord(12322, "Free SAS", "FR"),
    AsRecord(3462, "Chunghwa Telecom", "TW"),
    AsRecord(4134, "China Telecom", "CN"),
    AsRecord(6057, "Antel Uruguay", "UY"),
    AsRecord(12389, "Rostelecom", "RU"),
)

# Countries used to synthesize the long tail of rotating ASes ("25
# different countries" in the paper's abstract).  Weights loosely follow
# Table 1's country mix with DE and GR dominant.
TAIL_COUNTRIES: tuple[tuple[str, int], ...] = (
    ("DE", 12),
    ("GR", 8),
    ("CN", 6),
    ("BR", 6),
    ("BO", 4),
    ("JP", 4),
    ("VN", 3),
    ("BA", 3),
    ("AR", 3),
    ("FR", 3),
    ("RU", 3),
    ("UY", 2),
    ("TW", 2),
    ("IT", 2),
    ("ES", 2),
    ("PL", 2),
    ("NL", 2),
    ("AT", 2),
    ("CH", 2),
    ("CZ", 2),
    ("SE", 1),
    ("FI", 1),
    ("MX", 1),
    ("CO", 1),
    ("TH", 1),
)


def records_by_asn() -> dict[int, AsRecord]:
    """Index :data:`AS_RECORDS` by ASN."""
    return {record.asn: record for record in AS_RECORDS}
