"""Vendor OUI database: a representative offline subset of the IEEE registry.

The paper resolves manufacturer identity of discovered CPE by mapping the
OUI (high 24 bits) of the MAC embedded in each EUI-64 address through the
public IEEE registry.  We bundle a curated subset covering the CPE vendors
the paper names (AVM, ZTE, Lancom, Zyxel) plus the major residential-CPE
manufacturers needed to synthesize realistic per-AS vendor mixes.

OUI values follow the real IEEE assignments where well known (e.g.
``38:10:d5`` is AVM -- the example MAC in the paper's Figure 1 -- and
``00:a0:57`` is Lancom Systems); the set is representative, not the full
~50k-entry registry.
"""

from __future__ import annotations

# vendor name -> tuple of OUI strings ("aa:bb:cc")
VENDOR_OUIS: dict[str, tuple[str, ...]] = {
    "AVM": (
        "38:10:d5",
        "c8:0e:14",
        "3c:a6:2f",
        "7c:ff:4d",
        "2c:91:ab",
        "44:4e:6d",
        "e0:28:6d",
        "bc:05:43",
        "9c:c7:a6",
        "5c:49:79",
    ),
    "ZTE": (
        "34:4b:50",
        "98:f5:37",
        "f8:a3:4f",
        "d0:60:8c",
        "28:ff:3e",
        "00:19:c6",
        "00:26:ed",
        "4c:ac:0a",
    ),
    "Huawei": (
        "00:e0:fc",
        "28:6e:d4",
        "48:46:fb",
        "8c:34:fd",
        "ac:e2:15",
        "e8:cd:2d",
        "d4:6e:5c",
    ),
    "Sagemcom": (
        "68:a3:78",
        "7c:03:4c",
        "34:27:92",
        "50:7e:5d",
        "e8:be:81",
        "40:5a:9b",
    ),
    "Arris": (
        "14:ab:f0",
        "90:c7:92",
        "44:e1:37",
        "00:1d:cd",
        "a4:7a:a4",
    ),
    "Technicolor": (
        "54:67:51",
        "88:f7:c7",
        "a0:b5:49",
        "fc:52:8d",
    ),
    "TP-Link": (
        "50:c7:bf",
        "14:cc:20",
        "ec:08:6b",
        "60:32:b1",
    ),
    "Zyxel": (
        "00:a0:c5",
        "b0:b2:dc",
        "5c:f4:ab",
        "cc:5d:4e",
    ),
    "Lancom Systems": (
        "00:a0:57",
    ),
    "Nokia": (
        "d0:9d:ab",
        "30:19:66",
        "84:61:a0",
    ),
    "Sercomm": (
        "c4:71:54",
        "00:1e:a6",
        "d4:21:22",
    ),
    "MitraStar": (
        "cc:d4:a1",
        "8c:59:73",
    ),
    "Askey": (
        "3c:9a:77",
        "e8:d1:1b",
    ),
    "Compal Broadband": (
        "58:23:8c",
        "94:62:69",
    ),
    "Calix": (
        "00:25:4e",
        "cc:be:59",
    ),
    "D-Link": (
        "28:10:7b",
        "00:05:5d",
        "c4:a8:1d",
    ),
    "Netgear": (
        "a0:40:a0",
        "20:e5:2a",
        "cc:40:d0",
    ),
    "FiberHome": (
        "48:5d:36",
        "30:f3:35",
    ),
    "Mikrotik": (
        "4c:5e:0c",
        "e4:8d:8c",
    ),
    "Ubee Interactive": (
        "64:7c:34",
    ),
    "Hitron": (
        "68:8f:2e",
    ),
    "Vantiva": (
        "10:cc:1b",
    ),
    # 00:00:00 is officially Xerox but is widely (ab)used as a default MAC
    # on interfaces without a burned-in address -- see the paper's
    # Section 5.5 pathology (one all-zero MAC observed in 12 ASes).
    "Xerox (default-MAC)": (
        "00:00:00",
    ),
}


def vendor_oui_table() -> dict[int, str]:
    """Flatten :data:`VENDOR_OUIS` into an ``{oui_int: vendor}`` mapping."""
    table: dict[int, str] = {}
    for vendor, ouis in VENDOR_OUIS.items():
        for text in ouis:
            parts = text.split(":")
            value = (int(parts[0], 16) << 16) | (int(parts[1], 16) << 8) | int(parts[2], 16)
            if value in table:
                raise ValueError(f"duplicate OUI {text} ({table[value]} / {vendor})")
            table[value] = vendor
    return table
