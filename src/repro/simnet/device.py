"""CPE device model: the legacy boxes that leak their MAC addresses.

Each simulated customer premises router has a hardware MAC, a WAN
addressing mode, an ICMPv6 response policy, a service-lifetime window,
and a daily online probability.  The privacy-relevant behaviour:

* ``EUI64`` devices derive their WAN IID from the MAC -- static across
  prefix rotations.  These are the paper's trackable population.
* ``PRIVACY`` devices pick a fresh random IID whenever their delegated
  prefix changes (RFC 4941 behaviour done right).
* ``STATIC`` devices use a small manually configured IID (``::1`` style),
  modelling statically numbered infrastructure.

A device may carry a ``privacy_switch_hours`` timestamp: a firmware update
that flips it from EUI-64 to privacy addressing, modelling the vendor
remediation of Section 8.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.net.eui64 import is_eui64_iid, mac_to_eui64_iid
from repro.net.icmpv6 import IcmpCode, IcmpType
from repro.scan.rate import IcmpRateLimiter
from repro.simnet.clock import day_of
from repro.util import mix64, unit_float


class AddressingMode(enum.Enum):
    """How the CPE numbers its WAN interface."""

    EUI64 = "eui64"
    PRIVACY = "privacy"
    STATIC = "static"


@dataclass(frozen=True, slots=True)
class ResponsePolicy:
    """What the device sends back for probes to nonexistent internal hosts.

    ``responds=False`` models silent drops (the black pixels inside
    otherwise-responsive delegations in Figure 3).  The (type, code)
    combinations mirror the OS behaviours Section 3.1 reports.
    """

    responds: bool = True
    icmp_type: IcmpType = IcmpType.DEST_UNREACHABLE
    icmp_code: int = int(IcmpCode.ADMIN_PROHIBITED)

    @classmethod
    def admin_prohibited(cls) -> ResponsePolicy:
        return cls(True, IcmpType.DEST_UNREACHABLE, int(IcmpCode.ADMIN_PROHIBITED))

    @classmethod
    def no_route(cls) -> ResponsePolicy:
        return cls(True, IcmpType.DEST_UNREACHABLE, int(IcmpCode.NO_ROUTE))

    @classmethod
    def addr_unreachable(cls) -> ResponsePolicy:
        return cls(True, IcmpType.DEST_UNREACHABLE, int(IcmpCode.ADDR_UNREACHABLE))

    @classmethod
    def hop_limit_exceeded(cls) -> ResponsePolicy:
        return cls(True, IcmpType.TIME_EXCEEDED, int(IcmpCode.HOP_LIMIT_EXCEEDED))

    @classmethod
    def silent(cls) -> ResponsePolicy:
        return cls(responds=False)


@dataclass
class CpeDevice:
    """One customer premises router."""

    device_id: int
    mac: int
    addressing: AddressingMode = AddressingMode.EUI64
    policy: ResponsePolicy = field(default_factory=ResponsePolicy.admin_prohibited)
    active_from_hours: float = -math.inf
    active_until_hours: float = math.inf
    online_fraction: float = 1.0
    privacy_switch_hours: float | None = None
    icmp_rate: float = IcmpRateLimiter.DEFAULT_RATE
    icmp_burst: float = IcmpRateLimiter.DEFAULT_BURST
    _limiter: IcmpRateLimiter | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.online_fraction <= 1.0:
            raise ValueError(f"online_fraction must be in [0,1], got {self.online_fraction}")

    @property
    def limiter(self) -> IcmpRateLimiter:
        if self._limiter is None:
            self._limiter = IcmpRateLimiter(rate=self.icmp_rate, burst=self.icmp_burst)
        return self._limiter

    def addressing_at(self, t_hours: float) -> AddressingMode:
        """Addressing mode in effect at *t_hours* (remediation-aware)."""
        if (
            self.privacy_switch_hours is not None
            and t_hours >= self.privacy_switch_hours
            and self.addressing is AddressingMode.EUI64
        ):
            return AddressingMode.PRIVACY
        return self.addressing

    def is_active(self, t_hours: float) -> bool:
        """True if the device is in service at *t_hours*."""
        return self.active_from_hours <= t_hours < self.active_until_hours

    def is_online(self, t_hours: float) -> bool:
        """True if the device is powered and reachable at *t_hours*.

        Online-ness is decided per (device, day) by a deterministic hash,
        so the same simulated day always looks the same -- mirroring how
        a CPE is typically on or off for extended periods rather than
        flapping per-probe.
        """
        if not self.is_active(t_hours):
            return False
        if self.online_fraction >= 1.0:
            return True
        return unit_float(self.device_id, day_of(t_hours), 0xD1CE) < self.online_fraction

    def wan_iid(self, net64: int, t_hours: float) -> int:
        """The WAN interface identifier when holding the given /64.

        EUI-64 mode ignores both arguments -- that is the vulnerability.
        Privacy mode derives a fresh pseudorandom IID from (device,
        prefix), so every rotation yields an unlinkable address; the
        ``ff:fe`` pattern is explicitly broken to keep classification
        honest.  Static mode returns ``::1``.
        """
        mode = self.addressing_at(t_hours)
        if mode is AddressingMode.EUI64:
            return mac_to_eui64_iid(self.mac)
        if mode is AddressingMode.STATIC:
            return 1
        iid = mix64(self.device_id, net64, 0x9A1D)
        if is_eui64_iid(iid):
            # A random IID matches the ff:fe marker with probability 2^-16;
            # break it so PRIVACY devices never masquerade as EUI-64.
            iid ^= 1 << 24
        return iid

    def allows_response(self, t_seconds: float) -> bool:
        """Apply the RFC 4443 error rate limit at *t_seconds*."""
        return self.limiter.allow(t_seconds)
