"""Passive vantage points: what an observer sees without sending probes.

A :class:`FlowTap` models a provider-side flow collector (an IXP or
transit tap, a NetFlow feed bought from a carrier): it logs source
addresses of customer traffic, with no probing and no choice of
targets.  Two knobs bound what the vantage sees:

* ``coverage`` -- the fraction of the provider's customers whose
  traffic crosses the tap at all.  Membership is decided per device by
  a deterministic hash threshold, so raising coverage strictly *adds*
  devices: the vantage sets are nested, which is what lets experiments
  sweep coverage against tracking success monotonically.
* ``sample_rate`` -- the per-(device, day) probability that a covered
  device's traffic is actually logged that day (sampled NetFlow,
  devices that stayed quiet).  Sampling is decided independently of
  coverage, again by deterministic hash, so the same device emits on
  the same days at every coverage level.

The tap records the CPE's *WAN address* at observation time -- router-
originated or NATed traffic a provider-side collector attributes to the
customer line.  For EUI-64 CPE that address carries the stable IID: the
"one bad apple" of Saidi et al., and the reason a purely passive
observer defeats prefix rotation.  Records are plain ``(source, day,
t_seconds)`` tuples; :mod:`repro.stream.feeds` adapts them into the
streaming engine's observation format (this layer deliberately knows
nothing about the attacker's stack).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.simnet.clock import HOURS_PER_DAY, seconds
from repro.simnet.internet import SimInternet
from repro.util import unit_float

_COVER_SALT = 0xBADA
_SAMPLE_SALT = 0x5EED
_JITTER_SALT = 0x71E


class FlowTap:
    """A passive provider-side vantage over one AS's customer traffic."""

    def __init__(
        self,
        internet: SimInternet,
        asn: int,
        coverage: float = 1.0,
        sample_rate: float = 1.0,
        seed: int = 0,
        observe_hour: float = 20.0,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if not 0.0 <= observe_hour < HOURS_PER_DAY:
            raise ValueError("observe_hour must be within a day")
        provider = internet.provider_of_asn(asn)
        if provider is None:
            raise ValueError(f"AS{asn} not in this internet")
        self.internet = internet
        self.provider = provider
        self.coverage = coverage
        self.sample_rate = sample_rate
        self.seed = seed
        self.observe_hour = observe_hour

    def covers(self, device_id: int) -> bool:
        """Whether *device_id*'s traffic crosses this tap at all.

        Threshold on a per-device hash: nested across coverage values
        (a device covered at 0.3 is covered at every higher setting).
        """
        return unit_float(device_id, self.seed, _COVER_SALT) < self.coverage

    def emits_on(self, device_id: int, day: int) -> bool:
        """Whether a covered device's traffic gets logged on *day*."""
        return (
            unit_float(device_id, day ^ self.seed, _SAMPLE_SALT) < self.sample_rate
        )

    def sightings_on(self, day: int) -> list[tuple[int, int, float]]:
        """``(source, day, t_seconds)`` tap records for one day.

        One record per covered, sampled, online customer: its CPE WAN
        address at a per-(device, day) jittered evening hour.  The
        jitter keeps record times distinct (freshness comparisons never
        tie), is independent of coverage and sampling, and is clamped
        to the remainder of the day so a record tagged *day* never
        carries the next day's rotated address or timestamp.
        """
        jitter_span = min(1.0, HOURS_PER_DAY - self.observe_hour)
        records: list[tuple[int, int, float]] = []
        for pool in self.provider.pools:
            for customer, device in enumerate(pool.devices):
                if not self.covers(device.device_id):
                    continue
                if not self.emits_on(device.device_id, day):
                    continue
                jitter = jitter_span * unit_float(
                    device.device_id, day ^ self.seed, _JITTER_SALT
                )
                t_hours = day * HOURS_PER_DAY + self.observe_hour + jitter
                if not device.is_online(t_hours):
                    continue
                records.append(
                    (pool.wan_address_of(customer, t_hours), day, seconds(t_hours))
                )
        records.sort(key=lambda record: (record[1], record[2]))
        return records

    def records(self, days: Iterable[int]) -> Iterator[tuple[int, int, float]]:
        """Day-major tap records over *days* (ascending days expected)."""
        for day in days:
            yield from self.sightings_on(day)
