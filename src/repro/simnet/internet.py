"""The simulated Internet: what the attacker's vantage point can reach.

:class:`SimInternet` glues providers, their pools, a BGP table, and an AS
registry into one probe-able world.  Its two verbs mirror the paper's two
tools:

* ``probe(target, t)`` -- a zmap-style ICMPv6 Echo Request.  If the target
  falls inside a delegated customer prefix, the responsible CPE answers
  (policy, uptime, and rate limits permitting) with an ICMPv6 error whose
  source is its WAN address.  Probes into routed-but-undelegated space may
  draw a "no route" from a statically addressed core router; unrouted
  space is silent.
* ``trace(target, t)`` -- a yarrp-style traceroute returning the per-hop
  source addresses, ending at the CPE when one is on-path (the periphery
  discovery of Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.asinfo import AsRegistry
from repro.bgp.table import RoutingTable
from repro.net.icmpv6 import IcmpCode, IcmpType, ProbeResponse
from repro.scan.rate import IcmpRateLimiter
from repro.simnet.clock import hours
from repro.simnet.pool import Residence, RotationPool
from repro.simnet.provider import Provider

_NET48_SHIFT = 80  # bits below a /48 network


@dataclass
class InternetStats:
    """Counters for tests and experiment accounting."""

    probes: int = 0
    cpe_responses: int = 0
    core_responses: int = 0
    rate_limited: int = 0
    silent_policy: int = 0
    offline: int = 0
    vacant: int = 0
    unrouted: int = 0


class SimInternet:
    """A deterministic, probe-able synthetic IPv6 Internet."""

    def __init__(
        self,
        providers: list[Provider],
        registry: AsRegistry | None = None,
        core_answers_unrouted: bool = True,
        core_icmp_rate: float = IcmpRateLimiter.DEFAULT_RATE,
    ) -> None:
        self.providers = list(providers)
        self.registry = registry or AsRegistry()
        self.rib = RoutingTable()
        self.core_answers_unrouted = core_answers_unrouted
        self.stats = InternetStats()
        self._provider_by_asn: dict[int, Provider] = {}
        self._pool_index: dict[int, tuple[Provider, RotationPool]] = {}
        self._wide_pools: list[tuple[Provider, RotationPool]] = []
        self._core_limiters: dict[int, IcmpRateLimiter] = {}
        self._core_icmp_rate = core_icmp_rate

        for provider in self.providers:
            if provider.asn in self._provider_by_asn:
                raise ValueError(f"duplicate AS{provider.asn}")
            self._provider_by_asn[provider.asn] = provider
            self.registry.register(provider.asn, provider.name, provider.country)
            for prefix in provider.bgp_prefixes:
                self.rib.advertise(prefix, provider.asn)
            for pool in provider.pools:
                self._index_pool(provider, pool)

    def _index_pool(self, provider: Provider, pool: RotationPool) -> None:
        """Index a pool by its covering /48s for O(1) probe resolution."""
        if pool.prefix.plen > 48:
            self._wide_pools.append((provider, pool))
            return
        for net48 in pool.prefix.subnets(48):
            key = net48.network >> _NET48_SHIFT
            if key in self._pool_index:
                other = self._pool_index[key][1]
                raise ValueError(f"pools overlap in {net48}: {pool.prefix} / {other.prefix}")
            self._pool_index[key] = (provider, pool)

    # -- lookup helpers ----------------------------------------------------

    def provider_of_asn(self, asn: int) -> Provider | None:
        return self._provider_by_asn.get(asn)

    def pool_of(self, addr: int) -> tuple[Provider, RotationPool] | None:
        """The (provider, pool) whose pool prefix covers *addr*, if any."""
        entry = self._pool_index.get(addr >> _NET48_SHIFT)
        if entry is not None:
            return entry
        for provider, pool in self._wide_pools:
            if addr in pool.prefix:
                return provider, pool
        return None

    def resolve(self, addr: int, t_hours: float) -> Residence | None:
        """Ground-truth resolution (no uptime/policy filtering)."""
        entry = self.pool_of(addr)
        if entry is None:
            return None
        return entry[1].resolve(addr, t_hours)

    def all_devices(self):
        for provider in self.providers:
            yield from provider.all_devices()

    # -- the attacker-facing verbs ------------------------------------------

    def probe(self, target: int, t_seconds: float) -> ProbeResponse | None:
        """One ICMPv6 Echo Request toward *target* at *t_seconds*."""
        self.stats.probes += 1
        t_h = hours(t_seconds)
        entry = self.pool_of(target)
        if entry is not None:
            provider, pool = entry
            residence = pool.resolve(target, t_h)
            if residence is None:
                self.stats.vacant += 1
                return None
            device = residence.device
            if not device.is_online(t_h):
                self.stats.offline += 1
                return None
            if not device.policy.responds:
                self.stats.silent_policy += 1
                return None
            if not device.allows_response(t_seconds):
                self.stats.rate_limited += 1
                return None
            self.stats.cpe_responses += 1
            return ProbeResponse(
                target=target,
                source=residence.wan_address,
                icmp_type=device.policy.icmp_type,
                code=device.policy.icmp_code,
                time=t_seconds,
            )
        return self._core_response(target, t_seconds)

    def _core_response(self, target: int, t_seconds: float) -> ProbeResponse | None:
        """Routed-but-undelegated space: maybe a core-router "no route"."""
        route = self.rib.lookup(target)
        if route is None:
            self.stats.unrouted += 1
            return None
        if not self.core_answers_unrouted:
            return None
        provider = self._provider_by_asn.get(route.origin_asn)
        if provider is None or not provider.bgp_prefixes:
            self.stats.unrouted += 1
            return None
        limiter = self._core_limiters.get(provider.asn)
        if limiter is None:
            limiter = IcmpRateLimiter(rate=self._core_icmp_rate)
            self._core_limiters[provider.asn] = limiter
        if not limiter.allow(t_seconds):
            self.stats.rate_limited += 1
            return None
        self.stats.core_responses += 1
        return ProbeResponse(
            target=target,
            source=provider.core_router_address(0),
            icmp_type=IcmpType.DEST_UNREACHABLE,
            code=int(IcmpCode.NO_ROUTE),
            time=t_seconds,
        )

    def trace(self, target: int, t_seconds: float) -> list[int | None]:
        """yarrp-style forwarding path toward *target*.

        Returns per-hop source addresses: the origin provider's core
        routers, then the CPE WAN interface if a delegation covers the
        target and the device is up.  Silent hops are ``None``.
        """
        t_h = hours(t_seconds)
        route = self.rib.lookup(target)
        if route is None:
            return [None, None]
        provider = self._provider_by_asn.get(route.origin_asn)
        if provider is None:
            return [None, None]
        hops: list[int | None] = [
            provider.core_router_address(i) for i in range(provider.core_hops)
        ]
        entry = self.pool_of(target)
        residence = entry[1].resolve(target, t_h) if entry else None
        if residence is not None and residence.device.is_online(t_h):
            hops.append(residence.wan_address)
        else:
            hops.append(None)
        return hops
