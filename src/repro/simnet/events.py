"""Scenario events: churn, provider switching, MAC reuse, remediation.

These mutators reproduce the dynamics behind the paper's pathology and
remediation analyses:

* **provider switching** (Section 5.5, Figure 12) -- a customer leaves
  one ISP for another; the same MAC stops appearing in the old AS and
  starts appearing in the new one,
* **MAC reuse** (Section 5.5, Figure 11) -- a manufacturer ships the same
  MAC on many devices, so one EUI-64 IID shows up simultaneously on
  several continents (plus the all-zero default MAC seen in 12 ASes), and
* **vendor remediation** (Section 8) -- a firmware update flips a
  vendor's devices from EUI-64 to privacy addressing, which is the fix
  the paper's disclosure produced.
"""

from __future__ import annotations

from dataclasses import replace

from repro.net.oui import OuiRegistry
from repro.simnet.device import AddressingMode, CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool


def _find_pool_of_device(
    internet: SimInternet, asn: int, device_id: int
) -> tuple[RotationPool, int]:
    provider = internet.provider_of_asn(asn)
    if provider is None:
        raise ValueError(f"AS{asn} not in this internet")
    for pool in provider.pools:
        index = pool.customer_index_of(device_id)
        if index is not None:
            return pool, index
    raise ValueError(f"device {device_id} not found in AS{asn}")


def switch_provider(
    internet: SimInternet,
    device_id: int,
    from_asn: int,
    to_asn: int,
    at_hours: float,
    next_device_id: int,
) -> CpeDevice:
    """Move a customer between providers at *at_hours*.

    The old tenancy ends (``active_until_hours``); a new device entry
    with the *same MAC* and addressing joins a pool of the new provider.
    Returns the new device.
    """
    old_pool, index = _find_pool_of_device(internet, from_asn, device_id)
    old_device = old_pool.devices[index]
    if at_hours < old_device.active_from_hours:
        raise ValueError("switch precedes service start")
    old_device.active_until_hours = min(old_device.active_until_hours, at_hours)

    to_provider = internet.provider_of_asn(to_asn)
    if to_provider is None:
        raise ValueError(f"AS{to_asn} not in this internet")
    if not to_provider.pools:
        raise ValueError(f"AS{to_asn} has no pools")
    new_device = replace(
        old_device,
        device_id=next_device_id,
        active_from_hours=at_hours,
        active_until_hours=float("inf"),
        _limiter=None,
    )
    target_pool = _representative_pool(to_provider.pools)
    target_pool.add_device(new_device)
    return new_device


def _representative_pool(pools: list[RotationPool]) -> RotationPool:
    """The provider's main customer pool with room for one more.

    New subscribers land in the provider's mainstream product -- the
    most densely subscribed pool -- not in a niche near-empty one (a
    huge sparse pool can hold more customers in absolute terms while
    clearly not being where sign-ups go).
    """
    candidates = [p for p in pools if p.n_customers < p.nslots]
    if not candidates:
        raise ValueError("no pool has a free slot")
    return max(candidates, key=lambda p: (p.occupancy, p.n_customers))


def clone_mac_into_ases(
    internet: SimInternet,
    mac: int,
    asns: list[int],
    first_device_id: int,
    addressing: AddressingMode = AddressingMode.EUI64,
) -> list[CpeDevice]:
    """Plant devices sharing one MAC in each listed AS (MAC reuse).

    Models the manufacturer pathology of Figure 11: the identical EUI-64
    IID observed daily in ASes on several continents.
    """
    created = []
    next_id = first_device_id
    for asn in asns:
        provider = internet.provider_of_asn(asn)
        if provider is None:
            raise ValueError(f"AS{asn} not in this internet")
        if not provider.pools:
            raise ValueError(f"AS{asn} has no pools")
        pool = _representative_pool(provider.pools)
        device = CpeDevice(device_id=next_id, mac=mac, addressing=addressing)
        pool.add_device(device)
        created.append(device)
        next_id += 1
    return created


def apply_vendor_remediation(
    internet: SimInternet,
    vendor: str,
    at_hours: float,
    oui_registry: OuiRegistry | None = None,
) -> int:
    """Schedule the Section 8 firmware fix for every device of *vendor*.

    From *at_hours* on, the vendor's EUI-64 devices use privacy
    addressing instead.  Returns how many devices were remediated.
    """
    registry = oui_registry or OuiRegistry.bundled()
    count = 0
    for device in internet.all_devices():
        if device.addressing is not AddressingMode.EUI64:
            continue
        if registry.vendor_of_mac(device.mac) != vendor:
            continue
        device.privacy_switch_hours = at_hours
        count += 1
    return count


def retire_device(internet: SimInternet, asn: int, device_id: int, at_hours: float) -> None:
    """Take a device out of service at *at_hours* (outage / cancellation)."""
    pool, index = _find_pool_of_device(internet, asn, device_id)
    device = pool.devices[index]
    device.active_until_hours = min(device.active_until_hours, at_hours)
