"""Provider (ISP) model: an AS with BGP space carved into rotation pools.

A provider advertises one or more BGP prefixes and hosts rotation pools
within them.  Pools may differ in delegation size (Figure 6 shows one
Versatel /48 split into /56s and another into /64s) and in rotation
policy.  The provider also owns a small set of statically numbered core
router interfaces, which appear as intermediate traceroute hops and as
"no route" responders for probes into unallocated space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IID_BITS, Prefix
from repro.simnet.device import CpeDevice
from repro.simnet.pool import Residence, RotationPool


@dataclass
class Provider:
    """One autonomous system operating rotation pools."""

    asn: int
    name: str
    country: str
    bgp_prefixes: list[Prefix] = field(default_factory=list)
    pools: list[RotationPool] = field(default_factory=list)
    core_hops: int = 3  # intermediate routers on paths into this AS

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"bad ASN: {self.asn}")
        for pool in self.pools:
            self._check_pool_covered(pool)

    def _check_pool_covered(self, pool: RotationPool) -> None:
        if not any(bgp.contains_prefix(pool.prefix) for bgp in self.bgp_prefixes):
            raise ValueError(
                f"pool {pool.prefix} outside AS{self.asn} BGP space"
            )

    def add_pool(self, pool: RotationPool) -> None:
        self._check_pool_covered(pool)
        self.pools.append(pool)

    def pool_covering(self, addr: int) -> RotationPool | None:
        """The rotation pool whose prefix contains *addr*, if any."""
        for pool in self.pools:
            if addr in pool.prefix:
                return pool
        return None

    def resolve(self, addr: int, t_hours: float) -> Residence | None:
        """Resolve a probed address to a device tenancy, if delegated."""
        pool = self.pool_covering(addr)
        if pool is None:
            return None
        return pool.resolve(addr, t_hours)

    def owns(self, addr: int) -> bool:
        return any(addr in prefix for prefix in self.bgp_prefixes)

    def all_devices(self) -> list[CpeDevice]:
        """Every customer device across all pools."""
        return [device for pool in self.pools for device in pool.devices]

    def core_router_address(self, hop_index: int) -> int:
        """Statically numbered core interface address for hop *hop_index*.

        Core interfaces live in the first /64 of the provider's first BGP
        prefix with small manual IIDs -- "managed network infrastructure
        is typically statically addressed" (Section 3.1).
        """
        if not self.bgp_prefixes:
            raise ValueError(f"AS{self.asn} has no BGP prefix")
        if hop_index < 0:
            raise ValueError(f"bad hop index: {hop_index}")
        base64 = self.bgp_prefixes[0].network >> IID_BITS
        return (base64 << IID_BITS) | (hop_index + 1)

    def describe(self) -> str:
        pools = ", ".join(
            f"{p.prefix}->{'/' + str(p.delegation_plen)}" for p in self.pools
        )
        return f"AS{self.asn} {self.name} ({self.country}): {pools or 'no pools'}"
