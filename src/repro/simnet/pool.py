"""Rotation pools: the address ranges within which delegations move.

A pool owns a prefix (e.g. a /46), divides it into delegation-sized slots
(e.g. /56s -> 2^10 slots), and houses a set of customers whose slot
assignment at any time is given by the pool's rotation policy.  Resolution
is the heart of the simulator: given a probed address and a time, find the
device whose delegation covers it -- in O(1), by inverting the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IID_BITS, Prefix
from repro.simnet.device import CpeDevice
from repro.simnet.rotation import NoRotation, RotationPolicy


@dataclass(frozen=True, slots=True)
class Residence:
    """A device's tenancy of one delegation at one instant."""

    device: CpeDevice
    delegation: Prefix
    wan_address: int


@dataclass
class RotationPool:
    """One provider rotation pool."""

    prefix: Prefix
    delegation_plen: int
    policy: RotationPolicy = field(default_factory=NoRotation)
    pool_key: int = 0
    devices: list[CpeDevice] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.prefix.plen <= self.delegation_plen <= IID_BITS:
            raise ValueError(
                f"delegation /{self.delegation_plen} must be within "
                f"[/{self.prefix.plen}, /64]"
            )
        if len(self.devices) > self.nslots:
            raise ValueError(
                f"{len(self.devices)} devices exceed {self.nslots} slots"
            )

    @property
    def nslots(self) -> int:
        return self.prefix.num_subnets(self.delegation_plen)

    @property
    def n_customers(self) -> int:
        return len(self.devices)

    @property
    def occupancy(self) -> float:
        return self.n_customers / self.nslots

    def add_device(self, device: CpeDevice) -> int:
        """Register another customer; returns its customer index."""
        if len(self.devices) >= self.nslots:
            raise ValueError("pool is full")
        self.devices.append(device)
        return len(self.devices) - 1

    # -- ground-truth queries (device -> where) ---------------------------

    def delegation_of(self, customer_index: int, t_hours: float) -> Prefix:
        """The delegation held by customer *customer_index* at *t_hours*.

        During a staggered rotation window the customer keeps its old
        delegation until the new slot's handover time; between the old
        slot's handover and the new slot's activation the customer is
        mid-renumbering and this returns the old (now shadowed)
        delegation.
        """
        if not 0 <= customer_index < self.n_customers:
            raise IndexError(f"no customer {customer_index}")
        policy, key, nslots = self.policy, self.pool_key, self.nslots
        epoch = policy.base_epoch(t_hours)
        if policy.offset_in_epoch(t_hours) < policy.customer_jitter(customer_index, key):
            epoch -= 1  # this customer has not moved yet
        slot = policy.slot_of(customer_index, epoch, nslots, key)
        return self.prefix.subnet(slot, self.delegation_plen)

    def wan_address_of(self, customer_index: int, t_hours: float) -> int:
        """The customer's CPE WAN address at *t_hours*.

        The WAN interface sits on the first /64 of the delegation (the
        periphery subnet of Figure 1); its IID comes from the device's
        addressing mode.
        """
        delegation = self.delegation_of(customer_index, t_hours)
        net64 = delegation.network >> IID_BITS
        device = self.devices[customer_index]
        return (net64 << IID_BITS) | device.wan_iid(net64, t_hours)

    # -- attacker-facing resolution (address -> device) --------------------

    def resolve(self, addr: int, t_hours: float) -> Residence | None:
        """Which device's delegation covers *addr* at *t_hours*, if any.

        The slot's occupant is the current epoch's tenant once that
        tenant's staggered move time has passed (arriving tenants evict
        laggards); otherwise it is the previous epoch's tenant if that
        tenant has not yet moved away; otherwise the slot is vacant.
        """
        if addr not in self.prefix:
            return None
        slot = self.prefix.subnet_index(addr, self.delegation_plen)
        policy, key, nslots = self.policy, self.pool_key, self.nslots
        epoch = policy.base_epoch(t_hours)
        offset = policy.offset_in_epoch(t_hours)
        n = self.n_customers

        occupant: int | None = None
        incoming = policy.customer_of(slot, epoch, nslots, key)
        if incoming < n and offset >= policy.customer_jitter(incoming, key):
            occupant = incoming
        else:
            outgoing = policy.customer_of(slot, epoch - 1, nslots, key)
            if outgoing < n and offset < policy.customer_jitter(outgoing, key):
                occupant = outgoing
        if occupant is None:
            return None

        device = self.devices[occupant]
        delegation = self.prefix.subnet(slot, self.delegation_plen)
        net64 = delegation.network >> IID_BITS
        wan = (net64 << IID_BITS) | device.wan_iid(net64, t_hours)
        return Residence(device=device, delegation=delegation, wan_address=wan)

    def customer_index_of(self, device_id: int) -> int | None:
        """Find a device's customer index by its id (ground-truth helper)."""
        for index, device in enumerate(self.devices):
            if device.device_id == device_id:
                return index
        return None
