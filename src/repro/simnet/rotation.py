"""Prefix-rotation policies: who holds which delegation slot, when.

A rotation pool divides its prefix into ``nslots`` delegation-sized
slots.  A policy is an *invertible* mapping ``(customer index, epoch) ->
slot``: the simulator resolves probes by inverting it, so no per-epoch
assignment tables exist.

Three policies cover the behaviours the paper observes:

* :class:`NoRotation` -- delegation never moves (half the studied ASes,
  Section 5.3).  Customers are still scattered across the pool by a fixed
  permutation so occupancy looks realistic.
* :class:`IncrementRotation` -- the slot advances by one each epoch,
  wrapping modulo the pool size.  This is AS8881's observed behaviour
  (Figure 9: "each EUI-64 IID's /64 prefix increments each day ...
  wraps modulo 2^18 to remain within the /46").
* :class:`ShuffleRotation` -- a fresh keyed permutation each epoch,
  modelling providers that reassign randomly.

Epochs advance at ``rotation_hour`` local time; a ``window_hours`` spread
staggers individual customers across the reassignment window, producing
Figure 10's early-morning density migration rather than a cliff.  A
customer moves *atomically* at its own staggered time -- it leaves the old
delegation and claims the new one in one step -- and an arriving tenant
evicts a laggard occupant early (the laggard is then briefly
mid-renumbering and unreachable, as real DHCPv6 clients are).  These two
rules guarantee that at every instant each slot has at most one tenant
and each device occupies at most one slot.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache

from repro.scan.permutation import FeistelPermutation
from repro.util import unit_float


@dataclass(frozen=True)
class RotationPolicy(ABC):
    """Base class: epoch timing plus the slot assignment bijection."""

    interval_hours: float = 24.0
    rotation_hour: float = 0.0  # local hour at which epochs advance
    window_hours: float = 0.0  # stagger width for per-customer jitter

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise ValueError(f"interval_hours must be positive: {self.interval_hours}")
        if self.window_hours < 0 or self.window_hours >= self.interval_hours:
            raise ValueError(
                f"window_hours must be in [0, interval): {self.window_hours}"
            )

    @property
    def rotates(self) -> bool:
        return True

    def customer_jitter(self, customer_index: int, pool_key: int) -> float:
        """When within the rotation window this customer moves, in hours."""
        if self.window_hours == 0.0:
            return 0.0
        return unit_float(pool_key, customer_index, 0x117) * self.window_hours

    def base_epoch(self, t_hours: float) -> int:
        """The epoch in effect at *t_hours*, ignoring per-customer stagger."""
        return math.floor((t_hours - self.rotation_hour) / self.interval_hours)

    def offset_in_epoch(self, t_hours: float) -> float:
        """Hours since the current base epoch began, in [0, interval)."""
        return (
            t_hours
            - self.rotation_hour
            - self.base_epoch(t_hours) * self.interval_hours
        )

    @abstractmethod
    def slot_of(self, customer_index: int, epoch: int, nslots: int, pool_key: int) -> int:
        """Slot held by *customer_index* during *epoch*."""

    @abstractmethod
    def customer_of(self, slot: int, epoch: int, nslots: int, pool_key: int) -> int:
        """Customer index that holds *slot* during *epoch* (may be vacant:
        indices >= the pool's customer count mean the slot is empty)."""


@lru_cache(maxsize=4096)
def _cached_perm(nslots: int, key: int) -> FeistelPermutation:
    """Permutations are stateless; cache them -- they sit on the per-probe
    hot path of the simulator."""
    return FeistelPermutation(nslots, key=key)


def _scatter(nslots: int, pool_key: int) -> FeistelPermutation:
    """The pool's fixed customer-scattering permutation."""
    return _cached_perm(nslots, pool_key ^ 0x5CA7)


@dataclass(frozen=True)
class NoRotation(RotationPolicy):
    """Delegations are fixed for the life of the customer."""

    interval_hours: float = float(2**40)  # effectively never

    def __post_init__(self) -> None:
        # The giant interval trips the base sanity window check only if
        # window_hours was set; keep the validation semantics.
        super().__post_init__()

    @property
    def rotates(self) -> bool:
        return False

    def slot_of(self, customer_index: int, epoch: int, nslots: int, pool_key: int) -> int:
        return _scatter(nslots, pool_key).forward(customer_index % nslots)

    def customer_of(self, slot: int, epoch: int, nslots: int, pool_key: int) -> int:
        return _scatter(nslots, pool_key).inverse(slot)


@dataclass(frozen=True)
class SequentialAssignment(NoRotation):
    """No rotation, delegations packed from the bottom of the pool.

    Models providers that hand out delegations in address order (typical
    for static /64-per-customer deployments): the low end of the prefix
    is dense, the high end dark -- the texture of the paper's Figure 3c.
    """

    def slot_of(self, customer_index: int, epoch: int, nslots: int, pool_key: int) -> int:
        return customer_index % nslots

    def customer_of(self, slot: int, epoch: int, nslots: int, pool_key: int) -> int:
        return slot


@dataclass(frozen=True)
class IncrementRotation(RotationPolicy):
    """Slot advances by one per epoch, modulo the pool (Figure 9)."""

    def slot_of(self, customer_index: int, epoch: int, nslots: int, pool_key: int) -> int:
        base = _scatter(nslots, pool_key).forward(customer_index % nslots)
        return (base + epoch) % nslots

    def customer_of(self, slot: int, epoch: int, nslots: int, pool_key: int) -> int:
        base = (slot - epoch) % nslots
        return _scatter(nslots, pool_key).inverse(base)


@dataclass(frozen=True)
class ShuffleRotation(RotationPolicy):
    """A fresh keyed permutation of customers to slots every epoch."""

    def _perm(self, epoch: int, nslots: int, pool_key: int) -> FeistelPermutation:
        return _cached_perm(nslots, pool_key ^ (epoch * 0x9E3779B9) ^ 0xF00D)

    def slot_of(self, customer_index: int, epoch: int, nslots: int, pool_key: int) -> int:
        return self._perm(epoch, nslots, pool_key).forward(customer_index % nslots)

    def customer_of(self, slot: int, epoch: int, nslots: int, pool_key: int) -> int:
        return self._perm(epoch, nslots, pool_key).inverse(slot)
