"""Simulated IPv6 Internet: the reproduction's measurement substrate.

The paper measures the production Internet; this subpackage provides a
synthetic Internet with the same *observable surface*: providers advertise
BGP prefixes, carve them into rotation pools, delegate customer prefixes
of provider-specific sizes, and rotate those delegations on schedules.
Behind each delegation sits a CPE device with a vendor MAC that answers
probes to nonexistent internal hosts with ICMPv6 errors from its WAN
address -- exactly the behaviour the paper's attacker exploits.

Ground truth (which device owns which delegation when) stays inside the
simulator; the inference pipeline sees only probe responses.
"""

from repro.simnet.builder import (
    InternetSpec,
    PoolSpec,
    ProviderSpec,
    build_internet,
    build_paper_internet,
)
from repro.simnet.clock import HOURS_PER_DAY, day_of, hour_of_day, hours, seconds
from repro.simnet.device import AddressingMode, CpeDevice, ResponsePolicy
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import (
    IncrementRotation,
    NoRotation,
    RotationPolicy,
    ShuffleRotation,
)
from repro.simnet.vantage import FlowTap

__all__ = [
    "AddressingMode",
    "CpeDevice",
    "FlowTap",
    "HOURS_PER_DAY",
    "IncrementRotation",
    "InternetSpec",
    "NoRotation",
    "PoolSpec",
    "Provider",
    "ProviderSpec",
    "ResponsePolicy",
    "RotationPolicy",
    "RotationPool",
    "ShuffleRotation",
    "SimInternet",
    "build_internet",
    "build_paper_internet",
    "day_of",
    "hour_of_day",
    "hours",
    "seconds",
]
