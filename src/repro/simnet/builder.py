"""Scenario builders: from declarative specs to a probe-able Internet.

:func:`build_internet` turns :class:`InternetSpec` into a fully populated
:class:`SimInternet`.  :func:`build_paper_internet` constructs the default
reproduction scenario: a scaled-down Internet whose AS mix, vendor mixes,
allocation sizes, rotation policies, and pathologies mirror what the
paper measured (Table 1's AS/country ranking, Figure 4's homogeneity,
Figure 5's allocation-size distributions, Section 5.5's pathologies).

Address plan: every named provider carries a representative real-world
/32 (Versatel really is 2001:16b8::/32); synthesized tail ASes draw /32s
from 3a00::/8.  Pools are carved at /44 boundaries from the start of each
provider's /32 so that seed-campaign traceroutes over the low /48s of
each /32 (the scaled CAIDA stand-in) can discover them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.data.asinfo_db import TAIL_COUNTRIES
from repro.data.oui_db import VENDOR_OUIS
from repro.net.addr import Prefix
from repro.net.mac import mac_from_oui, parse_oui
from repro.simnet.device import AddressingMode, CpeDevice, ResponsePolicy
from repro.simnet.events import clone_mac_into_ases, switch_provider
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import (
    IncrementRotation,
    NoRotation,
    RotationPolicy,
    SequentialAssignment,
    ShuffleRotation,
)

# Pools are carved on /44 boundaries inside each provider /32.
_POOL_SPACING_PLEN = 44
# The seed/expansion campaigns cover this many leading /48s per /32;
# pool carving must stay inside it.
SEED_COVERAGE_48S = 256

_RESPONSE_MIX: tuple[tuple[str, float], ...] = (
    ("admin_prohibited", 0.40),
    ("addr_unreachable", 0.25),
    ("no_route", 0.20),
    ("hop_limit_exceeded", 0.10),
    ("silent", 0.05),
)

_POLICY_FACTORIES = {
    "admin_prohibited": ResponsePolicy.admin_prohibited,
    "addr_unreachable": ResponsePolicy.addr_unreachable,
    "no_route": ResponsePolicy.no_route,
    "hop_limit_exceeded": ResponsePolicy.hop_limit_exceeded,
    "silent": ResponsePolicy.silent,
}


@dataclass(frozen=True)
class PoolSpec:
    """Declarative description of one rotation pool."""

    pool_plen: int = 46
    delegation_plen: int = 56
    occupancy: float = 0.6
    policy: RotationPolicy = field(default_factory=IncrementRotation)

    def __post_init__(self) -> None:
        if not _POOL_SPACING_PLEN <= self.pool_plen <= 56:
            raise ValueError(
                f"pool_plen must be in [{_POOL_SPACING_PLEN}, 56], got {self.pool_plen}"
            )
        if not self.pool_plen <= self.delegation_plen <= 64:
            raise ValueError(
                f"delegation /{self.delegation_plen} outside "
                f"[/{self.pool_plen}, /64]"
            )
        if not 0.0 < self.occupancy <= 1.0:
            raise ValueError(f"occupancy must be in (0, 1], got {self.occupancy}")


@dataclass(frozen=True)
class ProviderSpec:
    """Declarative description of one provider."""

    asn: int
    name: str
    country: str
    pools: tuple[PoolSpec, ...]
    bgp_prefix: str | None = None  # None -> allocate from synthetic space
    vendor_mix: tuple[tuple[str, float], ...] = (("AVM", 1.0),)
    eui64_fraction: float = 0.85
    online_fraction: float = 0.96
    new_since_seed_fraction: float = 0.15
    retired_fraction: float = 0.04
    response_mix: tuple[tuple[str, float], ...] = _RESPONSE_MIX

    def __post_init__(self) -> None:
        if not self.pools:
            raise ValueError(f"AS{self.asn}: at least one pool required")
        if abs(sum(w for _, w in self.vendor_mix) - 1.0) > 1e-6:
            raise ValueError(f"AS{self.asn}: vendor_mix weights must sum to 1")
        if abs(sum(w for _, w in self.response_mix) - 1.0) > 1e-6:
            raise ValueError(f"AS{self.asn}: response_mix weights must sum to 1")
        unknown = [name for name, _ in self.response_mix if name not in _POLICY_FACTORIES]
        if unknown:
            raise ValueError(f"AS{self.asn}: unknown response policies {unknown}")
        for fraction in (
            self.eui64_fraction,
            self.online_fraction,
            self.new_since_seed_fraction,
            self.retired_fraction,
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"AS{self.asn}: fraction {fraction} outside [0,1]")


@dataclass(frozen=True)
class InternetSpec:
    """A whole simulated Internet: providers plus global timing."""

    providers: tuple[ProviderSpec, ...]
    seed: int = 0
    seed_campaign_hours: float = -365.0 * 24.0  # CAIDA seed ran ~a year early
    campaign_span_hours: float = 44.0 * 24.0


class _DeviceFactory:
    """Allocates unique device ids and vendor MACs."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._next_id = 1
        self._serials: dict[int, int] = {}

    def next_device_id(self) -> int:
        device_id = self._next_id
        self._next_id += 1
        return device_id

    def mac_for_vendor(self, vendor: str) -> int:
        ouis = VENDOR_OUIS.get(vendor)
        if not ouis:
            raise ValueError(f"unknown vendor {vendor!r}")
        oui = parse_oui(self._rng.choice(ouis))
        serial = self._serials.get(oui, 0)
        if serial >= 1 << 24:
            raise ValueError(f"OUI {oui:#08x} exhausted")
        self._serials[oui] = serial + 1
        return mac_from_oui(oui, serial)


def _pick_weighted(rng: random.Random, mix: tuple[tuple[str, float], ...]) -> str:
    roll = rng.random()
    acc = 0.0
    for name, weight in mix:
        acc += weight
        if roll < acc:
            return name
    return mix[-1][0]


def _make_device(
    factory: _DeviceFactory,
    rng: random.Random,
    spec: ProviderSpec,
    internet_spec: InternetSpec,
) -> CpeDevice:
    vendor = _pick_weighted(rng, spec.vendor_mix)
    mac = factory.mac_for_vendor(vendor)
    addressing = (
        AddressingMode.EUI64
        if rng.random() < spec.eui64_fraction
        else AddressingMode.PRIVACY
    )
    policy = _POLICY_FACTORIES[_pick_weighted(rng, spec.response_mix)]()

    active_from = -math.inf
    active_until = math.inf
    if rng.random() < spec.new_since_seed_fraction:
        active_from = rng.uniform(internet_spec.seed_campaign_hours, 0.0)
    elif rng.random() < spec.retired_fraction:
        active_until = rng.uniform(0.0, internet_spec.campaign_span_hours)

    return CpeDevice(
        device_id=factory.next_device_id(),
        mac=mac,
        addressing=addressing,
        policy=policy,
        active_from_hours=active_from,
        active_until_hours=active_until,
        online_fraction=spec.online_fraction,
    )


_TAIL_BASE_TOP32 = 0x3A00_0000


def _allocate_bgp_prefix(spec: ProviderSpec, tail_index: int) -> Prefix:
    if spec.bgp_prefix is not None:
        return Prefix.parse(spec.bgp_prefix)
    top32 = _TAIL_BASE_TOP32 + (tail_index << 8)
    return Prefix(top32 << 96, 32)


def _build_provider(
    spec: ProviderSpec,
    bgp_prefix: Prefix,
    factory: _DeviceFactory,
    rng: random.Random,
    internet_spec: InternetSpec,
) -> Provider:
    provider = Provider(
        asn=spec.asn,
        name=spec.name,
        country=spec.country,
        bgp_prefixes=[bgp_prefix],
    )
    for index, pool_spec in enumerate(spec.pools):
        anchor = bgp_prefix.subnet(index, _POOL_SPACING_PLEN)
        if (index + 1) * (1 << (48 - _POOL_SPACING_PLEN)) > SEED_COVERAGE_48S:
            raise ValueError(
                f"AS{spec.asn}: pool {index} falls outside seed coverage"
            )
        pool_prefix = Prefix(anchor.network, pool_spec.pool_plen)
        pool = RotationPool(
            prefix=pool_prefix,
            delegation_plen=pool_spec.delegation_plen,
            policy=pool_spec.policy,
            pool_key=rng.getrandbits(63) | 1,
        )
        n_customers = max(1, int(pool.nslots * pool_spec.occupancy))
        for _ in range(n_customers):
            pool.add_device(_make_device(factory, rng, spec, internet_spec))
        provider.add_pool(pool)
    return provider


def build_internet(spec: InternetSpec) -> SimInternet:
    """Materialize a simulated Internet from *spec* (deterministic)."""
    rng = random.Random(spec.seed)
    factory = _DeviceFactory(rng)
    providers = []
    tail_index = 0
    for provider_spec in spec.providers:
        bgp_prefix = _allocate_bgp_prefix(provider_spec, tail_index)
        if provider_spec.bgp_prefix is None:
            tail_index += 1
        providers.append(
            _build_provider(provider_spec, bgp_prefix, factory, rng, spec)
        )
    internet = SimInternet(providers)
    internet._device_factory = factory  # scenario mutators may need fresh ids
    return internet


def next_device_id(internet: SimInternet) -> int:
    """Fresh unique device id for post-build scenario events."""
    factory = getattr(internet, "_device_factory", None)
    if factory is not None:
        return factory.next_device_id()
    return 1 + max((d.device_id for d in internet.all_devices()), default=0)


# ---------------------------------------------------------------------------
# The default paper-mix scenario
# ---------------------------------------------------------------------------

_NAMED_PROVIDER_SPECS: tuple[ProviderSpec, ...] = (
    # AS8881 Versatel: Table 1's dominant rotator.  Daily increment
    # rotation inside /46 pools (Figures 9, 10), reassignment staggered
    # over the 00:00-06:00 window, mixed /56 and /64 delegations
    # (Figure 6).
    ProviderSpec(
        asn=8881,
        name="Versatel / 1&1",
        country="DE",
        bgp_prefix="2001:16b8::/32",
        pools=tuple(
            [
                PoolSpec(46, 56, 0.60, IncrementRotation(24.0, 0.0, 6.0))
                for _ in range(7)
            ]
            + [PoolSpec(46, 64, 0.02, IncrementRotation(24.0, 0.0, 6.0))]
        ),
        vendor_mix=(("AVM", 0.92), ("Technicolor", 0.05), ("Sagemcom", 0.03)),
        eui64_fraction=0.90,
    ),
    # AS6799 OTE: second-largest rotator (Greece).
    ProviderSpec(
        asn=6799,
        name="OTE (Hellenic Telecom)",
        country="GR",
        bgp_prefix="2a02:580::/32",
        pools=tuple(
            [PoolSpec(46, 56, 0.55, IncrementRotation(24.0, 1.0, 4.0)) for _ in range(5)]
            + [PoolSpec(48, 60, 0.30, ShuffleRotation(48.0))]
        ),
        vendor_mix=(("ZTE", 0.72), ("Sagemcom", 0.18), ("Huawei", 0.10)),
        eui64_fraction=0.80,
    ),
    ProviderSpec(
        asn=1241,
        name="Forthnet",
        country="GR",
        bgp_prefix="2a02:2148::/32",
        pools=(
            PoolSpec(46, 56, 0.45, IncrementRotation(24.0, 2.0, 4.0)),
            PoolSpec(46, 56, 0.45, IncrementRotation(24.0, 2.0, 4.0)),
        ),
        vendor_mix=(("ZTE", 0.70), ("Technicolor", 0.20), ("Huawei", 0.10)),
    ),
    ProviderSpec(
        asn=9808,
        name="China Mobile Guangdong",
        country="CN",
        bgp_prefix="2409:8000::/32",
        pools=(
            PoolSpec(46, 56, 0.50, ShuffleRotation(24.0, 2.0)),
            PoolSpec(48, 64, 0.06, ShuffleRotation(24.0, 2.0)),
        ),
        vendor_mix=(("Huawei", 0.90), ("ZTE", 0.08), ("FiberHome", 0.02)),
        eui64_fraction=0.75,
    ),
    # AS3320 Deutsche Telekom: rotating /46 pools; also one endpoint of
    # the Figure 12 provider switches.
    ProviderSpec(
        asn=3320,
        name="Deutsche Telekom",
        country="DE",
        bgp_prefix="2003:e2::/32",
        pools=(PoolSpec(46, 56, 0.55, IncrementRotation(24.0, 3.0, 3.0)),),
        vendor_mix=(("AVM", 0.80), ("Sagemcom", 0.15), ("Huawei", 0.05)),
    ),
    # AS8422 NetCologne: the paper's homogeneity exemplar (99.98% AVM).
    ProviderSpec(
        asn=8422,
        name="NetCologne",
        country="DE",
        bgp_prefix="2001:4dd0::/32",
        pools=(PoolSpec(46, 56, 0.55, IncrementRotation(24.0, 2.0, 4.0)),),
        vendor_mix=(("AVM", 0.9990), ("Lancom Systems", 0.0008), ("Zyxel", 0.0002)),
        eui64_fraction=0.92,
    ),
    # AS7552 Viettel: the other homogeneity exemplar (99.6% ZTE); slow
    # rotation (Table 2's IID #1 saw only 2 prefixes in a week).
    ProviderSpec(
        asn=7552,
        name="Viettel Group",
        country="VN",
        bgp_prefix="2405:4800::/32",
        pools=(PoolSpec(48, 56, 0.55, ShuffleRotation(96.0)),),
        vendor_mix=(("ZTE", 0.996), ("Huawei", 0.004)),
        eui64_fraction=0.88,
    ),
    # AS9146 BH Telecom: the /60-allocation exemplar (Figure 3b).
    ProviderSpec(
        asn=9146,
        name="BH Telecom",
        country="BA",
        bgp_prefix="2a03:b240::/32",
        pools=(PoolSpec(48, 60, 0.40, ShuffleRotation(48.0)),),
        vendor_mix=(("Huawei", 0.75), ("ZTE", 0.15), ("Sagemcom", 0.10)),
    ),
    # AS6568 Entel Bolivia: the /56-allocation exemplar (Figure 3a).
    ProviderSpec(
        asn=6568,
        name="Entel Bolivia",
        country="BO",
        bgp_prefix="2800:cd0::/32",
        pools=(
            PoolSpec(47, 56, 0.68, ShuffleRotation(72.0)),
            PoolSpec(47, 56, 0.68, ShuffleRotation(72.0)),
        ),
        vendor_mix=(("Huawei", 0.92), ("ZTE", 0.08)),
    ),
    # AS7682 Starcat: the /64-allocation exemplar (Figure 3c); does not
    # rotate, so its inferred rotation pool collapses to /64.
    ProviderSpec(
        asn=7682,
        name="Starcat Cable Network",
        country="JP",
        bgp_prefix="2405:6580::/32",
        pools=(PoolSpec(48, 64, 0.10, SequentialAssignment()),),
        vendor_mix=(("Sercomm", 0.70), ("MitraStar", 0.30)),
        eui64_fraction=0.85,
    ),
    ProviderSpec(
        asn=56044,
        name="China Mobile Zhejiang",
        country="CN",
        bgp_prefix="2409:8a38::/32",
        pools=(PoolSpec(46, 56, 0.40, ShuffleRotation(48.0)),),
        vendor_mix=(("Huawei", 0.92), ("ZTE", 0.08)),
    ),
    ProviderSpec(
        asn=262557,
        name="Claro Fibra",
        country="BR",
        bgp_prefix="2804:3f08::/32",
        pools=(PoolSpec(48, 56, 0.50, ShuffleRotation(72.0)),),
        vendor_mix=(("Askey", 0.70), ("Arris", 0.20), ("Technicolor", 0.10)),
    ),
    ProviderSpec(
        asn=27699,
        name="Telefonica Brasil",
        country="BR",
        bgp_prefix="2804:14c::/32",
        pools=(
            PoolSpec(46, 56, 0.45, ShuffleRotation(48.0)),
            PoolSpec(48, 64, 0.06, SequentialAssignment()),
        ),
        vendor_mix=(("Askey", 0.40), ("Sagemcom", 0.35), ("Arris", 0.25)),
    ),
    ProviderSpec(
        asn=14868,
        name="Copel Telecom",
        country="BR",
        bgp_prefix="2804:4e8::/32",
        pools=(PoolSpec(48, 56, 0.50, ShuffleRotation(96.0)),),
        vendor_mix=(("Arris", 0.70), ("Technicolor", 0.30)),
    ),
    ProviderSpec(
        asn=10834,
        name="Telefonica de Argentina",
        country="AR",
        bgp_prefix="2800:340::/32",
        pools=(PoolSpec(48, 56, 0.45, ShuffleRotation(72.0)),),
        vendor_mix=(("Sagemcom", 0.70), ("Technicolor", 0.30)),
    ),
    ProviderSpec(
        asn=200924,
        name="Stadtwerke Netz",
        country="DE",
        bgp_prefix="2a0c:9a40::/32",
        pools=(PoolSpec(48, 56, 0.40, IncrementRotation(24.0, 1.0, 2.0)),),
        vendor_mix=(("AVM", 0.90), ("Lancom Systems", 0.10)),
    ),
    # Non-rotating / low-density extras exercised by Sections 4.2 & 5.3.
    ProviderSpec(
        asn=12322,
        name="Free SAS",
        country="FR",
        bgp_prefix="2a01:e00::/32",
        pools=(PoolSpec(46, 56, 0.50, NoRotation()),),
        vendor_mix=(("Sagemcom", 0.75), ("Technicolor", 0.25)),
    ),
    ProviderSpec(
        asn=6057,
        name="Antel Uruguay",
        country="UY",
        bgp_prefix="2800:a0::/32",
        pools=(PoolSpec(48, 56, 0.45, ShuffleRotation(72.0)),),
        vendor_mix=(("ZTE", 0.92), ("Huawei", 0.08)),
    ),
    # A provider that delegates whole /48s to end sites: the low-density
    # class that Section 4.2's threshold filters out.
    ProviderSpec(
        asn=3462,
        name="Chunghwa Telecom",
        country="TW",
        bgp_prefix="2001:b000::/32",
        pools=(PoolSpec(44, 48, 0.50, NoRotation()),),
        vendor_mix=(("Zyxel", 0.60), ("D-Link", 0.40)),
    ),
    ProviderSpec(
        asn=12389,
        name="Rostelecom",
        country="RU",
        bgp_prefix="2a02:2690::/32",
        pools=(PoolSpec(48, 60, 0.35, ShuffleRotation(96.0)),),
        vendor_mix=(("Huawei", 0.70), ("ZTE", 0.20), ("TP-Link", 0.10)),
    ),
    ProviderSpec(
        asn=4134,
        name="China Telecom",
        country="CN",
        bgp_prefix="240e:100::/32",
        pools=(PoolSpec(46, 56, 0.35, ShuffleRotation(48.0)),),
        vendor_mix=(("Huawei", 0.68), ("ZTE", 0.22), ("FiberHome", 0.10)),
        eui64_fraction=0.70,
    ),
    ProviderSpec(
        asn=6057 + 60000,  # AS66057, a second Uruguayan eyeball network
        name="Montevideo Cable",
        country="UY",
        bgp_prefix="2800:b00::/32",
        pools=(PoolSpec(48, 56, 0.40, NoRotation()),),
        vendor_mix=(("ZTE", 0.80), ("Huawei", 0.20)),
    ),
)

_TAIL_VENDOR_POOL = (
    "AVM",
    "ZTE",
    "Huawei",
    "Sagemcom",
    "Arris",
    "Technicolor",
    "TP-Link",
    "Zyxel",
    "Sercomm",
    "Askey",
    "Netgear",
    "D-Link",
    "MitraStar",
    "Compal Broadband",
    "Calix",
    "Nokia",
)

# Dominant-vendor share distribution shaping Figure 4's homogeneity CDF:
# half the ASes above 0.9, three quarters above ~0.67.
_TAIL_DOMINANCE = (0.995, 0.98, 0.95, 0.92, 0.91, 0.86, 0.78, 0.68, 0.55, 0.40)


def _tail_provider_spec(index: int, rng: random.Random) -> ProviderSpec:
    countries = [c for c, w in TAIL_COUNTRIES for _ in range(w)]
    country = countries[index % len(countries)]
    dominant = rng.choice(_TAIL_VENDOR_POOL)
    second = rng.choice([v for v in _TAIL_VENDOR_POOL if v != dominant])
    third = rng.choice([v for v in _TAIL_VENDOR_POOL if v not in (dominant, second)])
    share = rng.choice(_TAIL_DOMINANCE)
    rest = 1.0 - share
    vendor_mix = ((dominant, share), (second, rest * 0.7), (third, rest * 0.3))

    # Class mix tuned so the device-weighted allocation-size distribution
    # lands near Figure 5a (/56 plurality ~40%, /64 ~30%, /60 inflection)
    # and the AS-weighted one near Figure 5b (~half of ASes at /56).
    roll = rng.random()
    if roll < 0.35:
        delegation, pool_plen, occupancy = 56, 46, 0.55
    elif roll < 0.55:
        delegation, pool_plen, occupancy = 56, 48, 0.50
    elif roll < 0.77:
        delegation, pool_plen, occupancy = 64, 48, 0.06
    elif roll < 0.92:
        delegation, pool_plen, occupancy = 60, 48, 0.25
    else:
        delegation, pool_plen, occupancy = 48, 44, 0.50  # /48-to-endsite, low density

    policy: RotationPolicy
    policy_roll = rng.random()
    if policy_roll < 0.45:
        # Non-rotators; /64-per-customer providers assign sequentially.
        policy = SequentialAssignment() if delegation == 64 else NoRotation()
    elif policy_roll < 0.75:
        policy = IncrementRotation(24.0, rng.uniform(0, 5), rng.uniform(1, 5))
    else:
        policy = ShuffleRotation(rng.choice([24.0, 48.0, 72.0, 96.0]))

    return ProviderSpec(
        asn=64512 + index,
        name=f"Tail ISP {index}",
        country=country,
        pools=(PoolSpec(pool_plen, delegation, occupancy, policy),),
        vendor_mix=vendor_mix,
        eui64_fraction=rng.uniform(0.6, 0.95),
    )


def paper_internet_spec(seed: int = 0, n_tail_ases: int = 90) -> InternetSpec:
    """The spec behind :func:`build_paper_internet` (inspectable)."""
    rng = random.Random(seed ^ 0x7A11)
    tail = tuple(_tail_provider_spec(i, rng) for i in range(n_tail_ases))
    return InternetSpec(providers=_NAMED_PROVIDER_SPECS + tail, seed=seed)


def build_paper_internet(seed: int = 0, n_tail_ases: int = 90) -> SimInternet:
    """Build the default reproduction scenario, pathologies included."""
    internet = build_internet(paper_internet_spec(seed, n_tail_ases))

    # Section 5.5 pathology: the all-zero default MAC, seen in 12 ASes.
    twelve = [p.asn for p in internet.providers[:12]]
    clone_mac_into_ases(internet, 0, twelve, first_device_id=next_device_id(internet))

    # Figure 11 pathology: one vendor MAC reused on several continents.
    reused_mac = parse_oui(VENDOR_OUIS["ZTE"][0]) << 24 | 0x7E57E5
    continents = [6057, 7552, 9146, 14868, 4134, 12389, 12322]
    clone_mac_into_ases(
        internet, reused_mac, continents, first_device_id=next_device_id(internet)
    )

    # Figure 12: two customers switching between the German ISPs --
    # AS3320 -> AS8881 in early August (day ~10) and AS8881 -> AS3320 in
    # early September (day ~38).
    switch_candidates = _pick_switch_devices(internet)
    if len(switch_candidates) >= 2:
        (dev_a, _), (dev_b, _) = switch_candidates[0], switch_candidates[1]
        switch_provider(
            internet, dev_a, from_asn=3320, to_asn=8881,
            at_hours=6 * 24.0, next_device_id=next_device_id(internet),
        )
        switch_provider(
            internet, dev_b, from_asn=8881, to_asn=3320,
            at_hours=38 * 24.0, next_device_id=next_device_id(internet),
        )
    return internet


def _pick_switch_devices(internet: SimInternet) -> list[tuple[int, int]]:
    """(device_id, asn) of always-active EUI-64 devices to switch (Fig 12)."""
    picks: list[tuple[int, int]] = []
    for asn in (3320, 8881):
        provider = internet.provider_of_asn(asn)
        if provider is None:
            continue
        for device in provider.all_devices():
            if (
                device.addressing is AddressingMode.EUI64
                and device.policy.responds
                and device.active_from_hours == -math.inf
                and device.active_until_hours == math.inf
            ):
                picks.append((device.device_id, asn))
                break
    return picks
