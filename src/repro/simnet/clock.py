"""Simulation time conventions.

The scanner layer speaks **seconds** (packet rates are per second); the
provider layer speaks **hours** (rotation intervals, daily campaigns).
All conversions go through this module so the two never drift.  Day 0
begins at t=0; negative times are valid (the seed traceroute campaign
runs a simulated year before the main campaign).
"""

from __future__ import annotations

import math

SECONDS_PER_HOUR = 3600.0
HOURS_PER_DAY = 24.0


def hours(t_seconds: float) -> float:
    """Convert seconds to hours."""
    return t_seconds / SECONDS_PER_HOUR


def seconds(t_hours: float) -> float:
    """Convert hours to seconds."""
    return t_hours * SECONDS_PER_HOUR


def day_of(t_hours: float) -> int:
    """The (possibly negative) day index containing *t_hours*."""
    return math.floor(t_hours / HOURS_PER_DAY)


def hour_of_day(t_hours: float) -> float:
    """Hours since the containing day's midnight, in [0, 24).

    Clamped at 0: for tiny negative times the division inside
    :func:`day_of` underflows to ``-0.0``, so the day rounds to 0 and
    the raw difference would be a negative denormal.
    """
    hour = t_hours - day_of(t_hours) * HOURS_PER_DAY
    return hour if hour > 0.0 else 0.0


def day_start(day: int) -> float:
    """The hour at which *day* begins."""
    return day * HOURS_PER_DAY
