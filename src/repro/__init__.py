"""repro: a full reproduction of "Follow the Scent: Defeating IPv6
Prefix Rotation Privacy" (Rye, Beverly, claffy -- ACM IMC 2021).

The package layers, bottom-up:

* :mod:`repro.net` -- IPv6 address arithmetic, MAC/EUI-64 conversion,
  ICMPv6 message model, vendor OUI registry;
* :mod:`repro.bgp` -- radix trie, RIB, AS registry;
* :mod:`repro.simnet` -- the simulated IPv6 Internet (providers,
  rotation pools, CPE devices) that stands in for the production
  networks the paper probed;
* :mod:`repro.scan` -- zmap6- and yarrp-style scanners;
* :mod:`repro.core` -- the paper's contribution: allocation-size and
  rotation-pool inference, discovery pipeline, campaigns, tracking;
* :mod:`repro.stream` -- the online adversary: single-pass sharded
  ingestion, incrementally updated inferences, live rotation tracking,
  checkpoint/resume;
* :mod:`repro.replicate` -- checkpoint-delta replication: segment
  shipping to warm standbys that can serve read-only and promote into
  the primary;
* :mod:`repro.experiments` -- one driver per table/figure plus
  ablations;
* :mod:`repro.viz` -- CDFs and ASCII rendering.

Quick start::

    from repro import build_paper_internet, DiscoveryPipeline
    internet = build_paper_internet(seed=0, n_tail_ases=16)
    result = DiscoveryPipeline(internet).run()
    print(result.summary())
"""

from repro.core.allocation import AllocationInference, infer_allocation_plen
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.pipeline import DiscoveryPipeline, PipelineConfig
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.rotation_pool import RotationPoolInference, infer_rotation_pool_plen
from repro.core.search_space import SearchSpaceBound
from repro.core.tracker import AsProfile, DeviceTracker, TrackerConfig
from repro.net.addr import Prefix, format_addr, parse_addr
from repro.net.eui64 import eui64_iid_to_mac, is_eui64_iid, mac_to_eui64_iid
from repro.net.mac import format_mac, parse_mac
from repro.net.oui import OuiRegistry
from repro.replicate import SegmentShipper
from repro.scan.zmap import ScanConfig, ScanStream, Zmap6
from repro.serve import SnapshotPublisher, TrackerDaemon, TrackerServer, TrackerSnapshot
from repro.simnet.builder import (
    InternetSpec,
    PoolSpec,
    ProviderSpec,
    build_internet,
    build_paper_internet,
)
from repro.simnet.internet import SimInternet
from repro.simnet.vantage import FlowTap
from repro.store import (
    ColumnBatch,
    ColumnarBackend,
    ObjectBackend,
    SqliteBackend,
    StoreBackend,
)
from repro.stream.campaign import StreamingCampaign
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.fabric import FabricServer, SocketTransport, parse_worker_spec
from repro.stream.feeds import (
    MixedFeed,
    SightingRecord,
    dedup_feed,
    flow_feed,
    hitlist_feed,
    ingest_feed,
    observation_feed,
    sighting_feed,
    tap_feed,
)
from repro.stream.parallel import ParallelStreamEngine
from repro.stream.tracker import LivePursuit

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy, like repro.replicate itself: an eager import here would
    # pre-load the follower module and trip runpy's double-import
    # warning under ``python -m repro.replicate.follower``.
    if name == "ReplicaFollower":
        from repro.replicate import ReplicaFollower

        return ReplicaFollower
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AllocationInference",
    "AsProfile",
    "Campaign",
    "CampaignConfig",
    "ColumnBatch",
    "ColumnarBackend",
    "DeviceTracker",
    "DiscoveryPipeline",
    "FabricServer",
    "FlowTap",
    "InternetSpec",
    "LivePursuit",
    "MixedFeed",
    "ObjectBackend",
    "ObservationStore",
    "OuiRegistry",
    "ParallelStreamEngine",
    "PipelineConfig",
    "PoolSpec",
    "Prefix",
    "ProbeObservation",
    "ProviderSpec",
    "ReplicaFollower",
    "RotationPoolInference",
    "ScanConfig",
    "ScanStream",
    "SearchSpaceBound",
    "SegmentShipper",
    "SightingRecord",
    "SimInternet",
    "SnapshotPublisher",
    "SocketTransport",
    "SqliteBackend",
    "StoreBackend",
    "StreamConfig",
    "StreamEngine",
    "StreamingCampaign",
    "TrackerConfig",
    "TrackerDaemon",
    "TrackerServer",
    "TrackerSnapshot",
    "Zmap6",
    "build_internet",
    "build_paper_internet",
    "dedup_feed",
    "eui64_iid_to_mac",
    "flow_feed",
    "format_addr",
    "format_mac",
    "hitlist_feed",
    "infer_allocation_plen",
    "infer_rotation_pool_plen",
    "ingest_feed",
    "is_eui64_iid",
    "mac_to_eui64_iid",
    "observation_feed",
    "parse_addr",
    "parse_mac",
    "parse_worker_spec",
    "sighting_feed",
    "tap_feed",
]
