"""The long-lived tracker daemon: ingest, serve, shut down cleanly.

:class:`TrackerDaemon` wires the three serve-layer pieces around a
:class:`~repro.stream.campaign.StreamingCampaign`:

* the campaign ingests on the calling thread, one scan day per loop
  iteration (plus its passive-feed drains and periodic checkpoints);
* a :class:`~repro.serve.snapshot.SnapshotPublisher` refreshes after
  every completed day -- and between days via the campaign's
  ``on_day_complete`` hook -- so readers track the stream at day
  granularity;
* a :class:`~repro.serve.http.TrackerServer` serves the current
  snapshot throughout, including ``/metrics`` when telemetry is
  attached.

Shutdown is graceful from either side: :meth:`TrackerDaemon.shutdown`
(thread-safe, also wired to ``POST /shutdown``) stops ingest at the
next day boundary, after which the daemon force-publishes a final
snapshot, writes a final checkpoint (when the campaign has a
checkpoint path), and stops the server.  A daemon that finished its
campaign can keep serving (``linger``) until a shutdown arrives.
"""

from __future__ import annotations

import threading

from .http import TrackerServer
from .snapshot import SnapshotPublisher


class TrackerDaemon:
    """Run a streaming campaign as a queryable service."""

    def __init__(
        self,
        campaign,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        min_snapshot_interval: float = 0.0,
    ) -> None:
        self.campaign = campaign
        self.telemetry = campaign.telemetry
        self.publisher = SnapshotPublisher(
            campaign.live_engine,
            self.telemetry,
            min_interval=min_snapshot_interval,
        )
        self._stop = threading.Event()
        self.server = TrackerServer(
            self.publisher,
            self.telemetry,
            host=host,
            port=port,
            on_shutdown=self.shutdown,
        )
        # Refresh mid-run too: the campaign calls this after each day's
        # feed drain and periodic checkpoint.
        campaign.on_day_complete = self._day_completed
        self.days_served = 0

    @property
    def url(self) -> str:
        return self.server.url

    def shutdown(self) -> None:
        """Request a graceful stop; safe from any thread (and from the
        ``POST /shutdown`` handler)."""
        self._stop.set()

    @property
    def shutdown_requested(self) -> bool:
        return self._stop.is_set()

    def _day_completed(self, day: int) -> None:
        self.days_served += 1
        self.publisher.refresh()

    def _emit(self, event: str, **payload) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event, **payload)

    def run(self, *, linger: float | None = None) -> None:
        """Ingest to completion (or shutdown) while serving queries.

        Runs the campaign on the calling thread one day at a time,
        checking for a shutdown request at every day boundary.  With
        *linger* set, a finished campaign keeps serving for up to that
        many seconds (forever if ``float("inf")``) or until a shutdown
        request -- the CI smoke job curls the endpoints in this
        window.  Always stops the server and writes a final checkpoint
        before returning.
        """
        campaign = self.campaign
        self.server.start()
        self._emit("serve_start", url=self.url, port=self.server.port)
        try:
            while not campaign.finished and not self._stop.is_set():
                campaign.run(max_days=1)
                self.publisher.rebind(campaign.live_engine)
                self.publisher.refresh()
            self.publisher.refresh(force=True)
            if campaign.finished and linger:
                self._stop.wait(None if linger == float("inf") else linger)
        finally:
            try:
                # The final checkpoint: run() already checkpoints after
                # every call, but a shutdown raced against ingest (or a
                # mid-day exception) must still leave a loadable file.
                if campaign.checkpoint_path is not None:
                    campaign.checkpoint()
            finally:
                # Followers of a campaign-owned shipper get an orderly
                # stop (the final checkpoint above already shipped).
                campaign.close_shipper()
                self.server.stop()
                self._emit(
                    "serve_stop",
                    requests=self.server.requests_served(),
                    snapshot_version=self.publisher.version,
                    finished=campaign.finished,
                )
