"""Threaded HTTP/JSON front end over a :class:`SnapshotPublisher`.

Stdlib-only (:class:`http.server.ThreadingHTTPServer`): each
connection gets a handler thread that reads the publisher's current
snapshot -- an atomic reference, no locks -- so queries never block
ingest and ingest never blocks queries.  HTTP/1.1 with keep-alive, so
a poller pays connection setup once.

Endpoints (all GET unless noted):

``/iid/<x>``         freshest sighting of a watched IID (decimal,
                     ``0x``-prefixed, or bare-hex *x*)
``/rotations?day=N`` /48s attributed to day N's close (newest close
                     when ``day`` is omitted)
``/profiles``        per-AS allocation/pool inference slices
``/stats``           snapshot + server counters
``/healthz``         liveness probe
``/metrics``         Prometheus text exposition of the attached
                     telemetry registry
``POST /shutdown``   request a graceful stop (the owner decides what
                     that means; see :class:`TrackerDaemon`)

Every JSON body carries ``snapshot_version``; versions across any
sequence of responses are monotonically non-decreasing.  ``/stats``
and ``/healthz`` additionally carry a ``role`` field: ``primary`` by
default, or ``standby`` -- plus the applied ``(base_id, seq)`` and
replication lag -- when the server fronts a
:class:`~repro.replicate.ReplicaFollower`.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from .snapshot import SnapshotPublisher


def _parse_iid(token: str) -> int | None:
    """An IID from its path segment: decimal, 0x-hex, or bare hex."""
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return int(token, 16)
    except ValueError:
        return None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    # Every response is a header flush plus a JSON body in separate
    # segments; without TCP_NODELAY, Nagle + delayed ACK adds ~40ms of
    # idle stall to each keep-alive round trip.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging goes through metrics, not stderr

    # -- plumbing ----------------------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send(status, body, "application/json")

    def _error(self, status: int, message: str) -> None:
        version = self.server.publisher.current.version
        self._send_json(
            {"error": message, "snapshot_version": version}, status=status
        )
        obs = self.server.serve_obs
        if obs is not None:
            obs.request_failed()

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        t0 = time.perf_counter()
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        endpoint: str | None = None
        try:
            if path.startswith("/iid/"):
                endpoint = "iid"
                self._get_iid(path[len("/iid/") :])
            elif path == "/rotations":
                endpoint = "rotations"
                self._get_rotations(parse_qs(split.query))
            elif path == "/profiles":
                endpoint = "profiles"
                self._send_json(self.server.publisher.current.profiles_payload())
            elif path == "/stats":
                endpoint = "stats"
                self._get_stats()
            elif path == "/healthz":
                endpoint = "healthz"
                payload = {
                    "status": "ok",
                    "snapshot_version": self.server.publisher.current.version,
                }
                payload.update(self.server.role_payload())
                self._send_json(payload)
            elif path == "/metrics":
                endpoint = "metrics"
                self._get_metrics()
            else:
                self._error(404, f"unknown endpoint: {path}")
                return
        except (BrokenPipeError, ConnectionResetError):  # reader went away
            return
        obs = self.server.serve_obs
        if obs is not None and endpoint is not None:
            obs.request_served(endpoint, time.perf_counter() - t0)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/shutdown":
            self._error(404, f"unknown endpoint: {path}")
            return
        self._send_json(
            {
                "status": "shutting down",
                "snapshot_version": self.server.publisher.current.version,
            }
        )
        obs = self.server.serve_obs
        if obs is not None:
            obs.request_served("shutdown", 0.0)
        on_shutdown = self.server.on_shutdown
        if on_shutdown is not None:
            on_shutdown()

    def _get_iid(self, token: str) -> None:
        iid = _parse_iid(token)
        if iid is None or iid < 0:
            self._error(400, f"not an IID: {token!r}")
            return
        self._send_json(self.server.publisher.current.iid_payload(iid))

    def _get_rotations(self, query: dict) -> None:
        day: int | None = None
        if "day" in query:
            try:
                day = int(query["day"][0])
            except ValueError:
                self._error(400, f"not a day number: {query['day'][0]!r}")
                return
        self._send_json(self.server.publisher.current.rotations_payload(day))

    def _get_stats(self) -> None:
        payload = self.server.publisher.current.stats()
        payload["requests_served"] = self.server.requests_served()
        payload["uptime_seconds"] = round(
            time.monotonic() - self.server.started_at, 3
        )
        payload.update(self.server.role_payload())
        self._send_json(payload)

    def _get_metrics(self) -> None:
        telemetry = self.server.telemetry
        if telemetry is None:
            self._error(404, "no telemetry attached")
            return
        self._send(
            200,
            telemetry.prometheus().encode(),
            "text/plain; version=0.0.4; charset=utf-8",
        )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Restarting a just-stopped daemon on the same port must not fail
    # with EADDRINUSE on lingering TIME_WAIT sockets.
    allow_reuse_address = True
    role_info: Callable[[], dict] | None = None

    def role_payload(self) -> dict:
        """Replication role fields merged into /healthz and /stats.

        A standby's owner (``ReplicaFollower.serve``) injects a
        ``role_info`` callable reporting ``standby`` plus its applied
        chain position and lag; everything else is the primary.
        """
        if self.role_info is None:
            return {"role": "primary"}
        return self.role_info()


class TrackerServer:
    """The HTTP server around a publisher; start/stop from the owner.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  *on_shutdown* is invoked -- on a handler thread,
    after the response is written -- when a client POSTs
    ``/shutdown``; it must only signal (set an event), never join the
    server from inside a handler.
    """

    def __init__(
        self,
        publisher: SnapshotPublisher,
        telemetry=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        on_shutdown: Callable[[], None] | None = None,
        role_info: Callable[[], dict] | None = None,
    ) -> None:
        self.publisher = publisher
        self.telemetry = telemetry
        self._obs = None
        if telemetry is not None:
            from repro.obs.instruments import ServeInstruments

            self._obs = ServeInstruments(telemetry)
        self._httpd = _Server((host, port), _Handler)
        self._httpd.publisher = publisher
        self._httpd.telemetry = telemetry
        self._httpd.serve_obs = self._obs
        self._httpd.on_shutdown = on_shutdown
        self._httpd.role_info = role_info
        self._httpd.started_at = time.monotonic()
        self._httpd.requests_served = self.requests_served
        self._thread = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def requests_served(self) -> int:
        obs = self._obs
        return obs.requests_total() if obs is not None else 0

    def start(self) -> str:
        """Serve on a daemon thread; returns the base URL."""
        import threading

        if self._thread is not None:
            return self.url
        self._httpd.started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        """Stop serving and release the socket.  Idempotent; must not
        be called from a handler thread."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()
