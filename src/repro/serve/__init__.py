"""``repro.serve``: the tracker as a long-lived queryable service.

Everything else in the repo runs to completion; the attack the paper
describes is operationally a *service* -- a tracker that keeps
ingesting sightings while analysts ask "where is IID X now" and "which
prefixes rotated today".  This package is that shape:

* :mod:`repro.serve.snapshot` -- versioned, immutable read snapshots
  of a live engine's state.  The ingest thread refreshes them (an
  atomic reference swap); any number of reader threads hold them
  without locks, and ingest never stalls on a reader.
* :mod:`repro.serve.http` -- a small threaded HTTP/JSON API over the
  current snapshot (``/iid/<x>``, ``/rotations?day=N``, ``/profiles``,
  ``/stats``, ``/healthz``, plus ``/metrics`` in Prometheus text
  exposition).  Every JSON response carries the snapshot version it
  was answered from, which is monotonically non-decreasing.
* :mod:`repro.serve.daemon` -- :class:`TrackerDaemon` wires a
  :class:`~repro.stream.campaign.StreamingCampaign` to a publisher and
  server: ingest day by day, refresh after each day, serve throughout,
  and shut down gracefully with a final checkpoint.

Snapshots are execution state only -- serving an engine never changes
its checkpoint bytes (fuzz-harness-pinned).
"""

from .daemon import TrackerDaemon
from .http import TrackerServer
from .snapshot import SnapshotPublisher, TrackerSnapshot

__all__ = [
    "SnapshotPublisher",
    "TrackerDaemon",
    "TrackerServer",
    "TrackerSnapshot",
]
