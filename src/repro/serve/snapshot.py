"""Versioned read-only snapshots of a live stream engine.

The read path that does not stall ingest: the ingest thread owns the
engine (whose accessors mutate internal state -- ``materialize()``
folds pending columnar buffers) and periodically asks the
:class:`SnapshotPublisher` to rebuild an immutable
:class:`TrackerSnapshot` from it.  Publication is a single attribute
assignment, atomic under the interpreter lock, so reader threads
calling :meth:`SnapshotPublisher.current` always see either the
previous complete snapshot or the new complete snapshot -- never a
torn intermediate -- and hold it for as long as they like while ingest
keeps appending.

Versions increase by exactly one per published snapshot and never move
backwards; a refresh that finds the engine unchanged republishes the
current snapshot untouched.  Refreshing is cheap to call often: the
``min_interval`` rate limit plus an engine-progress signature keep the
actual rebuild cost bounded by the configured staleness, not by the
caller's cadence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

from repro.net.addr import Prefix, format_addr


def _sort_key(prefix: Prefix) -> tuple[int, int]:
    return (prefix.network, prefix.plen)


@dataclass(frozen=True)
class TrackerSnapshot:
    """One immutable, versioned view of tracker state.

    Mappings are :class:`types.MappingProxyType` over dicts built fresh
    per snapshot; nothing here aliases live engine state, so a reader
    can hold a snapshot across arbitrarily many ingest batches.
    """

    version: int
    responses: int
    current_day: int | None
    closed_through: int | None
    days_seen: tuple[int, ...]
    #: asn -> AsProfile (allocation + pool inference as of this version).
    profiles: Mapping[int, object]
    #: watched iid -> (source address, day, t_seconds or None).
    sightings: Mapping[int, tuple[int, int, float | None]]
    #: closed day -> /48 prefixes first flagged rotating at that close.
    rotations_by_day: Mapping[int, tuple[Prefix, ...]]
    #: every /48 flagged rotating so far (cumulative).
    rotating_prefixes: frozenset[Prefix] = field(default_factory=frozenset)
    changed_pairs: int = 0
    stable_pairs: int = 0
    unique_addresses: int = 0
    unique_eui64_addresses: int = 0

    def iid_location(self, iid: int) -> tuple[int, int, float | None] | None:
        """Freshest sighting of a watched IID, or ``None``."""
        return self.sightings.get(iid)

    def rotations_on(self, day: int) -> tuple[Prefix, ...] | None:
        """Prefixes attributed to *day*'s close; ``None`` if that day
        has not closed (or was never scanned back-to-back)."""
        return self.rotations_by_day.get(day)

    def newest_rotation_day(self) -> int | None:
        return max(self.rotations_by_day) if self.rotations_by_day else None

    def stats(self) -> dict:
        """Plain-dict summary (the ``/stats`` endpoint body)."""
        return {
            "snapshot_version": self.version,
            "responses": self.responses,
            "current_day": self.current_day,
            "closed_through": self.closed_through,
            "days_seen": list(self.days_seen),
            "watched_iids": len(self.sightings),
            "profiled_asns": len(self.profiles),
            "rotating_48s": len(self.rotating_prefixes),
            "changed_pairs": self.changed_pairs,
            "stable_pairs": self.stable_pairs,
            "unique_addresses": self.unique_addresses,
            "unique_eui64_addresses": self.unique_eui64_addresses,
        }

    def iid_payload(self, iid: int) -> dict:
        """The ``/iid/<x>`` endpoint body for *iid*."""
        sighting = self.sightings.get(iid)
        payload: dict = {
            "snapshot_version": self.version,
            "iid": iid,
            "iid_hex": f"{iid:016x}",
            "watched": iid in self.sightings,
        }
        if sighting is None:
            payload["sighting"] = None
        else:
            source, day, t_seconds = sighting
            payload["sighting"] = {
                "address": format_addr(source),
                "day": day,
                "t_seconds": t_seconds,
            }
        return payload

    def rotations_payload(self, day: int | None) -> dict:
        """The ``/rotations`` endpoint body (newest close if *day* is
        ``None``)."""
        if day is None:
            day = self.newest_rotation_day()
        prefixes = self.rotations_by_day.get(day) if day is not None else None
        return {
            "snapshot_version": self.version,
            "day": day,
            "closed": prefixes is not None,
            "rotating_prefixes": (
                [str(p) for p in prefixes] if prefixes is not None else []
            ),
            "cumulative_rotating_48s": len(self.rotating_prefixes),
        }

    def profiles_payload(self) -> dict:
        """The ``/profiles`` endpoint body."""
        return {
            "snapshot_version": self.version,
            "profiles": {
                str(asn): {
                    "allocation_plen": profile.allocation_plen,
                    "pool_plen": profile.pool_plen,
                }
                for asn, profile in sorted(self.profiles.items())
            },
        }


class SnapshotPublisher:
    """Builds and atomically publishes :class:`TrackerSnapshot`\\ s.

    Owned by the ingest thread: :meth:`refresh` reads engine accessors
    that materialize pending columnar state, so it must run on the
    thread that ingests (the engine is not thread-safe).  Reader
    threads only ever touch :attr:`current`, which is a lock-free
    atomic reference read.

    *engine* is a :class:`~repro.stream.engine.StreamEngine` or a
    :class:`~repro.stream.parallel.ParallelStreamEngine` (refreshes go
    through its merged ``read_view()``); it may also be swapped later
    via :meth:`rebind` (the campaign daemon does this when a finished
    parallel run finalizes into a plain engine).
    """

    def __init__(
        self,
        engine,
        telemetry=None,
        *,
        min_interval: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._engine = engine
        self._clock = clock
        self.min_interval = min_interval
        self._version = 0
        self._signature: tuple | None = None
        self._last_refresh: float | None = None
        self._obs = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        self._current = self._build()
        # The initial publication opens the rate-limit window too.
        self._last_refresh = self._clock()

    def attach_telemetry(self, telemetry) -> None:
        from repro.obs.instruments import ServeInstruments

        self._obs = ServeInstruments(telemetry)

    @property
    def current(self) -> TrackerSnapshot:
        """The newest published snapshot; safe from any thread."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    def rebind(self, engine) -> None:
        """Point future refreshes at *engine* (ingest thread only).

        No-op when already bound to it, so callers may rebind
        defensively every cycle without forcing rebuilds.
        """
        if engine is self._engine:
            return
        self._engine = engine
        self._signature = None

    def _read_engine(self):
        engine = self._engine
        read_view = getattr(engine, "read_view", None)
        if read_view is not None:
            return read_view()
        return engine

    def refresh(self, force: bool = False) -> TrackerSnapshot:
        """Publish a fresh snapshot if the engine moved on.

        Ingest thread only.  Returns the snapshot current after the
        call -- the newly built one, or the existing one when the
        engine is unchanged or the ``min_interval`` rate limit has not
        elapsed (pass ``force=True`` to bypass both checks, e.g. for
        the final snapshot at shutdown).
        """
        now = self._clock()
        if not force:
            if (
                self._last_refresh is not None
                and now - self._last_refresh < self.min_interval
            ):
                return self._current
            engine = self._engine
            signature = (
                engine.responses_ingested,
                engine.current_day,
                engine._closed_through,
            )
            if signature == self._signature:
                return self._current
        snapshot = self._build()
        self._current = snapshot  # the atomic publication point
        self._last_refresh = self._clock()
        return snapshot

    def _build(self) -> TrackerSnapshot:
        obs = self._obs
        t0 = self._clock() if obs is not None else 0.0
        engine = self._read_engine()
        source = self._engine
        self._signature = (
            source.responses_ingested,
            source.current_day,
            source._closed_through,
        )
        detection = engine.live_detection
        self._version += 1
        snapshot = TrackerSnapshot(
            version=self._version,
            responses=engine.responses_ingested,
            current_day=engine.current_day,
            closed_through=engine._closed_through,
            days_seen=tuple(sorted(engine._days_seen)),
            profiles=MappingProxyType(dict(engine.as_profiles())),
            sightings=MappingProxyType(
                {
                    iid: (s.source, s.day, s.t_seconds)
                    for iid, s in engine.watched.items()
                }
            ),
            rotations_by_day=MappingProxyType(
                {
                    day: tuple(sorted(prefixes, key=_sort_key))
                    for day, prefixes in engine.rotation_days.items()
                }
            ),
            rotating_prefixes=frozenset(detection.rotating_prefixes),
            changed_pairs=len(detection.changed_pairs),
            stable_pairs=detection.stable_pairs,
            unique_addresses=engine.unique_sources(),
            unique_eui64_addresses=engine.unique_eui64_sources(),
        )
        if obs is not None:
            obs.snapshot_published(snapshot.version, self._clock() - t0)
        return snapshot
