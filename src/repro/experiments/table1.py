"""Table 1: top ASNs and countries by number of rotating /48 prefixes.

Paper values (full scale): AS8881 5,149 of 12,885 /48s (40%); Germany
5,985 (46%); top-5 ASNs 8881, 6799, 1241, 9808, 3320; 101 ASes / 25
countries overall.  The reproduction checks the *ranking and dominance
shape* at simulator scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_table

PAPER_TOP_ASNS = (8881, 6799, 1241, 9808, 3320)
PAPER_TOP_COUNTRIES = ("DE", "GR", "CN", "BR", "BO")


@dataclass
class Table1Result:
    by_asn: dict[int, int] = field(default_factory=dict)
    by_country: dict[str, int] = field(default_factory=dict)
    total: int = 0

    def top_asns(self, n: int = 5) -> list[tuple[int, int]]:
        return sorted(self.by_asn.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def top_countries(self, n: int = 5) -> list[tuple[str, int]]:
        return sorted(self.by_country.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def render(self) -> str:
        asn_rows = self.top_asns()
        country_rows = self.top_countries()
        other_asn = self.total - sum(v for _, v in asn_rows)
        other_country = self.total - sum(v for _, v in country_rows)
        rows = [
            [f"AS{asn}", count, country, c_count]
            for (asn, count), (country, c_count) in zip(asn_rows, country_rows)
        ]
        rows.append([f"{len(self.by_asn) - len(asn_rows)} other ASNs", other_asn,
                     f"{len(self.by_country) - len(country_rows)} other countries",
                     other_country])
        rows.append(["Total", self.total, "Total", self.total])
        return render_table(
            ["ASN", "# /48", "Country", "# /48"],
            rows,
            title="Table 1: top ASNs / countries by rotating /48 prefixes probed",
        )


def run(context: ExperimentContext) -> Table1Result:
    pipeline = context.pipeline_result
    result = Table1Result(
        by_asn=pipeline.rotating_by_asn(context.origin_of),
        by_country=pipeline.rotating_by_country(
            context.origin_of, context.country_of
        ),
        total=len(pipeline.rotating_48s),
    )
    return result
