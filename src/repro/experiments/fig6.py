"""Figure 6: one provider (Versatel, AS8881) with two allocation sizes.

The paper shows two /48s of 2001:16b8::/32, one carved into /56
delegations and one into /64s.  We grid-scan one /48 from each of
Versatel's /56-delegation and /64-delegation pools and confirm the
band-width analysis tells them apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grids import AllocationGrid, scan_allocation_grid
from repro.experiments.context import ExperimentContext
from repro.net.addr import Prefix
from repro.simnet.clock import seconds

VERSATEL_ASN = 8881


@dataclass
class Fig6Result:
    grids: dict[int, AllocationGrid] = field(default_factory=dict)  # plen -> grid
    inferred: dict[int, int] = field(default_factory=dict)  # expected -> inferred

    def render(self) -> str:
        blocks = []
        for expected, grid in sorted(self.grids.items()):
            blocks.append(
                f"-- Versatel {grid.prefix}: inferred /"
                f"{self.inferred[expected]}, ground truth /{expected} --"
            )
            blocks.append(grid.render_ascii(downsample=8))
        return "\n".join(blocks)


def run(context: ExperimentContext) -> Fig6Result:
    provider = context.internet.provider_of_asn(VERSATEL_ASN)
    if provider is None:
        raise ValueError("paper scenario lacks AS8881")
    result = Fig6Result()
    t_probe = seconds(context.campaign_config.start_day * 24.0 + 10.0)
    for delegation_plen in (56, 64):
        pool = next(
            (p for p in provider.pools if p.delegation_plen == delegation_plen), None
        )
        if pool is None:
            continue
        prefix48 = Prefix(pool.prefix.network, 48)
        grid = scan_allocation_grid(
            context.internet, prefix48,
            t_seconds=t_probe, seed=context.scale.seed ^ delegation_plen,
        )
        result.grids[delegation_plen] = grid
        result.inferred[delegation_plen] = grid.infer_allocation_plen()
    return result
