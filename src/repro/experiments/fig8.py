"""Figure 8: number of distinct /64 prefixes per EUI-64 IID.

Paper shape: ~25% of IIDs seen in exactly one /64; >70% in more than
one (they demonstrably rotate); a tiny tail spans enormous prefix
counts (one IID in ~30k /64s).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.timeseries import distinct_net64_counts
from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_cdf, render_table
from repro.viz.cdf import fraction_at_or_below


@dataclass
class Fig8Result:
    counts: dict[int, int] = field(default_factory=dict)  # iid -> distinct /64s

    @property
    def values(self) -> list[int]:
        return list(self.counts.values())

    def fraction_multi(self) -> float:
        values = self.values
        if not values:
            raise ValueError("no IIDs observed")
        return sum(1 for v in values if v > 1) / len(values)

    def render(self) -> str:
        values = self.values
        stats = render_table(
            ["metric", "value"],
            [
                ["EUI-64 IIDs", len(values)],
                ["fraction in exactly one /64",
                 f"{fraction_at_or_below(values, 1):.2f}"],
                ["fraction in > 1 /64 (rotated)", f"{self.fraction_multi():.2f}"],
                ["max /64s for one IID", max(values)],
            ],
            title="Figure 8: distinct /64 prefixes per EUI-64 IID",
        )
        plot = render_cdf(
            {"distinct /64s": [float(v) for v in values]},
            title="CDF of distinct /64 count per IID",
            x_label="number of distinct /64 prefixes",
        )
        return f"{stats}\n{plot}"


def run(context: ExperimentContext) -> Fig8Result:
    return Fig8Result(counts=distinct_net64_counts(context.campaign_store))
