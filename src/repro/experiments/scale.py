"""Workload scales: the paper's parameters and our scaled-down defaults.

The paper's campaign is ~37 billion probes from a real vantage point;
the simulator runs on one CPU, so default experiments shrink the probe
volume by roughly three orders of magnitude while preserving structure
(AS mix, rotation policies, per-stage methodology).  :data:`PAPER`
records the original parameters for reference and for anyone with the
patience to run them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """One named workload size."""

    name: str
    n_tail_ases: int  # synthesized ASes beyond the named ones
    coverage_48s: int  # leading /48s probed per /32 in seed/expansion
    campaign_days: int
    tracking_days: int
    fig10_days: int  # hourly-probing span for Figure 10
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.n_tail_ases, self.coverage_48s, self.campaign_days,
               self.tracking_days, self.fig10_days) <= 0:
            raise ValueError(f"scale {self.name!r} has non-positive parameters")


# Smoke tests: just enough world for every stage to produce output.
# The example smoke suite runs each script at this scale so examples
# cannot rot unnoticed without costing CI a full small-scale run each.
TINY = Scale(
    name="tiny",
    n_tail_ases=2,
    coverage_48s=24,
    campaign_days=3,
    tracking_days=2,
    fig10_days=1,
)

# Fast: benchmarks and CI. A few hundred thousand simulated probes.
SMALL = Scale(
    name="small",
    n_tail_ases=16,
    coverage_48s=160,
    campaign_days=8,
    tracking_days=5,
    fig10_days=3,
)

# The full scaled reproduction: what EXPERIMENTS.md reports.
DEFAULT = Scale(
    name="default",
    n_tail_ases=90,
    coverage_48s=256,
    campaign_days=44,
    tracking_days=7,
    fig10_days=7,
)

# The paper's actual campaign, recorded for reference.  Running this in
# the simulator would take ~37B probe resolutions; it exists to document
# the target, not to execute in CI.
PAPER = Scale(
    name="paper",
    n_tail_ases=96,  # "96 Other ASNs" in Table 1
    coverage_48s=65536,  # every /48 of every routed /32
    campaign_days=44,
    tracking_days=7,
    fig10_days=7,
)
