"""Figure 3: allocation grids for the three exemplar providers.

Entel (BO) /56 delegations, BH Telecom (BA) /60, Starcat (JP) /64 --
one probe per /64 of one /48 per provider, rendering the color-band
structure the paper plots and recovering the delegation size from the
band widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grids import AllocationGrid, scan_allocation_grid
from repro.experiments.context import ExperimentContext
from repro.net.addr import Prefix
from repro.simnet.clock import seconds

EXEMPLARS: tuple[tuple[int, str, int], ...] = (
    (6568, "Entel (Bolivia)", 56),
    (9146, "BH Telecom (Bosnia)", 60),
    (7682, "Starcat (Japan)", 64),
)


@dataclass
class Fig3Result:
    grids: dict[int, AllocationGrid] = field(default_factory=dict)
    inferred: dict[int, int] = field(default_factory=dict)
    expected: dict[int, int] = field(default_factory=dict)
    names: dict[int, str] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for asn, grid in self.grids.items():
            blocks.append(
                f"-- {self.names[asn]} (AS{asn}): inferred /"
                f"{self.inferred[asn]}, paper /{self.expected[asn]} --"
            )
            blocks.append(grid.render_ascii(downsample=8))
        return "\n".join(blocks)


def run(context: ExperimentContext) -> Fig3Result:
    result = Fig3Result()
    t_probe = seconds(context.campaign_config.start_day * 24.0 + 10.0)
    for asn, name, expected_plen in EXEMPLARS:
        provider = context.internet.provider_of_asn(asn)
        if provider is None:
            continue
        prefix48 = Prefix(provider.pools[0].prefix.network, 48)
        grid = scan_allocation_grid(
            context.internet, prefix48, t_seconds=t_probe, seed=context.scale.seed
        )
        result.grids[asn] = grid
        result.names[asn] = name
        result.expected[asn] = expected_plen
        result.inferred[asn] = grid.infer_allocation_plen()
    return result
