"""The "one bad apple" scenario: passive vantage vs. prefix rotation.

Saidi et al. ("One Bad Apple Can Spoil Your IPv6 Privacy") observed
that prefix rotation fails as a privacy measure the moment *any* device
in the household exposes a stable IID to a passive observer -- no
probing required.  This experiment reproduces that end to end on the
simulator and quantifies how it composes with the paper's *active*
Section 6 pursuit:

* **active-only** -- :class:`~repro.stream.tracker.LivePursuit` hunts
  each watched EUI-64 IID daily with probes bounded by the inferred
  pool (the paper's attack, unchanged);
* **passive-only** -- no probes at all: a provider-side
  :class:`~repro.simnet.vantage.FlowTap` with a given customer
  *coverage* fraction feeds a :class:`~repro.stream.engine.StreamEngine`
  watchlist through :mod:`repro.stream.feeds`; a device counts as
  tracked on a day iff the tap logged its (stable-IID) WAN address that
  day;
* **hybrid** -- the pursuit runs with the tap-fed engine attached, so
  passive sightings re-anchor hunts for free and a day counts if the
  hunt found the device *or* the tap saw it.

The sweep raises passive coverage from 0 to 1.  Because tap coverage
sets are nested (see :class:`~repro.simnet.vantage.FlowTap`), passive
tracking success rises monotonically with coverage; and because hunts
are pool-bounded (identical probe sequences whatever the anchor),
hybrid success is bounded below by active-only at every coverage --
both properties are asserted by the test suite, in serial and
``workers=2`` parallel ingestion modes.

Run: ``python -m repro.experiments.one_bad_apple``
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tracker import AsProfile, DeviceTracker, TrackerConfig
from repro.net.addr import Prefix
from repro.net.eui64 import mac_to_eui64_iid
from repro.simnet.clock import HOURS_PER_DAY
from repro.simnet.device import AddressingMode, CpeDevice
from repro.simnet.internet import SimInternet
from repro.simnet.pool import RotationPool
from repro.simnet.provider import Provider
from repro.simnet.rotation import IncrementRotation
from repro.simnet.vantage import FlowTap
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.feeds import sighting_feed
from repro.stream.parallel import ParallelStreamEngine
from repro.stream.tracker import LivePursuit
from repro.viz.ascii import render_table

ASN = 65010
POOL48 = "2001:db8::/48"
DELEGATION_PLEN = 56
ANCHOR_HOUR = 13.0


def build_world(seed: int = 0, n_devices: int = 32) -> SimInternet:
    """One daily-rotating provider, every customer an EUI-64 CPE.

    The pool is exactly one /48, so a pool-bounded hunt sweeps the same
    targets from any anchor inside it -- which is what makes the
    active-vs-hybrid comparison exact rather than statistical.
    """
    pool = RotationPool(
        prefix=Prefix.parse(POOL48),
        delegation_plen=DELEGATION_PLEN,
        policy=IncrementRotation(interval_hours=24.0),
        pool_key=seed ^ 0xA991E,
    )
    for i in range(n_devices):
        pool.add_device(
            CpeDevice(
                device_id=i + 1,
                mac=0x3810D5000000 + (seed << 16) + i,
                addressing=AddressingMode.EUI64,
            )
        )
    provider = Provider(
        asn=ASN,
        name="BadApple ISP",
        country="DE",
        bgp_prefixes=[Prefix.parse("2001:db8::/32")],
        pools=[pool],
    )
    return SimInternet([provider], core_answers_unrouted=False)


def watch_targets(internet: SimInternet, anchor_day: int) -> dict[int, int]:
    """iid -> last known address as of *anchor_day* for every customer.

    Stands in for the anchor a prior discovery campaign would have
    produced: the device's WAN address the day before tracking starts.
    """
    provider = internet.provider_of_asn(ASN)
    targets: dict[int, int] = {}
    t_hours = anchor_day * HOURS_PER_DAY + ANCHOR_HOUR
    for pool in provider.pools:
        for customer, device in enumerate(pool.devices):
            targets[mac_to_eui64_iid(device.mac)] = pool.wan_address_of(
                customer, t_hours
            )
    return targets


@dataclass
class OneBadAppleResult:
    """The coverage sweep's outcomes, one success rate per mode."""

    coverages: list[float] = field(default_factory=list)
    days: list[int] = field(default_factory=list)
    n_watched: int = 0
    sample_rate: float = 0.0
    workers: int = 0
    active_success: float = 0.0
    active_probes: int = 0
    passive_success: dict[float, float] = field(default_factory=dict)
    hybrid_success: dict[float, float] = field(default_factory=dict)
    hybrid_probes: dict[float, int] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [
                f"{coverage:.2f}",
                f"{self.passive_success[coverage]:.3f}",
                f"{self.hybrid_success[coverage]:.3f}",
                self.hybrid_probes[coverage],
            ]
            for coverage in self.coverages
        ]
        table = render_table(
            ["tap coverage", "passive-only", "hybrid", "hybrid probes"],
            rows,
            title=(
                f"One bad apple: daily tracking success, {self.n_watched} "
                f"EUI-64 CPE over {len(self.days)} days "
                f"(tap sample rate {self.sample_rate:.2f}, "
                f"{'parallel ' + str(self.workers) + '-worker' if self.workers else 'serial'} ingestion)"
            ),
        )
        return (
            f"{table}\n"
            f"active-only baseline: {self.active_success:.3f} success, "
            f"{self.active_probes} probes -- passive rises with coverage, "
            f"hybrid never drops below active."
        )


def _make_engine(workers: int):
    config = StreamConfig(num_shards=4, keep_observations=False)
    if workers:
        return ParallelStreamEngine(config, num_workers=workers, batch_rows=64)
    return StreamEngine(config)


def _close(engine) -> None:
    if isinstance(engine, ParallelStreamEngine):
        engine.close()


def _sighted(engine, iid: int, day: int) -> bool:
    sighting = engine.last_sighting(iid)
    return (
        sighting is not None
        and sighting.t_seconds is not None
        and sighting.day == day
    )


def _run_passive(
    coverage: float, days: list[int], sample_rate: float, seed: int,
    n_devices: int, workers: int,
) -> float:
    internet = build_world(seed, n_devices)
    targets = watch_targets(internet, days[0] - 1)
    tap = FlowTap(internet, ASN, coverage=coverage, sample_rate=sample_rate, seed=seed)
    engine = _make_engine(workers)
    try:
        for iid, initial in targets.items():
            engine.watch(iid, initial)
        tracked = 0
        for day in days:
            engine.ingest_feed(sighting_feed(tap.sightings_on(day)))
            tracked += sum(1 for iid in targets if _sighted(engine, iid, day))
    finally:
        _close(engine)
    return tracked / (len(targets) * len(days))


def _run_pursuit(
    coverage: float | None, days: list[int], sample_rate: float, seed: int,
    n_devices: int, workers: int,
) -> tuple[float, int]:
    """Active-only (coverage None) or hybrid pursuit; (success, probes)."""
    internet = build_world(seed, n_devices)
    targets = watch_targets(internet, days[0] - 1)
    profiles = {ASN: AsProfile(ASN, allocation_plen=DELEGATION_PLEN, pool_plen=48)}
    tracker = DeviceTracker(internet, profiles, TrackerConfig(seed=seed))
    tap = engine = None
    if coverage is not None:
        tap = FlowTap(
            internet, ASN, coverage=coverage, sample_rate=sample_rate, seed=seed
        )
        engine = _make_engine(workers)
    pursuit = LivePursuit(tracker, engine=engine)
    pursuit.add_targets(targets)
    tracked = 0
    try:
        for day in days:
            # Hunt first: the tap's evening records land *after* the
            # 13:00 hunt in simulated time, so they re-anchor the next
            # day's pursuit rather than time-travelling into today's.
            outcomes = pursuit.advance(day)
            if engine is not None:
                engine.ingest_feed(sighting_feed(tap.sightings_on(day)))
            for iid, outcome in outcomes.items():
                if outcome.found or (
                    engine is not None and _sighted(engine, iid, day)
                ):
                    tracked += 1
    finally:
        if engine is not None:
            _close(engine)
    return tracked / (len(targets) * len(days)), internet.stats.probes


def run(
    coverages: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    n_days: int = 4,
    start_day: int = 3,
    sample_rate: float = 0.85,
    seed: int = 0,
    n_devices: int = 32,
    workers: int = 0,
) -> OneBadAppleResult:
    """Sweep tap coverage against tracking success in all three modes.

    Every mode (and every coverage point) runs on a freshly built but
    identical world, so ICMP rate-limiter state never leaks between
    runs and the comparisons are exact.
    """
    days = list(range(start_day, start_day + n_days))
    result = OneBadAppleResult(
        coverages=list(coverages),
        days=days,
        n_watched=n_devices,
        sample_rate=sample_rate,
        workers=workers,
    )
    result.active_success, result.active_probes = _run_pursuit(
        None, days, sample_rate, seed, n_devices, workers
    )
    for coverage in coverages:
        result.passive_success[coverage] = _run_passive(
            coverage, days, sample_rate, seed, n_devices, workers
        )
        result.hybrid_success[coverage], result.hybrid_probes[coverage] = _run_pursuit(
            coverage, days, sample_rate, seed, n_devices, workers
        )
    return result


def main() -> int:
    for workers in (0, 2):
        print(run(workers=workers).render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
