"""Section 6 experiments: Table 2 and Figure 13 -- the tracking case study.

Two ten-IID cohorts, mirroring the paper's selection rules:

* **random cohort** (Figure 13a): EUI-64 IIDs drawn at random from the
  campaign corpus, at most one per AS and one per country, excluding
  IIDs seen in multiple ASes (the Section 5.5 pathologies);
* **rotating cohort** (Figure 13b, Table 2): same rules, restricted to
  IIDs that changed /64 during the campaign.

Each cohort is hunted daily after the campaign ends, using the
attacker's inferred per-AS allocation and pool sizes to bound the
search.  Paper shape: 9-10/10 of the random cohort found daily; 6-8/10
of the rotating cohort, with every rotating IID changing prefix by day
four; per-IID probe costs range from hundreds to ~10^5, orders of
magnitude below exhaustive search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.pathology import analyze_pathologies
from repro.core.tracker import DeviceTracker, TrackerConfig, TrackingReport
from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_table

COHORT_SIZE = 10


@dataclass
class TrackingResult:
    cohort_name: str = ""
    report: TrackingReport = field(default_factory=TrackingReport)
    days: list[int] = field(default_factory=list)
    meta: dict[int, tuple[int, str, int]] = field(default_factory=dict)
    # iid -> (asn, country, bgp_plen)

    @property
    def n_tracked(self) -> int:
        return len(self.report.tracks)

    def min_found_per_day(self) -> int:
        per_day = self.report.found_per_day()
        return min((per_day.get(d, 0) for d in self.days), default=0)

    def max_found_per_day(self) -> int:
        per_day = self.report.found_per_day()
        return max((per_day.get(d, 0) for d in self.days), default=0)

    def render_fig13(self) -> str:
        found = self.report.found_per_day()
        changed = self.report.changed_prefix_per_day()
        same = self.report.same_prefix_per_day()
        rows = [
            [day, found.get(day, 0), changed.get(day, 0), same.get(day, 0)]
            for day in self.days
        ]
        return render_table(
            ["day", "# IID found", "# in different /64", "# in same /64"],
            rows,
            title=f"Figure 13 ({self.cohort_name}): daily tracking results "
                  f"({self.n_tracked} IIDs)",
        )

    def render_table2(self) -> str:
        rows = []
        for index, (iid, track) in enumerate(sorted(self.report.tracks.items()), 1):
            asn, country, bgp_plen = self.meta.get(iid, (0, "??", 0))
            rows.append(
                [
                    f"#{index}",
                    f"{track.mean_probes:,.1f} / {track.stddev_probes:,.1f}",
                    f"/{bgp_plen}",
                    asn,
                    country,
                    track.days_found,
                    track.distinct_net64s,
                ]
            )
        return render_table(
            ["IID", "Mean Probes / StdDev", "BGP Prefix", "ASN", "CC",
             "# Days", "# /64 Prefixes"],
            rows,
            title="Table 2: prefix-changing EUI-64 IIDs tracked after the campaign",
        )


def _eligible_iids(context: ExperimentContext, rotating_only: bool) -> list[int]:
    store = context.campaign_store
    pathology = analyze_pathologies(store, context.origin_of)
    excluded = set(pathology.multi_as_iids)
    eligible = []
    for iid in store.eui64_iids():
        if iid in excluded:
            continue
        if rotating_only and len(store.net64s_of_iid(iid)) < 2:
            continue
        eligible.append(iid)
    return sorted(eligible)


def select_cohort(
    context: ExperimentContext, rotating_only: bool, seed_salt: int = 0
) -> dict[int, int]:
    """Pick up to ten IIDs (one per AS, one per country) with their last
    known campaign addresses."""
    store = context.campaign_store
    rng = random.Random(context.scale.seed ^ 0xC040 ^ seed_salt)
    eligible = _eligible_iids(context, rotating_only)
    rng.shuffle(eligible)

    chosen: dict[int, int] = {}
    used_asns: set[int] = set()
    used_countries: set[str] = set()
    for iid in eligible:
        observations = store.observations_of_iid(iid)
        last = max(observations, key=lambda o: o.t_seconds)
        asn = context.origin_of(last.source)
        if asn is None or asn in used_asns or asn not in context.as_profiles:
            continue
        country = context.country_of(asn)
        if country in used_countries:
            continue
        chosen[iid] = last.source
        used_asns.add(asn)
        used_countries.add(country)
        if len(chosen) == COHORT_SIZE:
            break
    return chosen


def run_cohort(
    context: ExperimentContext, rotating_only: bool, cohort_name: str
) -> TrackingResult:
    targets = select_cohort(context, rotating_only)
    first_day = context.campaign_config.start_day + context.scale.campaign_days
    days = list(range(first_day, first_day + context.scale.tracking_days))

    tracker = DeviceTracker(
        context.internet,
        context.as_profiles,
        TrackerConfig(seed=context.scale.seed ^ 0x77AC),
    )
    report = tracker.track_many(targets, days)

    result = TrackingResult(cohort_name=cohort_name, report=report, days=days)
    for iid, initial in targets.items():
        asn = context.origin_of(initial) or 0
        bgp = context.internet.rib.bgp_prefix_of(initial)
        result.meta[iid] = (
            asn, context.country_of(asn), bgp.plen if bgp else 0
        )
    return result


def run_fig13a(context: ExperimentContext) -> TrackingResult:
    return run_cohort(context, rotating_only=False, cohort_name="random cohort")


def run_fig13b(context: ExperimentContext) -> TrackingResult:
    return run_cohort(context, rotating_only=True, cohort_name="rotating cohort")


def run_table2(context: ExperimentContext) -> TrackingResult:
    return run_fig13b(context)
