"""Shared experiment context: build once, analyze many times.

Most artifacts consume the same expensive stages -- the simulated
Internet, the Section 4 discovery pipeline, the Section 5 campaign, and
the per-AS inferences.  :class:`ExperimentContext` computes each stage
lazily and caches it, and :func:`get_context` memoizes whole contexts
per scale so a benchmark session pays for each workload once.
"""

from __future__ import annotations

import random
from collections import defaultdict
from functools import cached_property

from repro.core.allocation import AllocationInference
from repro.core.campaign import Campaign, CampaignConfig, CampaignResult
from repro.core.pipeline import DiscoveryPipeline, PipelineConfig, PipelineResult
from repro.core.records import ObservationStore
from repro.core.rotation_pool import RotationPoolInference
from repro.core.tracker import AsProfile
from repro.experiments.scale import DEFAULT, Scale
from repro.net.addr import Prefix
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, Zmap6
from repro.simnet.builder import build_paper_internet
from repro.simnet.clock import seconds
from repro.simnet.internet import SimInternet

# Allocation inference samples the first /52 of one /48 per AS at /64
# granularity: 4096 probes yield exact Algorithm 1 spans for every
# delegation size the scenario uses, at ~6% of a full-/48 sweep's cost.
ALLOC_SAMPLE_PLEN = 52


class ExperimentContext:
    """Lazily computed shared stages for one workload scale."""

    def __init__(self, scale: Scale = DEFAULT) -> None:
        self.scale = scale

    # -- stage 0: the world ---------------------------------------------------

    @cached_property
    def internet(self) -> SimInternet:
        return build_paper_internet(
            seed=self.scale.seed, n_tail_ases=self.scale.n_tail_ases
        )

    @property
    def origin_of(self):
        return self.internet.rib.origin_of

    @property
    def country_of(self):
        return self.internet.registry.country_of

    # -- stage 1: discovery (Section 4) ---------------------------------------

    @cached_property
    def pipeline_result(self) -> PipelineResult:
        pipeline = DiscoveryPipeline(
            self.internet,
            PipelineConfig(
                seed=self.scale.seed, coverage_48s=self.scale.coverage_48s
            ),
        )
        return pipeline.run()

    # -- stage 2: the daily campaign (Section 5) -------------------------------

    @cached_property
    def campaign_config(self) -> CampaignConfig:
        return CampaignConfig(
            days=self.scale.campaign_days, start_day=2, seed=self.scale.seed
        )

    def build_campaign(self) -> Campaign:
        """The campaign over every rotation-flagged /48 (not yet run).

        Probe granularity per /48 follows the allocation-size inference
        (the Section 6 refinement): /60-delegation prefixes get per-/60
        targets so their devices are actually observed; granularity is
        capped at /60 to bound probe volume.  Batch and streaming
        drivers both construct their campaign here, so they probe
        identical targets.
        """
        rotating = sorted(
            self.pipeline_result.rotating_48s, key=lambda p: p.network
        )
        overrides: dict[Prefix, int] = {}
        for asn, inference in self.allocation_inferences.items():
            plen = min(60, inference.inferred_plen)
            if plen <= self.campaign_config.probe_plen:
                continue
            for prefix in self.rotating_48s_by_asn.get(asn, ()):
                overrides[prefix] = plen
        return Campaign(
            self.internet, rotating, self.campaign_config, plen_overrides=overrides
        )

    @cached_property
    def campaign_result(self) -> CampaignResult:
        """The daily campaign's batch-mode result."""
        return self.build_campaign().run()

    @property
    def campaign_store(self) -> ObservationStore:
        return self.campaign_result.store

    @property
    def campaign_days(self) -> list[int]:
        start = self.campaign_config.start_day
        return list(range(start, start + self.scale.campaign_days))

    # -- stage 3: per-AS inferences --------------------------------------------

    @cached_property
    def rotating_48s_by_asn(self) -> dict[int, list[Prefix]]:
        groups: dict[int, list[Prefix]] = defaultdict(list)
        for prefix in self.pipeline_result.rotating_48s:
            asn = self.origin_of(prefix.network)
            if asn:
                groups[asn].append(prefix)
        return {asn: sorted(p, key=lambda q: q.network) for asn, p in groups.items()}

    @cached_property
    def allocation_sample_store(self) -> ObservationStore:
        """Per-/64 probing of one /52 sample per AS (Algorithm 1 input)."""
        store = ObservationStore()
        scanner = Zmap6(
            self.internet, ScanConfig(seed=self.scale.seed ^ 0xA110)
        )
        rng = random.Random(self.scale.seed ^ 0xA110)
        day = self.campaign_config.start_day
        start = seconds(day * 24.0 + 9.0)  # pre-noon, clear of rotation windows
        for asn in sorted(self.rotating_48s_by_asn):
            prefix48 = self.rotating_48s_by_asn[asn][0]
            sample = Prefix(prefix48.network, ALLOC_SAMPLE_PLEN)
            targets = one_target_per_subnet(sample, 64, rng)
            scan = scanner.scan(targets, start_seconds=start)
            start += scan.duration_seconds
            store.add_responses(scan.responses, day=day)
        return store

    @cached_property
    def allocation_inferences(self) -> dict[int, AllocationInference]:
        inferences: dict[int, AllocationInference] = {}
        groups = self.allocation_sample_store.group_eui64_by_asn(self.origin_of)
        for asn, observations in groups.items():
            if asn == 0:
                continue
            try:
                inferences[asn] = AllocationInference.from_observations(
                    asn, observations
                )
            except ValueError:
                continue
        return inferences

    @cached_property
    def pool_inferences(self) -> dict[int, RotationPoolInference]:
        inferences: dict[int, RotationPoolInference] = {}
        groups = self.campaign_store.group_eui64_by_asn(self.origin_of)
        for asn, observations in groups.items():
            if asn == 0:
                continue
            try:
                inferences[asn] = RotationPoolInference.from_observations(
                    asn, observations
                )
            except ValueError:
                continue
        return inferences

    @cached_property
    def as_profiles(self) -> dict[int, AsProfile]:
        """The attacker's working knowledge per AS, for the tracker."""
        profiles: dict[int, AsProfile] = {}
        for asn, pool_inference in self.pool_inferences.items():
            allocation = self.allocation_inferences.get(asn)
            allocation_plen = allocation.inferred_plen if allocation else 56
            pool_plen = min(pool_inference.inferred_plen, allocation_plen)
            profiles[asn] = AsProfile(
                asn=asn, allocation_plen=allocation_plen, pool_plen=pool_plen
            )
        return profiles


_CONTEXTS: dict[str, ExperimentContext] = {}


def get_context(scale: Scale = DEFAULT) -> ExperimentContext:
    """Session-wide memoized context per scale name."""
    context = _CONTEXTS.get(scale.name)
    if context is None:
        context = ExperimentContext(scale)
        _CONTEXTS[scale.name] = context
    return context
