"""Figure 4: CDF of per-AS CPE manufacturer homogeneity.

Paper shape: of 87 ASes with >= 100 EUI-64 IIDs, more than half have
homogeneity > 0.9, three quarters > 0.67, and even the least
homogeneous AS is above ~1/3; >200 distinct manufacturers overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.homogeneity import HomogeneityReport, homogeneity_by_asn
from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_cdf, render_table


@dataclass
class Fig4Result:
    report: HomogeneityReport = field(default_factory=HomogeneityReport)
    min_iids: int = 100

    @property
    def values(self) -> list[float]:
        return self.report.homogeneity_values()

    def render(self) -> str:
        values = self.values
        stats = render_table(
            ["metric", "value"],
            [
                ["ASes included", len(values)],
                ["fraction > 0.9", f"{self.report.fraction_above(0.9):.2f}"],
                ["fraction > 0.67", f"{self.report.fraction_above(0.67):.2f}"],
                ["minimum homogeneity", f"{min(values):.2f}"],
                ["distinct vendors", len(self.report.distinct_vendors())],
            ],
            title="Figure 4: per-AS manufacturer homogeneity",
        )
        plot = render_cdf(
            {"homogeneity": values},
            title="CDF of ASN homogeneity",
            x_label="homogeneity of EUI-64 device manufacturers",
        )
        return f"{stats}\n{plot}"


def run(context: ExperimentContext, min_iids: int | None = None) -> Fig4Result:
    """The campaign corpus is smaller than the paper's, so the >= 100 IID
    bar scales down with the workload (default: 30 at sub-paper scales)."""
    bar = min_iids if min_iids is not None else (
        100 if context.scale.name == "paper" else 30
    )
    report = homogeneity_by_asn(
        context.campaign_store, context.origin_of, min_iids=bar
    )
    return Fig4Result(report=report, min_iids=bar)
