"""Figure 10: hourly EUI-64 address density per /48 of a Versatel /46.

The paper probes one AS8881 /46 hourly for a week and watches delegation
density per constituent /48: reassignment happens in the early-morning
window, one /48 holding most addresses, one nearly none, and the other
two trading density in opposite directions.  We run the hourly campaign
over the same pool structure and report per-/48 density series plus the
hour-of-day histogram of observed density changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.timeseries import DensitySeries, density_over_time
from repro.experiments.context import ExperimentContext
from repro.net.addr import Prefix
from repro.viz.ascii import render_series

VERSATEL_ASN = 8881


@dataclass
class Fig10Result:
    pool_prefix: Prefix | None = None
    series: dict[Prefix, DensitySeries] = field(default_factory=dict)
    rotation_window: tuple[float, float] = (0.0, 6.0)

    def change_hours(self) -> list[float]:
        """Hours-of-day at which any /48's density changed >= 10% of the
        pool's peak (reassignment activity)."""
        peak = max(
            (value for s in self.series.values() for _, value in s.points.items()),
            default=0.0,
        )
        if peak <= 0:
            return []
        hours = []
        for s in self.series.values():
            points = s.sorted_points()
            for (t0, v0), (t1, v1) in zip(points, points[1:]):
                if abs(v1 - v0) >= 0.1 * peak:
                    hours.append(t1 % 24.0)
        return hours

    def fraction_changes_in_window(self) -> float:
        hours = self.change_hours()
        if not hours:
            raise ValueError("no density changes observed")
        lo, hi = self.rotation_window
        return sum(1 for h in hours if lo <= h <= hi) / len(hours)

    def render(self) -> str:
        series = {
            str(prefix): [(t, v) for t, v in s.sorted_points()]
            for prefix, s in self.series.items()
        }
        return render_series(
            series,
            title=f"Figure 10: hourly EUI density per /48 of {self.pool_prefix}",
            x_label="hour",
            y_label="fraction of blocks occupied",
        )


def run(context: ExperimentContext) -> Fig10Result:
    provider = context.internet.provider_of_asn(VERSATEL_ASN)
    if provider is None:
        raise ValueError("paper scenario lacks AS8881")
    pool = provider.pools[0]
    prefixes48 = list(pool.prefix.subnets(48))
    config = CampaignConfig(
        days=context.scale.fig10_days,
        start_day=context.campaign_config.start_day,
        seed=context.scale.seed ^ 0xF16,
    )
    campaign = Campaign(context.internet, prefixes48, config)
    hourly = campaign.run_hourly(days=context.scale.fig10_days)

    blocks_per_48 = 1 << (config.probe_plen - 48)
    window = (pool.policy.rotation_hour,
              pool.policy.rotation_hour + pool.policy.window_hours)
    return Fig10Result(
        pool_prefix=pool.prefix,
        series=density_over_time(hourly.store, prefixes48, blocks_per_48),
        rotation_window=window,
    )
