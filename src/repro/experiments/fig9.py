"""Figure 9: three AS8881 IIDs' assigned prefixes over time.

The paper's staircase: each Versatel IID's delegation increments daily
and wraps modulo the /46 rotation pool, crossing /48 boundaries on the
way.  We select three IIDs from the campaign corpus observed inside one
Versatel /46 on many days and plot their /64-number trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.timeseries import (
    TrajectoryPoint,
    iid_trajectory,
    trajectory_increments,
)
from repro.experiments.context import ExperimentContext
from repro.net.addr import Prefix
from repro.viz.ascii import render_series

VERSATEL_ASN = 8881
N_TRACKED = 3


@dataclass
class Fig9Result:
    pool_prefix: Prefix | None = None
    trajectories: dict[int, list[TrajectoryPoint]] = field(default_factory=dict)

    def modal_increments(self) -> dict[int, int]:
        """Most common per-day /64-number step per IID (should be 256 =
        one /56 delegation per day)."""
        out = {}
        for iid, points in self.trajectories.items():
            increments = trajectory_increments(points)
            positive = [d for d in increments if d > 0]
            out[iid] = max(set(positive), key=positive.count) if positive else 0
        return out

    def wrapped(self) -> set[int]:
        """IIDs whose trajectory wrapped modulo the pool (a negative step)."""
        return {
            iid
            for iid, points in self.trajectories.items()
            if any(d < 0 for d in trajectory_increments(points))
        }

    def render(self) -> str:
        base = self.pool_prefix.network >> 64 if self.pool_prefix else 0
        series = {
            f"IID #{index + 1}": [
                (float(p.day), float(p.net64 - base)) for p in points
            ]
            for index, (iid, points) in enumerate(sorted(self.trajectories.items()))
        }
        return render_series(
            series,
            title=f"Figure 9: /64 offsets within {self.pool_prefix} over time",
            x_label="day",
            y_label="/64 offset in pool",
        )


def run(context: ExperimentContext) -> Fig9Result:
    provider = context.internet.provider_of_asn(VERSATEL_ASN)
    if provider is None:
        raise ValueError("paper scenario lacks AS8881")
    pool = provider.pools[0]
    result = Fig9Result(pool_prefix=pool.prefix)

    store = context.campaign_store
    candidates = []
    for iid in store.eui64_iids():
        observations = store.observations_of_iid(iid)
        if all(o.source in pool.prefix for o in observations):
            days = {o.day for o in observations}
            if len(days) >= min(4, context.scale.campaign_days):
                candidates.append((len(days), iid))
    candidates.sort(reverse=True)
    for _, iid in candidates[:N_TRACKED]:
        result.trajectories[iid] = iid_trajectory(store, iid)
    return result
