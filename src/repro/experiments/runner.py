"""Run every experiment and collect rendered artifacts.

``python -m repro.experiments.runner [small|default]`` prints each
table and figure in paper order; library callers get the rendered texts
back as an ordered mapping.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.experiments import ablations, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments import fig10, fig11_12, headline, table1, tracking
from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.scale import DEFAULT, SMALL, Scale
from repro.util import get_logger

ARTIFACTS: tuple[tuple[str, Callable[[ExperimentContext], object]], ...] = (
    ("table1", table1.run),
    ("table2", tracking.run_table2),
    ("fig3", fig3.run),
    ("fig4", fig4.run),
    ("fig5", fig5.run),
    ("fig6", fig6.run),
    ("fig7", fig7.run),
    ("fig8", fig8.run),
    ("fig9", fig9.run),
    ("fig10", fig10.run),
    ("fig11", fig11_12.run_fig11),
    ("fig12", fig11_12.run_fig12),
    ("fig13a", tracking.run_fig13a),
    ("fig13b", tracking.run_fig13b),
    ("headline", headline.run),
    ("ablation_search", ablations.run_search_ablation),
    ("ablation_remediation", ablations.run_remediation_ablation),
    ("ablation_blocklist", ablations.run_blocklist_ablation),
)


def run_all(scale: Scale = DEFAULT) -> dict[str, str]:
    """Execute every artifact at *scale*; returns name -> rendered text."""
    context = get_context(scale)
    rendered: dict[str, str] = {}
    for name, runner in ARTIFACTS:
        result = runner(context)
        render = getattr(result, "render", None)
        if render is None:
            render = getattr(result, "render_fig13", None)
        if name == "table2":
            rendered[name] = result.render_table2()
        elif name.startswith("fig13"):
            rendered[name] = result.render_fig13()
        else:
            rendered[name] = render()
    return rendered


def main(argv: list[str]) -> int:
    scale = SMALL if (len(argv) > 1 and argv[1] == "small") else DEFAULT
    log = get_logger("repro.experiments")
    # Progress narration goes through the logger (stderr); only the
    # rendered artifacts land on stdout, so piped output stays clean.
    for name, text in run_all(scale).items():
        log.info("rendered %s (scale: %s)", name, scale.name)
        print(f"\n{'=' * 72}\n{name} (scale: {scale.name})\n{'=' * 72}")
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
