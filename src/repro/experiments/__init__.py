"""Experiment drivers: one module per paper table/figure, plus ablations.

Every experiment follows one convention:

* ``run(context) -> <Experiment>Result`` -- computes the artifact's
  underlying data from a shared :class:`ExperimentContext` (simulated
  internet + discovery pipeline + campaign, built once and cached), and
* ``<Experiment>Result.render() -> str`` -- the paper-shaped rows or
  ASCII figure.

``repro.experiments.runner`` executes everything end-to-end, and
``repro.experiments.scale`` defines the scaled-down default workload
next to the paper's full-size parameters.
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.scale import DEFAULT, PAPER, SMALL, Scale

__all__ = ["DEFAULT", "ExperimentContext", "PAPER", "SMALL", "Scale"]
