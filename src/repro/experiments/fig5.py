"""Figure 5: CDFs of inferred customer allocation sizes.

(a) per EUI-64 IID -- paper: ~40% /56 (plurality), ~30% /64, inflection
at /60; (b) median per AS -- paper: ~50% of ASes at /56, ~25% at /64.

The per-IID view comes from the per-/64 allocation sample (one /52 per
AS); dense /64-delegation pools contribute many more sampled IIDs per
AS than /56 pools do, which over-weights them relative to the paper's
Internet-wide population -- the per-AS view (b) is the scale-robust
one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_cdf, render_table


@dataclass
class Fig5Result:
    per_iid_plens: list[int] = field(default_factory=list)
    per_as_plens: dict[int, int] = field(default_factory=dict)

    def iid_histogram(self) -> dict[int, int]:
        return dict(Counter(self.per_iid_plens))

    def as_histogram(self) -> dict[int, int]:
        return dict(Counter(self.per_as_plens.values()))

    def fraction_of_ases_at(self, plen: int) -> float:
        values = list(self.per_as_plens.values())
        if not values:
            raise ValueError("no AS inferences")
        return sum(1 for v in values if v == plen) / len(values)

    def render(self) -> str:
        iid_hist = sorted(self.iid_histogram().items())
        as_hist = sorted(self.as_histogram().items())
        table = render_table(
            ["plen", "# IIDs", "", "plen", "# ASes"],
            [
                [
                    f"/{iid_hist[i][0]}" if i < len(iid_hist) else "",
                    iid_hist[i][1] if i < len(iid_hist) else "",
                    "|",
                    f"/{as_hist[i][0]}" if i < len(as_hist) else "",
                    as_hist[i][1] if i < len(as_hist) else "",
                ]
                for i in range(max(len(iid_hist), len(as_hist)))
            ],
            title="Figure 5: inferred allocation sizes (a: per IID, b: per AS)",
        )
        plot = render_cdf(
            {
                "per-IID": [float(p) for p in self.per_iid_plens],
                "per-AS median": [float(p) for p in self.per_as_plens.values()],
            },
            title="CDFs of inferred allocation size",
            x_label="inferred allocation plen",
        )
        return f"{table}\n{plot}"


def run(context: ExperimentContext) -> Fig5Result:
    result = Fig5Result()
    for asn, inference in context.allocation_inferences.items():
        result.per_as_plens[asn] = inference.inferred_plen
        result.per_iid_plens.extend(inference.per_iid_plen.values())
    return result
