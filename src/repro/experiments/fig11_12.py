"""Figures 11 & 12: pathology exhibits -- MAC reuse and provider switches.

Figure 11: one EUI-64 IID observed (near-)daily in several ASes across
continents -- vendor MAC reuse, which degrades the IID as a tracking
identifier.  Figure 12: two IIDs migrating between the German providers
AS8881 and AS3320, never seen in the old network after the move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pathology import (
    PathologyReport,
    ProviderSwitch,
    analyze_pathologies,
)
from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_table

GERMAN_PAIR = frozenset({8881, 3320})


@dataclass
class Fig11Result:
    report: PathologyReport = field(default_factory=PathologyReport)
    exhibit_iid: int | None = None
    exhibit_days_by_asn: dict[int, set[int]] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [f"AS{asn}", len(days), min(days), max(days)]
            for asn, days in sorted(self.exhibit_days_by_asn.items())
        ]
        return render_table(
            ["ASN", "# days seen", "first day", "last day"],
            rows,
            title=(
                f"Figure 11: IID {self.exhibit_iid:#018x} observed in "
                f"{len(self.exhibit_days_by_asn)} ASes (MAC reuse)"
                if self.exhibit_iid is not None
                else "Figure 11: no multi-AS IID found"
            ),
        )


@dataclass
class Fig12Result:
    switches: list[ProviderSwitch] = field(default_factory=list)

    def german_switches(self) -> list[ProviderSwitch]:
        return [
            s for s in self.switches
            if {s.from_asn, s.to_asn} == GERMAN_PAIR
        ]

    def render(self) -> str:
        rows = [
            [f"{s.iid:#018x}", f"AS{s.from_asn}", f"AS{s.to_asn}",
             s.last_day_old, s.first_day_new]
            for s in self.switches
        ]
        return render_table(
            ["IID", "from", "to", "last day (old)", "first day (new)"],
            rows,
            title="Figure 12: provider switches (IID leaves one AS for another)",
        )


def run_fig11(context: ExperimentContext) -> Fig11Result:
    report = analyze_pathologies(context.campaign_store, context.origin_of)
    result = Fig11Result(report=report)
    # The exhibit: the reused (non-zero) MAC with the widest AS spread.
    best_spread = 0
    for iid in report.mac_reuse_iids:
        presence = report.multi_as_iids[iid]
        if iid == 0x0200_00FF_FE00_0000:  # the all-zero MAC's EUI-64 form
            continue
        if len(presence.asns) > best_spread:
            best_spread = len(presence.asns)
            result.exhibit_iid = iid
            result.exhibit_days_by_asn = dict(presence.days_by_asn)
    if result.exhibit_iid is None and report.mac_reuse_iids:
        iid = next(iter(report.mac_reuse_iids))
        result.exhibit_iid = iid
        result.exhibit_days_by_asn = dict(report.multi_as_iids[iid].days_by_asn)
    return result


def run_fig12(context: ExperimentContext) -> Fig12Result:
    report = analyze_pathologies(context.campaign_store, context.origin_of)
    return Fig12Result(switches=list(report.switches))
