"""Headline counters: the Section 4 and Section 5 totals.

Paper (full scale): discovery found 19.4M addresses (14.8M EUI-64, 6.2M
unique IIDs) and ~12,885 rotating /48s in >100 ASes / 25 countries; the
44-day campaign sent 37B probes, received 24B responses from 134M
unique addresses (110M EUI-64, 9M distinct IIDs).  The scaled shape to
check: EUI-64 addresses dominate total addresses, and unique IIDs are
several times fewer than unique EUI-64 addresses (the same CPE seen at
many addresses -- rotation at work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.viz.ascii import render_table


@dataclass
class HeadlineResult:
    pipeline_summary: dict[str, int] = field(default_factory=dict)
    campaign_summary: dict[str, int] = field(default_factory=dict)
    n_rotating_ases: int = 0
    n_rotating_countries: int = 0

    @property
    def address_reuse_factor(self) -> float:
        """Unique EUI-64 addresses per distinct IID in the campaign."""
        iids = self.campaign_summary.get("unique_eui64_iids", 0)
        if iids == 0:
            raise ValueError("no EUI-64 IIDs in campaign")
        return self.campaign_summary["unique_eui64_addresses"] / iids

    def render(self) -> str:
        rows = [[k, v] for k, v in self.pipeline_summary.items()]
        rows.append(["rotating ASes", self.n_rotating_ases])
        rows.append(["rotating countries", self.n_rotating_countries])
        pipeline = render_table(
            ["Section 4 counter", "value"], rows, title="Discovery headline numbers"
        )
        campaign = render_table(
            ["Section 5 counter", "value"],
            [[k, v] for k, v in self.campaign_summary.items()]
            + [["EUI addresses per IID", f"{self.address_reuse_factor:.1f}"]],
            title="Campaign headline numbers",
        )
        return f"{pipeline}\n\n{campaign}"


def run(context: ExperimentContext) -> HeadlineResult:
    pipeline = context.pipeline_result
    by_asn = pipeline.rotating_by_asn(context.origin_of)
    by_country = pipeline.rotating_by_country(
        context.origin_of, context.country_of
    )
    return HeadlineResult(
        pipeline_summary=pipeline.summary(),
        campaign_summary=context.campaign_result.summary(),
        n_rotating_ases=len([a for a in by_asn if a]),
        n_rotating_countries=len([c for c in by_country if c != "??"]),
    )
