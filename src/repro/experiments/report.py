"""EXPERIMENTS.md generator: paper values vs measured, per artifact.

``python -m repro.experiments.report [small|default] [output-path]``
runs every experiment and writes the comparison document.  Paper values
are hard-coded from the published text; measured values come from the
live run, so the document is always consistent with the code that
produced it.
"""

from __future__ import annotations

import sys

from repro.experiments import ablations, fig3, fig4, fig5, fig7, fig8, fig9
from repro.experiments import fig10, fig11_12, headline, table1, tracking
from repro.experiments import fig6
from repro.experiments.context import get_context
from repro.experiments.scale import DEFAULT, SMALL, Scale


def _section(title: str, paper: str, measured: list[str], verdict: str,
             rendered: str | None = None) -> str:
    lines = [f"## {title}", "", f"**Paper:** {paper}", "", "**Measured:**", ""]
    lines.extend(f"- {m}" for m in measured)
    lines.extend(["", f"**Shape reproduced:** {verdict}", ""])
    if rendered:
        lines.extend(["```text", rendered, "```", ""])
    return "\n".join(lines)


def generate(scale: Scale) -> str:
    context = get_context(scale)
    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"All values below were produced by `repro.experiments.report` at the "
        f"`{scale.name}` scale ({scale.campaign_days}-day campaign, "
        f"{scale.n_tail_ases} tail ASes, seed {scale.seed}). The simulator is "
        f"deterministic: re-running reproduces these numbers exactly. Absolute "
        f"magnitudes are scaled ~10^3 below the paper's Internet-wide campaign; "
        f"the claims under test are the *shapes* (rankings, fractions, "
        f"crossovers, probe-cost orders of magnitude).",
        "",
    ]

    # Table 1
    t1 = table1.run(context)
    top_asns = t1.top_asns()
    top_countries = t1.top_countries()
    parts.append(_section(
        "Table 1 — top rotating ASNs and countries",
        "AS8881 (Versatel) dominates with 5,149 of 12,885 rotating /48s "
        "(40%); top ASNs 8881, 6799, 1241, 9808, 3320; Germany leads "
        "countries with 46%, then Greece.",
        [
            f"top ASNs: {', '.join(f'AS{a} ({n})' for a, n in top_asns)} "
            f"of {t1.total} rotating /48s",
            f"AS8881 share: {top_asns[0][1] / t1.total:.0%}",
            f"top countries: {', '.join(f'{c} ({n})' for c, n in top_countries)}",
        ],
        "yes — AS8881 first with a dominant share; DE then GR lead countries.",
        t1.render(),
    ))

    # Table 2 + Figure 13
    t2 = tracking.run_table2(context)
    f13a = tracking.run_fig13a(context)
    parts.append(_section(
        "Table 2 / Figure 13 — the tracking case study",
        "Random cohort: 9-10 of 10 IIDs found daily over a week. Rotating "
        "cohort: 6-8 of 10 found daily, all rotating by day 4; per-IID "
        "probe costs from ~379 to ~150k, orders of magnitude below the "
        "2^32-probe naive sweep.",
        [
            f"random cohort: {f13a.min_found_per_day()}-"
            f"{f13a.max_found_per_day()} of {f13a.n_tracked} found daily",
            f"rotating cohort: {t2.min_found_per_day()}-"
            f"{t2.max_found_per_day()} of {t2.n_tracked} found daily",
            "per-IID mean probes: "
            + ", ".join(
                f"{track.mean_probes:,.0f}"
                for track in t2.report.tracks.values()
            ),
        ],
        "yes — near-total daily rediscovery; probe costs 10^1-10^4 vs naive 2^32.",
        t2.render_table2() + "\n\n" + f13a.render_fig13() + "\n\n" + t2.render_fig13(),
    ))

    # Figure 3
    f3 = fig3.run(context)
    parts.append(_section(
        "Figure 3 — allocation grids (Entel /56, BH Telecom /60, Starcat /64)",
        "Per-/64 probing of one /48 per provider exposes delegation size as "
        "color-band width: /56 full rows, /60 sixteenth-rows, /64 pixels.",
        [
            f"{f3.names[asn]}: inferred /{f3.inferred[asn]} "
            f"(expected /{f3.expected[asn]})"
            for asn in f3.grids
        ],
        "yes — all three delegation sizes recovered exactly from band widths.",
    ))

    # Figure 4
    f4 = fig4.run(context)
    parts.append(_section(
        "Figure 4 — per-AS manufacturer homogeneity",
        "Of 87 ASes with ≥100 EUI-64 IIDs: >50% above 0.9 homogeneity, 75% "
        "above 0.67, minimum ~1/3; >200 vendors total. Exemplars: "
        "NetCologne 99.98% AVM, Viettel 99.6% ZTE.",
        [
            f"{len(f4.values)} ASes included (bar: ≥{f4.min_iids} IIDs)",
            f"fraction > 0.9: {f4.report.fraction_above(0.9):.2f}",
            f"fraction > 0.67: {f4.report.fraction_above(0.67):.2f}",
            f"minimum homogeneity: {min(f4.values):.2f}",
            f"NetCologne homogeneity: "
            f"{f4.report.per_asn[8422].homogeneity:.4f}" if 8422 in f4.report.per_asn else "",
        ],
        "yes — heavily top-concentrated CDF with a ~1/3 floor; exemplar ASes "
        "near-monolithic.",
    ))

    # Figure 5
    f5 = fig5.run(context)
    parts.append(_section(
        "Figure 5 — inferred allocation sizes",
        "(a) per IID: /56 plurality (~40%), /64 ~30%, inflection at /60; "
        "(b) per AS: ~50% of ASes at /56, ~25% at /64.",
        [
            f"per-AS histogram: "
            + ", ".join(f"/{p}: {n}" for p, n in sorted(f5.as_histogram().items())),
            f"fraction of ASes at /56: {f5.fraction_of_ases_at(56):.2f}",
            f"per-IID histogram: "
            + ", ".join(f"/{p}: {n}" for p, n in sorted(f5.iid_histogram().items())),
        ],
        "per-AS: yes — /56 dominates with /60 and /64 present. Per-IID: the "
        "/64 class is over-represented relative to the paper because the "
        "allocation sample draws one dense /52 per AS rather than weighting "
        "by Internet-wide population (documented sampling artifact).",
    ))

    # Figure 6
    f6 = fig6.run(context)
    parts.append(_section(
        "Figure 6 — one provider, two allocation sizes",
        "Two Versatel /48s: one carved into /56 delegations, one into /64s.",
        [
            f"/56-delegation /48 inferred: /{f6.inferred.get(56)}",
            f"/64-delegation /48 inferred: /{f6.inferred.get(64)}",
        ],
        "yes — both sizes recovered from one AS.",
    ))

    # Figure 7
    f7 = fig7.run(context)
    parts.append(_section(
        "Figure 7 — rotation pools vs BGP prefixes",
        "More than half of 101 ASes infer a /64 pool (no measurable "
        "rotation); the pool-vs-BGP gap is ~16 bits (IIDs travel within "
        "~1/2^16 of their possible range).",
        [
            f"{len(f7.pool_plens)} ASes",
            f"fraction inferring /64: {f7.fraction_non_rotating():.2f}",
            f"median pool-vs-BGP gap: {f7.median_gap_bits():.0f} bits",
        ],
        "partially — the gap (~16-22 bits) and the non-rotating /64 mode "
        "reproduce; the non-rotating *fraction* is lower than the paper's "
        "half because the scaled scenario is rotator-rich by construction.",
    ))

    # Figure 8
    f8 = fig8.run(context)
    parts.append(_section(
        "Figure 8 — distinct /64s per EUI-64 IID",
        "~25% of IIDs seen in exactly one /64; >70% in more than one; "
        "extreme tail up to ~30k prefixes.",
        [
            f"{len(f8.values)} IIDs",
            f"fraction in exactly one /64: "
            f"{1 - f8.fraction_multi():.2f}",
            f"fraction in >1 /64: {f8.fraction_multi():.2f}",
            f"max: {max(f8.values)} /64s "
            f"(campaign is {scale.campaign_days} days, bounding the tail)",
        ],
        "yes — ~3/4 of IIDs demonstrably rotate; tail bounded by campaign "
        "length as expected.",
    ))

    # Figure 9
    f9 = fig9.run(context)
    parts.append(_section(
        "Figure 9 — AS8881 trajectories",
        "Three Versatel IIDs' delegations increment daily, wrapping modulo "
        "the /46 rotation pool.",
        [
            f"3 IIDs tracked in {f9.pool_prefix}",
            f"modal per-day /64 step: "
            + ", ".join(str(s) for s in f9.modal_increments().values())
            + " (256 = one /56 per day)",
            f"wrap-around observed for {len(f9.wrapped())} of 3",
        ],
        "yes — constant +1-delegation daily step, modulo the pool.",
    ))

    # Figure 10
    f10 = fig10.run(context)
    parts.append(_section(
        "Figure 10 — hourly pool density",
        "Prefix reassignment concentrates in the 00:00-06:00 window; "
        "per-/48 densities trade places day by day.",
        [
            f"4 /48s of {f10.pool_prefix} probed hourly for "
            f"{scale.fig10_days} days",
            f"fraction of density changes inside the rotation window: "
            f"{f10.fraction_changes_in_window():.2f}",
        ],
        "yes — density migrations land in the early-morning window.",
    ))

    # Figures 11/12
    f11 = fig11_12.run_fig11(context)
    f12 = fig11_12.run_fig12(context)
    german = f12.german_switches()
    parts.append(_section(
        "Figures 11 & 12 — pathologies",
        "One reused vendor MAC observed daily in ASes on several "
        "continents; the all-zero MAC in 12 ASes; two IIDs switching "
        "between AS8881 and AS3320 and never returning.",
        [
            f"multi-AS IIDs: {f11.report.n_multi_as}; max spread "
            f"{f11.report.max_as_spread()} ASes",
            f"exhibit IID seen in {len(f11.exhibit_days_by_asn)} ASes "
            f"concurrently",
            f"provider switches detected: {len(f12.switches)} "
            f"({len(german)} between the German pair)",
        ],
        "yes — concurrent multi-AS presence (MAC reuse) and clean "
        "sequential AS handovers (switches) both detected.",
    ))

    # Headline
    h = headline.run(context)
    parts.append(_section(
        "Section 4/5 headline counters",
        "Discovery: 19.4M addresses, 14.8M EUI-64, 6.2M unique IIDs, "
        "12,885 rotating /48s in >100 ASes / 25 countries. Campaign: 110M "
        "EUI-64 addresses but only 9M distinct IIDs (~12 addresses/IID).",
        [
            f"discovery: {h.pipeline_summary['total_addresses']} addresses, "
            f"{h.pipeline_summary['eui64_addresses']} EUI-64, "
            f"{h.pipeline_summary['unique_eui64_iids']} unique IIDs",
            f"rotating /48s: {h.pipeline_summary['rotating_48s']} across "
            f"{h.n_rotating_ases} ASes / {h.n_rotating_countries} countries",
            f"campaign: {h.campaign_summary['unique_eui64_addresses']} EUI-64 "
            f"addresses, {h.campaign_summary['unique_eui64_iids']} IIDs "
            f"({h.address_reuse_factor:.1f} addresses per IID)",
        ],
        "yes — EUI-64 dominates responses and each IID appears at many "
        "addresses, the signature of rotation.",
    ))

    # Ablations
    a1 = ablations.run_search_ablation(context)
    a2 = ablations.run_remediation_ablation(context)
    a3 = ablations.run_blocklist_ablation(context)
    best = max(a1.bounds.values(), key=lambda b: b.reduction_factor)
    parts.append(_section(
        "Ablations A1-A3 (extensions)",
        "A1: Figure 2's economics (e.g. 2^18-1 expected probes ≈ 13 s at "
        "10 kpps). A2: Section 8's vendor fix ends tracking. A3: Section "
        "9's observation that address blocklists fail under rotation.",
        [
            f"A1: best per-AS reduction {best.reduction_factor:.1e}x "
            f"(naive {best.naive_probes:.1e} probes -> {best.reduced_probes})",
            f"A2: {a2.remediated_devices} devices remediated; IID-days found "
            f"before/after firmware: {a2.found_before}/{a2.found_after}",
            f"A3: abuse blocked — prefix {a3.outcomes['prefix'].block_rate:.2f}, "
            f"IID {a3.outcomes['iid'].block_rate:.2f}, "
            f"ASN {a3.outcomes['asn'].block_rate:.2f} "
            f"(ASN collateral {a3.outcomes['asn'].collateral_rate:.2f})",
        ],
        "yes — informed search is orders of magnitude cheaper; privacy "
        "extensions end the attack outright; device-identity blocking "
        "survives rotation where prefix blocking does not.",
    ))

    return "\n".join(parts)


def main(argv: list[str]) -> int:
    scale = DEFAULT if (len(argv) > 1 and argv[1] == "default") else SMALL
    path = argv[2] if len(argv) > 2 else "EXPERIMENTS.md"
    text = generate(scale)
    with open(path, "w") as handle:
        handle.write(text)
    print(f"wrote {path} ({len(text.splitlines())} lines, scale {scale.name})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
