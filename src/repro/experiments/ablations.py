"""Ablations: design-choice experiments beyond the paper's figures.

* **search-space reduction** (A1): the probe-cost model of Figure 2
  evaluated across the scenario's real (BGP, pool, allocation) triples,
  plus the empirical tracker cost, quantifying how much each inference
  contributes.
* **vendor remediation** (A2): Section 8's fix -- flip one vendor's CPE
  to privacy addressing mid-study and measure how tracking collapses.
* **rotation-aware blocking** (A3): Section 9's discussion -- compare
  prefix-, IID-, and AS-based blocklists under daily rotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocklist import (
    AbuseScenario,
    BlocklistEvaluator,
    BlocklistOutcome,
    BlockPolicy,
)
from repro.core.correlator import synthesize_flows
from repro.core.search_space import SearchSpaceBound
from repro.core.tracker import DeviceTracker, TrackerConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.tracking import select_cohort
from repro.net.eui64 import eui64_iid_to_mac
from repro.net.oui import OuiRegistry
from repro.simnet.builder import build_paper_internet
from repro.simnet.events import apply_vendor_remediation
from repro.viz.ascii import render_table


# -- A1: search-space reduction ------------------------------------------------

@dataclass
class SearchAblationResult:
    bounds: dict[int, SearchSpaceBound] = field(default_factory=dict)  # per ASN

    def render(self) -> str:
        rows = [
            [
                f"AS{asn}",
                f"/{b.bgp_plen}",
                f"/{b.pool_plen}",
                f"/{b.allocation_plen}",
                f"{b.naive_probes:.2e}",
                b.reduced_probes,
                f"{b.reduction_factor:.1e}",
                f"{b.seconds_at():.2f}s",
            ]
            for asn, b in sorted(self.bounds.items())
        ]
        return render_table(
            ["ASN", "BGP", "pool", "alloc", "naive probes", "informed probes",
             "reduction", "time @10kpps"],
            rows,
            title="Ablation A1: search-space reduction per AS (Figure 2 economics)",
        )


def run_search_ablation(context: ExperimentContext) -> SearchAblationResult:
    result = SearchAblationResult()
    for asn, profile in context.as_profiles.items():
        provider = context.internet.provider_of_asn(asn)
        if provider is None or not provider.bgp_prefixes:
            continue
        bgp_plen = provider.bgp_prefixes[0].plen
        pool_plen = max(profile.pool_plen, bgp_plen)
        result.bounds[asn] = SearchSpaceBound(
            bgp_plen=bgp_plen,
            pool_plen=pool_plen,
            allocation_plen=max(profile.allocation_plen, pool_plen),
        )
    return result


# -- A2: vendor remediation ------------------------------------------------------

@dataclass
class RemediationResult:
    vendor: str = "AVM"
    remediated_devices: int = 0
    switch_day: int = 0
    found_before: int = 0
    found_after: int = 0
    tracked: int = 0

    def render(self) -> str:
        return render_table(
            ["metric", "value"],
            [
                ["vendor remediated", self.vendor],
                ["devices switched to privacy IIDs", self.remediated_devices],
                ["firmware day", self.switch_day],
                ["cohort size (all this vendor)", self.tracked],
                ["IID-days found before firmware", self.found_before],
                ["IID-days found after firmware", self.found_after],
            ],
            title="Ablation A2: Section 8 remediation ends EUI-64 tracking",
        )


def run_remediation_ablation(context: ExperimentContext) -> RemediationResult:
    """A fresh internet (same seed) with the vendor fix applied mid-track."""
    internet = build_paper_internet(
        seed=context.scale.seed, n_tail_ases=context.scale.n_tail_ases
    )
    registry = OuiRegistry.bundled()
    vendor = "AVM"

    first_day = context.campaign_config.start_day + context.scale.campaign_days
    days = list(range(first_day, first_day + context.scale.tracking_days))
    switch_day = days[len(days) // 2]
    remediated = apply_vendor_remediation(
        internet, vendor, at_hours=switch_day * 24.0, oui_registry=registry
    )

    cohort = {
        iid: addr
        for iid, addr in select_cohort(context, rotating_only=False).items()
        if registry.vendor_of_mac(eui64_iid_to_mac(iid)) == vendor
    }
    tracker = DeviceTracker(
        internet, context.as_profiles, TrackerConfig(seed=context.scale.seed)
    )
    report = tracker.track_many(cohort, days)

    result = RemediationResult(
        vendor=vendor,
        remediated_devices=remediated,
        switch_day=switch_day,
        tracked=len(cohort),
    )
    for track in report.tracks.values():
        for outcome in track.outcomes:
            if outcome.found and outcome.day < switch_day:
                result.found_before += 1
            elif outcome.found:
                result.found_after += 1
    return result


# -- A3: blocklists under rotation ------------------------------------------------

@dataclass
class BlocklistAblationResult:
    outcomes: dict[str, BlocklistOutcome] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [
                name,
                f"{outcome.block_rate:.2f}",
                f"{outcome.collateral_rate:.2f}",
                outcome.probes_sent,
            ]
            for name, outcome in self.outcomes.items()
        ]
        return render_table(
            ["policy", "abuse blocked", "innocent blocked", "probes"],
            rows,
            title="Ablation A3: blocklist policies under daily prefix rotation",
        )


def run_blocklist_ablation(
    context: ExperimentContext, asn: int = 8881, n_households: int = 24
) -> BlocklistAblationResult:
    start = context.campaign_config.start_day
    train_days = [start + 1]
    eval_days = [start + 4, start + 5]
    flows = synthesize_flows(
        context.internet, asn, n_households, 3,
        train_days + eval_days, seed=context.scale.seed ^ 0xB10C,
    )
    def day_of(flow):
        return int(flow.t_seconds // 86400.0)

    scenario = AbuseScenario(
        training=[f for f in flows if day_of(f) in train_days],
        evaluation=[f for f in flows if day_of(f) in eval_days],
        abusive_households=set(range(n_households // 4)),
    )
    evaluator = BlocklistEvaluator(
        context.internet, block_plen=64, seed=context.scale.seed
    )
    result = BlocklistAblationResult()
    for policy in BlockPolicy:
        result.outcomes[policy.value] = evaluator.evaluate(scenario, policy)
    return result
