"""Batch vs. streaming: the online-adversary equivalence experiment.

Runs the standard campaign workload twice over the same simulated
Internet -- once through the batch :meth:`Campaign.run`, once through
the single-pass :class:`StreamingCampaign` -- and verifies the paper's
inferences come out *identical*: same observation corpus, same headline
counters, and engine-side (incremental) Algorithm 1/2 results matching
the batch recomputation.  Also reports wall-clock and ingestion
throughput, the numbers ``benchmarks/bench_stream.py`` tracks.

Replaying the same scan times against one internet is sound: device
ICMPv6 token buckets refill within ~0.1 simulated seconds and reset on
large time rewinds, and every other simulator resolution is a pure
function of time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.rotation_pool import RotationPoolInference
from repro.experiments.context import ExperimentContext
from repro.stream.campaign import StreamingCampaign
from repro.viz.ascii import render_table


@dataclass
class StreamingComparison:
    batch_summary: dict[str, int] = field(default_factory=dict)
    stream_summary: dict[str, int] = field(default_factory=dict)
    stores_identical: bool = False
    batch_pool_plens: dict[int, int] = field(default_factory=dict)
    engine_pool_plens: dict[int, int] = field(default_factory=dict)
    batch_seconds: float = 0.0
    stream_seconds: float = 0.0
    responses: int = 0

    @property
    def summaries_identical(self) -> bool:
        return self.batch_summary == self.stream_summary

    @property
    def inferences_identical(self) -> bool:
        return self.batch_pool_plens == self.engine_pool_plens

    @property
    def identical(self) -> bool:
        return (
            self.stores_identical
            and self.summaries_identical
            and self.inferences_identical
        )

    @property
    def stream_throughput(self) -> float:
        """Responses ingested per wall-clock second, streaming mode."""
        return self.responses / self.stream_seconds if self.stream_seconds else 0.0

    def render(self) -> str:
        rows = [
            [key, self.batch_summary.get(key, "-"), self.stream_summary.get(key, "-")]
            for key in self.batch_summary
        ]
        rows.append(["wall-clock (s)", f"{self.batch_seconds:.2f}", f"{self.stream_seconds:.2f}"])
        table = render_table(
            ["counter", "batch", "stream"],
            rows,
            title="Batch vs. streaming campaign (identical-results check)",
        )
        verdict = (
            f"stores identical: {self.stores_identical}; "
            f"inferences identical: {self.inferences_identical}; "
            f"throughput {self.stream_throughput:,.0f} responses/s"
        )
        return f"{table}\n{verdict}"


def _comparison_campaign(context: ExperimentContext, days: int | None):
    """The standard campaign, optionally trimmed to a shorter window.

    Equivalence is day-count-independent (each day runs the same code
    path), so the default 3-day window keeps the experiment cheap; pass
    ``days=None`` for the full campaign.
    """
    campaign = context.build_campaign()
    if days is None or days >= campaign.config.days:
        return campaign
    from dataclasses import replace

    from repro.core.campaign import Campaign

    return Campaign(
        context.internet,
        campaign.prefixes48,
        replace(campaign.config, days=days),
        plen_overrides=campaign.plen_overrides,
    )


def run(context: ExperimentContext, days: int | None = 3) -> StreamingComparison:
    comparison = StreamingComparison()

    t0 = time.perf_counter()
    batch = _comparison_campaign(context, days).run()
    comparison.batch_seconds = time.perf_counter() - t0

    streaming = StreamingCampaign(_comparison_campaign(context, days))
    t0 = time.perf_counter()
    stream = streaming.run()
    comparison.stream_seconds = time.perf_counter() - t0

    comparison.batch_summary = batch.summary()
    comparison.stream_summary = stream.summary()
    comparison.stores_identical = list(batch.store) == list(stream.store)
    comparison.responses = len(stream.store)

    for asn in sorted(streaming.engine.asns()):
        if asn == 0:
            continue
        try:
            batch_inference = RotationPoolInference.from_store(
                asn, batch.store, context.origin_of
            )
        except ValueError:
            continue
        comparison.batch_pool_plens[asn] = batch_inference.inferred_plen
        comparison.engine_pool_plens[asn] = streaming.engine.pool_inference(
            asn
        ).inferred_plen
    return comparison
