"""Figure 7: inferred rotation pool sizes vs BGP-advertised prefix sizes.

Paper shape: more than half the 101 ASes infer a /64 pool (= do not
measurably rotate); rotating ASes' pools sit mostly between /44 and
/56; the gap between the BGP-prefix CDF and the pool CDF is roughly 16
bits -- an IID travels within ~1/2^16 of the space it could.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.util import median
from repro.viz.ascii import render_cdf, render_table


@dataclass
class Fig7Result:
    pool_plens: dict[int, int] = field(default_factory=dict)  # asn -> inferred pool
    bgp_plens: dict[int, int] = field(default_factory=dict)  # asn -> advertised plen

    def fraction_non_rotating(self) -> float:
        values = list(self.pool_plens.values())
        if not values:
            raise ValueError("no pool inferences")
        return sum(1 for plen in values if plen == 64) / len(values)

    def median_gap_bits(self) -> float:
        """Median per-AS gap between pool plen and BGP plen."""
        gaps = [
            self.pool_plens[asn] - self.bgp_plens[asn]
            for asn in self.pool_plens
            if asn in self.bgp_plens
        ]
        if not gaps:
            raise ValueError("no overlapping ASes")
        return median(gaps)

    def render(self) -> str:
        stats = render_table(
            ["metric", "value"],
            [
                ["ASes", len(self.pool_plens)],
                ["fraction inferring /64 (non-rotating)",
                 f"{self.fraction_non_rotating():.2f}"],
                ["median pool-vs-BGP gap (bits)", f"{self.median_gap_bits():.0f}"],
            ],
            title="Figure 7: rotation pool vs BGP prefix sizes",
        )
        plot = render_cdf(
            {
                "BGP prefix": [float(v) for v in self.bgp_plens.values()],
                "rotation pool": [float(v) for v in self.pool_plens.values()],
            },
            title="CDF of prefix sizes by AS",
            x_label="prefix length",
        )
        return f"{stats}\n{plot}"


def run(context: ExperimentContext) -> Fig7Result:
    result = Fig7Result()
    for asn, inference in context.pool_inferences.items():
        result.pool_plens[asn] = inference.inferred_plen
        provider = context.internet.provider_of_asn(asn)
        if provider and provider.bgp_prefixes:
            result.bgp_plens[asn] = provider.bgp_prefixes[0].plen
    return result
