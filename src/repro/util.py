"""Small shared utilities: deterministic mixing, statistics, logging.

Simulation components must be reproducible from explicit seeds, so all
"random-looking but fixed" quantities (privacy IIDs, per-device jitter,
online schedules) derive from :func:`mix64` -- a splitmix64-style avalanche
over the inputs -- rather than from global RNG state.

:func:`get_logger` is the repo's one structured-logging entry point:
stdlib ``logging``, stderr by default (stdout stays machine-readable
for piped results), with an optional JSON-lines formatter for log
shippers.  ``$REPRO_LOG_LEVEL`` and ``$REPRO_LOG_JSON`` configure runs
without code changes.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(*values: int) -> int:
    """Deterministically hash any number of ints to a 64-bit value.

    Order-sensitive and avalanche-quality; used wherever the simulator
    needs a fixed pseudo-random quantity keyed by identifiers.
    """
    acc = 0x243F6A8885A308D3  # pi, for nothing-up-my-sleeve flavour
    for value in values:
        x = (value + _GOLDEN + acc) & _MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        acc = x ^ (x >> 31)
    return acc


def unit_float(*values: int) -> float:
    """Deterministic float in [0, 1) keyed by *values*."""
    return mix64(*values) / float(1 << 64)


def median(values: list[float] | list[int]) -> float:
    """Median of a non-empty list (mean of middle two for even length)."""
    if not values:
        raise ValueError("median of empty list")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mean(values: list[float] | list[int]) -> float:
    """Arithmetic mean of a non-empty list."""
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)


def stddev(values: list[float] | list[int]) -> float:
    """Population standard deviation (the paper reports simple spreads)."""
    if not values:
        raise ValueError("stddev of empty list")
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5


# -- structured logging ------------------------------------------------------


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record -- the same envelope shape as the
    ``repro.obs`` event log, so shippers parse both with one reader."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "t": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, separators=(",", ":"))


def get_logger(
    name: str = "repro",
    *,
    level: "int | str | None" = None,
    json_output: bool | None = None,
    stream: "IO[str] | None" = None,
) -> logging.Logger:
    """A configured stdlib logger for diagnostics.

    Diagnostics go to stderr (or *stream*) so script stdout stays
    result-only; format is human one-liners, or JSON lines when
    *json_output* (or ``$REPRO_LOG_JSON=1``) is set.  Level defaults to
    ``$REPRO_LOG_LEVEL`` then ``INFO``.  Repeat calls with the same
    *name* and no overrides reuse the existing configuration; passing
    any override reconfigures (tests swap streams this way).
    """
    logger = logging.getLogger(name)
    configured = getattr(logger, "_repro_configured", False)
    overridden = level is not None or json_output is not None or stream is not None
    if configured and not overridden:
        return logger
    if json_output is None or level is None:
        from repro.config import current

        settings = current()
        if json_output is None:
            json_output = settings.log_json
        if level is None:
            level = settings.log_level or "INFO"
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLogFormatter()
        if json_output
        else logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    logger.handlers[:] = [handler]
    logger.propagate = False
    logger.setLevel(level.upper() if isinstance(level, str) else level)
    logger._repro_configured = True
    return logger
