"""Small shared utilities: deterministic integer mixing and statistics.

Simulation components must be reproducible from explicit seeds, so all
"random-looking but fixed" quantities (privacy IIDs, per-device jitter,
online schedules) derive from :func:`mix64` -- a splitmix64-style avalanche
over the inputs -- rather than from global RNG state.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(*values: int) -> int:
    """Deterministically hash any number of ints to a 64-bit value.

    Order-sensitive and avalanche-quality; used wherever the simulator
    needs a fixed pseudo-random quantity keyed by identifiers.
    """
    acc = 0x243F6A8885A308D3  # pi, for nothing-up-my-sleeve flavour
    for value in values:
        x = (value + _GOLDEN + acc) & _MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        acc = x ^ (x >> 31)
    return acc


def unit_float(*values: int) -> float:
    """Deterministic float in [0, 1) keyed by *values*."""
    return mix64(*values) / float(1 << 64)


def median(values: list[float] | list[int]) -> float:
    """Median of a non-empty list (mean of middle two for even length)."""
    if not values:
        raise ValueError("median of empty list")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mean(values: list[float] | list[int]) -> float:
    """Arithmetic mean of a non-empty list."""
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)


def stddev(values: list[float] | list[int]) -> float:
    """Population standard deviation (the paper reports simple spreads)."""
    if not values:
        raise ValueError("stddev of empty list")
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5
