"""The replication wire protocol: constants and errors.

Replication rides the fabric's framing layer wholesale -- RFB1
length-prefixed CRC-checked frames, pickled tagged-tuple messages, and
the mutual HMAC-SHA256 authkey handshake -- so the only protocol here
is the message vocabulary:

``("subscribe", PROTO_VERSION, base_id | None, seq)``
    follower -> shipper, right after authentication: the follower's
    applied high-water mark (``(None, -1)`` when it has nothing), so
    the shipper replays exactly the missing tail -- or the whole chain
    when the follower is on another base (or fresh).
``("welcome", PROTO_VERSION, {...})``
    shipper -> follower: subscription accepted; the dict carries
    advisory limits (currently ``max_frame``).
``("segment", meta, raw)``
    shipper -> follower: one raw ``ckptbin`` segment, byte-exact as
    written to the primary's checkpoint file.  *meta* carries
    ``base_id``/``seq``/``kind`` plus ``t``, the primary's wall-clock
    send time that follower lag is measured against.  A ``full`` + seq
    0 segment resets the follower's chain (shipper rebase or forced
    resync).
``("stop",)``
    shipper -> follower: orderly close; the follower stops without
    treating it as a lost primary.

Nothing is unpickled before the handshake completes, and the
``subscribe`` frame is capped at :data:`HELLO_FRAME_MAX` -- the same
pre-auth allocation discipline the fabric enforces.
"""

from __future__ import annotations

#: Replication protocol revision (independent of the fabric's).
PROTO_VERSION = 1

#: Largest accepted ``subscribe`` frame -- it is a tiny tuple; anything
#: bigger is a confused or hostile peer.
HELLO_FRAME_MAX = 4096


class ReplicationError(RuntimeError):
    """A replication setup or protocol failure (configuration, dial,
    handshake).  Segment-content corruption raises
    :class:`~repro.stream.ckptbin.CheckpointError` instead."""


__all__ = ["HELLO_FRAME_MAX", "PROTO_VERSION", "ReplicationError"]
