"""``repro.replicate``: checkpoint-delta replication and warm standby.

A binary-checkpoint campaign gains a hot spare: the primary's
:class:`SegmentShipper` streams every checkpoint segment -- byte-exact
off the chain file, over the fabric's authenticated framing -- to any
number of :class:`ReplicaFollower` subscribers, each of which merges
the chain incrementally (the same validate-before-mutate assembler the
file reader uses), tracks its replication lag, optionally serves
read-only queries tagged ``role: standby``, and can *promote*: write
the applied chain out as a normal resumable checkpoint and continue
the pursuit via ``StreamingCampaign.resume`` as if the primary's
SIGKILL never happened.

Wiring is one knob: set ``REPRO_REPLICATE_BIND`` (or pass ``shipper=``
to :class:`~repro.stream.campaign.StreamingCampaign`) on the primary,
and run ``python -m repro.replicate.follower tcp://primary:port`` on
the standby.  Unset, replication costs a single ``None`` check per
checkpoint.
"""

from .protocol import HELLO_FRAME_MAX, PROTO_VERSION, ReplicationError
from .shipper import SegmentShipper


def __getattr__(name):
    # Lazy: ``python -m repro.replicate.follower`` would otherwise
    # find the module pre-imported by this package and warn.
    if name == "ReplicaFollower":
        from .follower import ReplicaFollower

        return ReplicaFollower
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "HELLO_FRAME_MAX",
    "PROTO_VERSION",
    "ReplicaFollower",
    "ReplicationError",
    "SegmentShipper",
]
