"""The warm-standby follower: apply replicated segments, stand ready.

A :class:`ReplicaFollower` dials a primary's
:class:`~repro.replicate.shipper.SegmentShipper`, subscribes with its
applied ``(base_id, seq)`` high-water mark, and feeds every received
segment through a :class:`~repro.stream.ckptbin.ChainAssembler` -- the
same validate-before-mutate merge the file reader uses, so a corrupt
or out-of-order segment is rejected *before* it can poison the
standby's state.  The assembled state is exactly what
:func:`~repro.stream.ckptbin.read_state` would return from the
primary's checkpoint file, which is what makes promotion exact.

Three consumption modes, composable:

* **warm state** -- :attr:`engine` materializes a live
  :class:`~repro.stream.engine.StreamEngine` from the applied chain
  (lazily, cached until the next segment), for in-process queries.
* **read-only serving** -- :meth:`serve` boots a
  :class:`~repro.serve.TrackerServer` over the standby engine whose
  ``/healthz`` and ``/stats`` carry ``role: standby`` plus the applied
  ``(base_id, seq)`` and replication lag, so a load balancer can tell
  a standby from the primary and judge its freshness.
* **promotion** -- :meth:`promote` writes the applied chain to disk as
  a normal resumable binary checkpoint (byte-identical to the
  primary's file at the last shipped segment);
  :meth:`promote_campaign` goes one further and boots
  ``StreamingCampaign.resume`` over it, so a SIGKILLed primary's
  pursuit continues as if the kill never happened.

Run standalone as ``python -m repro.replicate.follower tcp://primary:port``.
"""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path

from repro import config
from repro.stream.checkpoint import restore_engine
from repro.stream.ckptbin import ChainAssembler, CheckpointError
from repro.stream.fabric import framing
from repro.stream.fabric.transport import _parse_address, _set_nodelay
from repro.util import get_logger

from .protocol import HELLO_FRAME_MAX, PROTO_VERSION, ReplicationError

log = get_logger("repro.replicate.follower")


class ReplicaFollower:
    """Applies a primary's replicated checkpoint chain, ready to serve
    or take over."""

    def __init__(
        self,
        address: str,
        *,
        authkey: str | None = None,
        telemetry=None,
        connect_timeout: float | None = None,
        max_frame: int | None = None,
        retry_interval: float = 0.5,
        max_retries: int | None = None,
    ) -> None:
        settings = config.current(
            replicate_authkey=authkey,
            replicate_connect_timeout=connect_timeout,
            fabric_max_frame_bytes=max_frame,
        )
        self.authkey = settings.replicate_authkey or settings.fabric_authkey
        if self.authkey is None:
            raise ReplicationError(
                "a follower needs the primary's authkey: pass authkey= or "
                "set REPRO_REPLICATE_AUTHKEY / REPRO_FABRIC_AUTHKEY"
            )
        try:
            self._host, self._port = _parse_address(address)
        except Exception as exc:
            raise ReplicationError(str(exc)) from None
        self.address = address
        self._timeout = settings.replicate_connect_timeout
        self._max_frame = settings.fabric_max_frame_bytes
        self.retry_interval = retry_interval
        self.max_retries = max_retries
        self.telemetry = telemetry
        self._obs = None
        if telemetry is not None:
            from repro.obs.instruments import ReplicationInstruments

            self._obs = ReplicationInstruments(telemetry)
        # The applied chain.  _asm merges segments; _raw keeps their
        # exact bytes in order, so promote() can reproduce the
        # primary's checkpoint file verbatim.  Guarded by _lock --
        # the receive thread writes, serve/promote/stats read.
        self._lock = threading.RLock()
        self._asm: ChainAssembler | None = None
        self._raw: list[bytes] = []
        self._engine = None
        self.segments_applied = 0
        self.segments_rejected = 0
        self.reconnects = 0
        self.lag_seconds: float | None = None
        self.stopped_by_primary = False
        self._stop = threading.Event()
        self._sock: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._server = None
        self._publisher = None

    # -- applied-chain accessors -------------------------------------------

    @property
    def applied_base_id(self) -> str | None:
        with self._lock:
            return self._asm.base_id if self._asm is not None else None

    @property
    def applied_seq(self) -> int:
        """Highest applied segment seq, ``-1`` when nothing applied --
        exactly the high-water mark the ``subscribe`` frame carries."""
        with self._lock:
            return self._asm.seq if self._asm is not None else -1

    @property
    def state(self) -> dict:
        """The assembled campaign state (what
        :func:`~repro.stream.ckptbin.read_state` would return from the
        primary's file at the last applied segment)."""
        with self._lock:
            if self._asm is None:
                raise ReplicationError("no segments applied yet")
            return self._asm.state()

    @property
    def engine(self):
        """A live engine restored from the applied chain.

        Rebuilt lazily after each applied segment and cached; restored
        without an ``origin_of`` resolver -- origins only matter at
        ingest, and a standby engine answers queries, it never ingests.
        """
        with self._lock:
            if self._engine is None:
                # A campaign chain nests the engine under "engine"; a
                # chain saved from a bare engine *is* the engine state.
                state = self.state
                self._engine = restore_engine(state.get("engine", state))
            return self._engine

    def role_info(self) -> dict:
        """The replication fields the standby HTTP endpoints merge into
        ``/healthz`` and ``/stats``."""
        with self._lock:
            return {
                "role": "standby",
                "applied_base_id": self.applied_base_id,
                "applied_seq": self.applied_seq,
                "lag_seconds": (
                    round(self.lag_seconds, 6)
                    if self.lag_seconds is not None
                    else None
                ),
            }

    # -- the replication loop ----------------------------------------------

    def start(self) -> "ReplicaFollower":
        """Run the replication loop on a daemon thread."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.run, name="repl-follower", daemon=True
        )
        self._thread.start()
        return self

    def run(self) -> None:
        """Replicate until stopped, reconnecting through failures.

        Retries dial failures and dropped connections every
        ``retry_interval`` seconds, ``max_retries`` times in a row
        (``None`` = forever); a successful subscription resets the
        count.  A failed *authentication* is not retried -- a wrong key
        never becomes right -- it raises :class:`ReplicationError`.
        """
        failures = 0
        while not self._stop.is_set():
            try:
                sock = self._connect()
            except framing.AuthenticationError as exc:
                raise ReplicationError(
                    f"replication handshake with {self.address} failed: {exc}"
                ) from None
            except (OSError, framing.FrameError, EOFError) as exc:
                failures += 1
                if self.max_retries is not None and failures > self.max_retries:
                    raise ReplicationError(
                        f"cannot reach primary at {self.address} "
                        f"after {failures} attempts: {exc}"
                    ) from None
                self._stop.wait(self.retry_interval)
                continue
            failures = 0
            try:
                self._receive(sock)
            except (OSError, framing.FrameError, EOFError, CheckpointError) as exc:
                if self._stop.is_set():
                    break
                # Lost or poisoned connection: reconnect and let the
                # subscribe high-water mark drive catch-up.
                self.reconnects += 1
                if self._obs is not None:
                    self._obs.reconnected()
                log.warning(
                    "replication link to %s dropped (%s); reconnecting",
                    self.address,
                    exc,
                )
                self._stop.wait(self.retry_interval)
            finally:
                self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass
            if self.stopped_by_primary:
                break

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            _set_nodelay(sock)
            framing.authenticate_worker(sock, self.authkey)
            framing.send_frame(
                sock,
                framing.encode(
                    (
                        "subscribe",
                        PROTO_VERSION,
                        self.applied_base_id,
                        self.applied_seq,
                    )
                ),
            )
            welcome = framing.decode(framing.recv_frame(sock, HELLO_FRAME_MAX))
            if (
                not isinstance(welcome, tuple)
                or len(welcome) != 3
                or welcome[0] != "welcome"
            ):
                raise framing.FrameError(f"expected welcome, got {welcome!r}")
            if welcome[1] != PROTO_VERSION:
                raise framing.FrameError(
                    f"replication protocol mismatch: primary {welcome[1]},"
                    f" local {PROTO_VERSION}"
                )
            sock.settimeout(None)
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._sock = sock
        log.info(
            "subscribed to %s at (%s, %d)",
            self.address,
            self.applied_base_id,
            self.applied_seq,
        )
        return sock

    def _receive(self, sock: socket.socket) -> None:
        while not self._stop.is_set():
            message = framing.decode(framing.recv_frame(sock, self._max_frame))
            if not isinstance(message, tuple) or not message:
                raise framing.FrameError(f"malformed message: {message!r}")
            if message[0] == "segment":
                _, meta, raw = message
                self._apply(meta, raw)
            elif message[0] == "stop":
                self.stopped_by_primary = True
                log.info("primary at %s sent stop", self.address)
                return
            else:
                raise framing.FrameError(
                    f"unexpected message tag: {message[0]!r}"
                )

    def _apply(self, meta: dict, raw: bytes) -> None:
        """Validate and merge one segment; reject without side effects.

        A ``full`` seq-0 segment starts a fresh chain (primary rebase,
        or a forced resync) -- assembled in a *new* assembler and only
        committed on success, so even a corrupt rebase segment leaves
        the previously applied chain intact and queryable.
        """
        t0 = time.perf_counter()
        with self._lock:
            reset = self._asm is None or (
                meta.get("kind") == "full" and meta.get("seq") == 0
            )
            target = (
                ChainAssembler(label=f"<{self.address}>")
                if reset
                else self._asm
            )
            try:
                applied = target.apply(raw)
            except CheckpointError:
                self.segments_rejected += 1
                if self._obs is not None:
                    self._obs.rejected_segment()
                raise
            if reset:
                self._asm = target
                self._raw = [raw]
            else:
                self._raw.append(raw)
            self._engine = None
            self.segments_applied += 1
            self.lag_seconds = max(0.0, time.time() - meta.get("t", time.time()))
            lag = self.lag_seconds
        if self._obs is not None:
            self._obs.applied(
                applied["base_id"],
                applied["seq"],
                applied["kind"],
                time.perf_counter() - t0,
                lag,
            )
        self._refresh_serve()

    def stop(self) -> None:
        """Stop replicating (idempotent; safe from any thread)."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            # Wake the receive thread out of its blocking recv.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # -- read-only serving -------------------------------------------------

    def serve(self, *, host: str = "127.0.0.1", port: int = 0) -> str:
        """Boot a read-only standby HTTP endpoint; returns its URL.

        Responses carry ``role: standby`` and the applied ``(base_id,
        seq)``, so clients can tell how fresh the answer is.  Before
        the first segment arrives the endpoint serves an empty engine
        (health checks work immediately; queries return no data).
        """
        from repro.serve.http import TrackerServer
        from repro.serve.snapshot import SnapshotPublisher
        from repro.stream.engine import StreamEngine

        if self._server is not None:
            return self._server.url
        with self._lock:
            engine = self.engine if self._asm is not None else StreamEngine()
        self._publisher = SnapshotPublisher(engine, self.telemetry)
        self._server = TrackerServer(
            self._publisher,
            self.telemetry,
            host=host,
            port=port,
            role_info=self.role_info,
        )
        return self._server.start()

    def _refresh_serve(self) -> None:
        """Republish the standby snapshot after an applied segment.

        Runs on the receive thread -- the follower's only mutator --
        which satisfies the publisher's ingest-thread-only contract.
        """
        if self._publisher is None:
            return
        self._publisher.rebind(self.engine)
        self._publisher.refresh(force=True)

    def stop_serving(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
            self._publisher = None

    # -- promotion ---------------------------------------------------------

    def promote(self, path: str | Path) -> Path:
        """Finalize the applied chain into a resumable checkpoint file.

        Stops replication and serving, then writes the applied
        segments -- their exact received bytes, concatenated -- to
        *path* via tmp + atomic replace.  The result is byte-identical
        to the primary's checkpoint file as of the last shipped
        segment, ready for ``StreamingCampaign.resume``.
        """
        self.stop()
        self.stop_serving()
        with self._lock:
            if not self._raw:
                raise ReplicationError("nothing applied; cannot promote")
            payload = b"".join(self._raw)
            base_id, seq = self._asm.base_id, self._asm.seq
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_bytes(payload)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        log.info(
            "promoted: chain (%s, %d) finalized to %s (%d bytes)",
            base_id,
            seq,
            path,
            len(payload),
        )
        if self._obs is not None:
            self._obs.promoted(base_id, seq, path)
        return path

    def promote_campaign(self, campaign, path: str | Path, **resume_kwargs):
        """Promote and resume: the standby takes over the pursuit.

        Writes the applied chain to *path*, then boots
        ``StreamingCampaign.resume`` over it with *campaign* (the same
        campaign spec the primary ran) -- the returned streaming
        campaign continues from the last replicated checkpoint exactly
        as the primary would have.
        """
        from repro.stream.campaign import StreamingCampaign

        return StreamingCampaign.resume(
            campaign, self.promote(path), **resume_kwargs
        )

    def promote_daemon(
        self,
        campaign,
        path: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        min_snapshot_interval: float = 0.0,
        **resume_kwargs,
    ):
        """Promote into a full serving primary: a
        :class:`~repro.serve.TrackerDaemon` over the resumed campaign."""
        from repro.serve.daemon import TrackerDaemon

        streaming = self.promote_campaign(campaign, path, **resume_kwargs)
        return TrackerDaemon(
            streaming,
            host=host,
            port=port,
            min_snapshot_interval=min_snapshot_interval,
        )

    def __enter__(self) -> "ReplicaFollower":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
        self.stop_serving()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.replicate.follower`` -- a standalone standby.

    Replicates until the primary sends ``stop``, the connection dies
    past the retry budget, or the process is interrupted; with
    ``--chain`` the applied chain is finalized to that path on the way
    out, ready for ``StreamingCampaign.resume``.  Exit status: 0 after
    an orderly stop, 1 on a replication failure (bad authkey,
    unreachable primary).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.replicate.follower",
        description="warm-standby follower for a replicated campaign",
    )
    parser.add_argument("address", help="primary shipper endpoint, tcp://host:port")
    parser.add_argument(
        "--authkey",
        default=None,
        help="shared secret (default: REPRO_REPLICATE_AUTHKEY / "
        "REPRO_FABRIC_AUTHKEY)",
    )
    parser.add_argument(
        "--chain",
        default=None,
        metavar="PATH",
        help="finalize the applied chain to this checkpoint file on exit",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="serve read-only standby HTTP while replicating",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="consecutive connection failures tolerated (default 3)",
    )
    parser.add_argument(
        "--retry-interval", type=float, default=0.5, metavar="SECONDS"
    )
    args = parser.parse_args(argv)

    try:
        follower = ReplicaFollower(
            args.address,
            authkey=args.authkey,
            retry_interval=args.retry_interval,
            max_retries=args.retries,
        )
    except ReplicationError as exc:
        print(f"error: {exc}", flush=True)
        return 1
    if args.serve:
        url = follower.serve(host=args.host, port=args.port)
        print(f"standby serving on {url}", flush=True)
    try:
        follower.run()
    except ReplicationError as exc:
        print(f"error: {exc}", flush=True)
        return 1
    except KeyboardInterrupt:
        follower.stop()
    finally:
        if args.chain and follower.segments_applied:
            path = follower.promote(args.chain)
            print(f"chain finalized to {path}", flush=True)
        follower.stop_serving()
    print(
        f"follower done: {follower.segments_applied} applied, "
        f"{follower.reconnects} reconnects",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
