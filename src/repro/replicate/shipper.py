"""The primary-side segment shipper: checkpoint writes onto the wire.

A :class:`SegmentShipper` binds a TCP listener and streams every new
checkpoint segment -- byte-exact, straight off the chain file -- to
each subscribed follower.  It hooks in right after
:meth:`~repro.stream.ckptbin.BinaryCheckpointer.save`: the campaign
calls :meth:`SegmentShipper.ship` with the saver, and the shipper
diffs the saver's :attr:`~repro.stream.ckptbin.BinaryCheckpointer.chain`
against the segments it already holds, reads only the new byte ranges,
and fans them out.  A rebase (full rewrite, fresh ``base_id``) resets
the shipper's chain copy, so followers see the ``seq`` 0 segment and
reset too.

Followers are decoupled from the checkpoint thread by a bounded
per-subscriber outbox drained by a writer thread: :meth:`ship` never
blocks on a slow follower.  A follower that overflows its bound is
degraded to a *full-chain resync* -- queue dropped, entire current
chain re-enqueued from ``seq`` 0 -- which is bounded by the saver's
``max_chain``, so the outbox can never grow without limit.  (The one
in-flight frame the writer may already hold can reach such a follower
out of order; the follower treats the resulting chain break as a lost
connection and reconnects with its high-water mark, which heals it.)

Catch-up works the same way on connect: the subscriber's ``subscribe``
frame carries its applied ``(base_id, seq)`` and the shipper replays
the missing tail from its in-memory chain copy -- never from the file,
which only the checkpoint thread may touch -- or the whole chain when
the follower is on another base.

Security matches the fabric: mutual HMAC authkey handshake before any
pickled frame is decoded (:mod:`repro.stream.fabric.framing`).  With
no key configured (``REPRO_REPLICATE_AUTHKEY``, falling back to
``REPRO_FABRIC_AUTHKEY``) the shipper generates a random one, exposed
as :attr:`SegmentShipper.authkey` for followers it shares a process or
deploy script with.
"""

from __future__ import annotations

import secrets
import socket
import threading
import time
from collections import deque

from repro import config
from repro.stream.ckptbin import segment_bytes
from repro.stream.fabric import framing
from repro.stream.fabric.transport import _parse_address, _set_nodelay
from repro.util import get_logger

from .protocol import HELLO_FRAME_MAX, PROTO_VERSION, ReplicationError

log = get_logger("repro.replicate.shipper")


class _Subscriber:
    """One follower connection with a bounded, clearable outbox.

    A deque under a condition rather than a ``queue.Queue``: overflow
    handling (clear + force-refill with the full chain) needs the
    bound to be advisory for resync items while strict for live ships.
    """

    _STOP = object()

    def __init__(self, sock, peer, bound: int, on_dead) -> None:
        self.sock = sock
        self.peer = peer
        self.bound = bound
        self.dead = False
        self._on_dead = on_dead
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._drain, name="repl-shipper-writer", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def offer(self, message) -> bool:
        """Enqueue within the bound; ``False`` means overflow."""
        with self._cond:
            if self.dead:
                return True  # a dead subscriber is dropped, not resynced
            if len(self._queue) >= self.bound:
                return False
            self._queue.append(message)
            self._cond.notify()
            return True

    def force(self, message) -> None:
        """Enqueue past the bound (catch-up/resync items, ``stop``)."""
        with self._cond:
            if self.dead:
                return
            self._queue.append(message)
            self._cond.notify()

    def clear(self) -> None:
        with self._cond:
            self._queue.clear()

    def stop(self) -> None:
        with self._cond:
            self._queue.append(self._STOP)
            self._cond.notify()

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    self._cond.wait()
                message = self._queue.popleft()
            if message is self._STOP:
                break
            try:
                framing.send_frame(self.sock, framing.encode(message))
            except OSError:
                break
        with self._cond:
            self.dead = True
            self._queue.clear()
        try:
            self.sock.close()
        except OSError:
            pass
        self._on_dead(self)


class SegmentShipper:
    """Streams binary checkpoint segments to subscribed followers."""

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        *,
        authkey: str | None = None,
        telemetry=None,
        outbox_segments: int | None = None,
        connect_timeout: float | None = None,
        max_frame: int | None = None,
    ) -> None:
        settings = config.current(
            replicate_authkey=authkey,
            replicate_outbox_frames=outbox_segments,
            replicate_connect_timeout=connect_timeout,
            fabric_max_frame_bytes=max_frame,
        )
        self.authkey = (
            settings.replicate_authkey
            or settings.fabric_authkey
            or secrets.token_hex(16)
        )
        self._bound = settings.replicate_outbox_frames
        self._timeout = settings.replicate_connect_timeout
        self._max_frame = settings.fabric_max_frame_bytes
        try:
            host, port = _parse_address(address)
        except Exception as exc:
            raise ReplicationError(str(exc)) from None
        self._listener = socket.create_server((host, port))
        bound_host, bound_port = self._listener.getsockname()[:2]
        self._host = bound_host if host in ("0.0.0.0", "::") else host
        self._port = bound_port
        self._lock = threading.Lock()
        #: The shipper's authoritative chain copy: ``(meta, raw)`` in
        #: seq order.  Bounded by the saver's ``max_chain`` (a rebase
        #: resets it), so memory stays proportional to one chain.
        self._chain: list[tuple[dict, bytes]] = []
        self._subs: list[_Subscriber] = []
        self._closed = False
        self.segments_shipped = 0
        self.resyncs = 0
        self.telemetry = telemetry
        self._obs = None
        if telemetry is not None:
            from repro.obs.instruments import ReplicationInstruments

            self._obs = ReplicationInstruments(telemetry)
        threading.Thread(
            target=self._accept_loop, name="repl-shipper-accept", daemon=True
        ).start()

    # -- addressing --------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound endpoint, ``tcp://host:port``."""
        return f"tcp://{self._format_host()}:{self._port}"

    def _format_host(self) -> str:
        if self._host in ("0.0.0.0", ""):
            return "127.0.0.1"
        if self._host == "::":
            return "::1"
        return self._host

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    # -- accepting followers ----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._closed:
                try:
                    sock.close()
                except OSError:
                    pass
                return
            threading.Thread(
                target=self._handshake,
                args=(sock, peer),
                name="repl-shipper-handshake",
                daemon=True,
            ).start()

    def _handshake(self, sock, peer) -> None:
        """Authenticate one dialer and subscribe it, or drop it.

        Garbage connections (scanners, wrong keys, stalled dialers) are
        closed without disturbing existing subscribers; nothing is
        unpickled before the mutual handshake succeeds.
        """
        try:
            sock.settimeout(self._timeout)
            _set_nodelay(sock)
            framing.authenticate_master(sock, self.authkey)
            hello = framing.decode(framing.recv_frame(sock, HELLO_FRAME_MAX))
            if (
                not isinstance(hello, tuple)
                or len(hello) != 4
                or hello[0] != "subscribe"
            ):
                raise framing.FrameError(f"expected subscribe, got {hello!r}")
            _, proto, base_id, seq = hello
            if proto != PROTO_VERSION:
                raise framing.FrameError(
                    f"replication protocol mismatch: peer {proto},"
                    f" local {PROTO_VERSION}"
                )
            framing.send_frame(
                sock,
                framing.encode(
                    ("welcome", PROTO_VERSION, {"max_frame": self._max_frame})
                ),
            )
            sock.settimeout(None)
        except (framing.FrameError, EOFError, OSError, ValueError) as exc:
            log.debug("dropped replication dialer %s: %s", peer, exc)
            try:
                sock.close()
            except OSError:
                pass
            return
        subscriber = _Subscriber(sock, peer, self._bound, self._drop)
        with self._lock:
            backlog = self._chain
            if (
                base_id is not None
                and self._chain
                and self._chain[0][0]["base_id"] == base_id
            ):
                # Same base: replay only past the follower's mark.
                backlog = [item for item in self._chain if item[0]["seq"] > seq]
            for meta, raw in backlog:
                subscriber.force(("segment", meta, raw))
            self._subs.append(subscriber)
            count = len(self._subs)
        subscriber.start()
        log.info(
            "replication follower %s subscribed at (%s, %s); %d behind",
            peer,
            base_id,
            seq,
            len(backlog),
        )
        if self._obs is not None:
            self._obs.subscribers_now(count)

    def _drop(self, subscriber) -> None:
        with self._lock:
            if subscriber in self._subs:
                self._subs.remove(subscriber)
            count = len(self._subs)
        if self._obs is not None:
            self._obs.subscribers_now(count)

    # -- shipping ----------------------------------------------------------

    def ship(self, saver) -> int:
        """Stream the segments *saver*'s last save added; returns how many.

        Call on the checkpointing thread, right after
        :meth:`~repro.stream.ckptbin.BinaryCheckpointer.save` -- the
        file is quiescent there, so the new byte ranges read cleanly.
        Normally ships exactly one segment; after a rebase it resets to
        the fresh chain, and if a prior ship was skipped it heals by
        shipping everything the saver has that the shipper lacks.
        """
        if self._closed:
            raise ReplicationError("shipper is closed")
        infos = saver.chain
        if not infos:
            return 0
        now = time.time()
        shipped: list[tuple[dict, int]] = []
        with self._lock:
            if not self._chain or self._chain[0][0]["base_id"] != infos[0].base_id:
                self._chain = []
            for info in infos[len(self._chain) :]:
                raw = segment_bytes(saver.path, info)
                meta = {
                    "base_id": info.base_id,
                    "seq": info.seq,
                    "kind": info.kind,
                    "t": now,
                }
                self._chain.append((meta, raw))
                for subscriber in self._subs:
                    if not subscriber.offer(("segment", meta, raw)):
                        self._resync_locked(subscriber)
                shipped.append((meta, len(raw)))
            count = len(self._subs)
        self.segments_shipped += len(shipped)
        if self._obs is not None:
            for meta, nbytes in shipped:
                self._obs.shipped(
                    meta["base_id"], meta["seq"], meta["kind"], nbytes, count
                )
        return len(shipped)

    def _resync_locked(self, subscriber) -> None:
        """Overflow degradation: restart this follower from the base.

        Its queue is dropped and the entire current chain re-enqueued
        from ``seq`` 0 -- at most ``max_chain`` segments, so a follower
        that cannot keep up costs bounded memory instead of unbounded
        backlog.
        """
        subscriber.clear()
        for meta, raw in self._chain:
            subscriber.force(("segment", meta, raw))
        self.resyncs += 1
        if self._obs is not None:
            self._obs.resynced()
        log.warning(
            "replication outbox overflow for %s: full-chain resync"
            " (%d segments)",
            subscriber.peer,
            len(self._chain),
        )

    def close(self) -> None:
        """Stop accepting, send ``stop`` to every follower, release the
        port.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            subscribers = list(self._subs)
        for subscriber in subscribers:
            subscriber.force(("stop",))
            subscriber.stop()

    def __enter__(self) -> "SegmentShipper":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
