"""Empirical CDF computation."""

from __future__ import annotations

from bisect import bisect_right


def cdf_points(values: list[float] | list[int]) -> list[tuple[float, float]]:
    """The empirical CDF of *values* as (x, P[X <= x]) steps.

    Duplicate values collapse to one point at their highest cumulative
    probability, which is what step-plotting expects.
    """
    if not values:
        raise ValueError("CDF of empty data")
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (float(value), index / n)
        else:
            points.append((float(value), index / n))
    return points


def fraction_at_or_below(values: list[float] | list[int], x: float) -> float:
    """P[X <= x] under the empirical distribution of *values*."""
    if not values:
        raise ValueError("empty data")
    ordered = sorted(values)
    return bisect_right(ordered, x) / len(ordered)


def quantile(values: list[float] | list[int], q: float) -> float:
    """The *q*-quantile (nearest-rank) of *values*."""
    if not values:
        raise ValueError("empty data")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return float(ordered[index])
