"""Presentation helpers: CDFs, ASCII plots, and aligned tables.

Figures in this reproduction are data-first: every experiment returns the
underlying series, and these helpers render them as terminal graphics --
the offline environment has no plotting stack, and ASCII output keeps
results inspectable in CI logs.
"""

from repro.viz.cdf import cdf_points, fraction_at_or_below, quantile
from repro.viz.ascii import render_cdf, render_series, render_table

__all__ = [
    "cdf_points",
    "fraction_at_or_below",
    "quantile",
    "render_cdf",
    "render_series",
    "render_table",
]
