"""ASCII rendering: tables, line/step plots, CDFs."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """A column-aligned plain-text table."""
    if not headers:
        raise ValueError("table needs headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    ratio = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(ratio * (steps - 1) + 0.5)))


def render_series(
    series: dict[str, list[tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more (x, y) series on a shared ASCII canvas.

    Each series gets a distinct marker; later series overdraw earlier
    ones where they collide.
    """
    if not series:
        raise ValueError("nothing to plot")
    markers = "*o+x#@%&"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("all series empty")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_lo:g} .. {y_hi:g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:g} .. {x_hi:g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={label}" for i, label in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def render_cdf(
    named_values: dict[str, list[float]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "value",
) -> str:
    """Render empirical CDFs of one or more datasets."""
    from repro.viz.cdf import cdf_points

    series = {name: cdf_points(values) for name, values in named_values.items()}
    return render_series(
        series, width=width, height=height, title=title,
        x_label=x_label, y_label="CDF",
    )
