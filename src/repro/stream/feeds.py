"""Passive-feed adapters: non-probe vantage data as observation streams.

The engine consumes :class:`~repro.core.records.ProbeObservation`
streams; until now the only producer was the active scanner.  Saidi et
al. ("One Bad Apple Can Spoil Your IPv6 Privacy") show the same
de-anonymization needs no probes at all: any vantage that *passively*
records source addresses -- provider flow taps, CDN or server logs,
hitlist re-verification -- will sooner or later log the one household
device whose IID is stable (the EUI-64 CPE, the "bad apple"), and that
single stable identifier links every rotated prefix the household ever
held.  This module turns such vantage data into the engine's native
observation stream, so :class:`~repro.stream.engine.StreamEngine`
watchlists and :class:`~repro.stream.tracker.LivePursuit` re-anchor
from passive sightings alone.

The feed model has three modes:

* **active** -- probe responses, as before.  Any day-ordered iterable of
  observations is already a feed (:func:`observation_feed` passes one
  through unchanged), so the scanner's day streams compose with the
  rest of this module for free.
* **passive** -- sightings that arrived without a probe.  Adapters:
  :func:`sighting_feed` for the generic timestamped ``(src_addr, day)``
  record (:class:`SightingRecord`), :func:`flow_feed` for
  :class:`~repro.core.correlator.Flow` logs (what
  :func:`~repro.core.correlator.synthesize_flows` produces),
  :func:`hitlist_feed` for ``(address, day)`` hitlist sightings, and
  :func:`tap_feed` for :class:`~repro.simnet.vantage.FlowTap` records.
  A passive record has no probe target, so its observation is a
  *self-sighting*: ``target = source``.  The pair ``(source, source)``
  is content-stable across identical sightings, its /64 truthfully lies
  inside the delegation, and day-over-day pair diffs behave exactly as
  for probe pairs -- a rotated household changes both halves at once.
* **hybrid** -- :class:`MixedFeed` interleaves any number of active and
  passive feeds in day order (stable within a day by observation time),
  which is what a real adversary holds: its own probe stream plus
  whatever passive vantage it can buy.

Every adapter yields plain observations, so both engines ingest feeds
through their fused batch paths unchanged
(:meth:`StreamEngine.ingest_feed` /
:meth:`~repro.stream.parallel.ParallelStreamEngine.ingest_feed` are the
named entry points) and byte-identical-checkpoint guarantees carry
over: a passive feed that mirrors an active day-stream produces the
same checkpoint as the active run, in serial and parallel modes alike.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.correlator import Flow
from repro.core.records import ProbeObservation
from repro.simnet.clock import HOURS_PER_DAY, day_of, hours, seconds


@dataclass(frozen=True, slots=True)
class SightingRecord:
    """One passive sighting: a source address seen on a day.

    The generic record every passive vantage reduces to.  ``t_seconds``
    defaults to noon of *day* (passive logs are often day-granular);
    ``target`` defaults to the source itself -- the self-sighting
    convention -- but a vantage that does log the remote endpoint (a
    flow tap sees both flow ends) may preserve it, which is what makes
    a mirrored active stream reproduce the active run byte for byte.
    """

    source: int
    day: int
    t_seconds: float | None = None
    target: int | None = None

    def to_observation(self) -> ProbeObservation:
        t = (
            self.t_seconds
            if self.t_seconds is not None
            else seconds((self.day + 0.5) * HOURS_PER_DAY)
        )
        target = self.target if self.target is not None else self.source
        return ProbeObservation(
            day=self.day, t_seconds=t, target=target, source=self.source
        )

    @classmethod
    def from_observation(cls, observation: ProbeObservation) -> "SightingRecord":
        """The mirror of an active observation (target preserved)."""
        return cls(
            source=observation.source,
            day=observation.day,
            t_seconds=observation.t_seconds,
            target=observation.target,
        )


def _feed_key(observation: ProbeObservation) -> tuple[int, float]:
    return (observation.day, observation.t_seconds)


class DedupFeed:
    """Drop repeat sightings within a bounded trailing window.

    A chatty passive tap replays the same ``(src_addr, day)`` sighting
    every time the flow re-fires, multiplying identical rows through
    the store path.  This wrapper remembers the last *window* distinct
    ``(day, target, source)`` keys -- for the self-sighting convention
    that *is* ``(src_addr, day)`` -- and drops any observation whose
    key is still in the window, regardless of its timestamp (day-
    granular logs re-emit with jitter).  Memory is bounded by *window*
    keys whatever the feed length; a repeat older than the window is
    re-admitted, costing only a redundant (idempotent) aggregate
    insert, never correctness.

    Suppressions were historically invisible; they now accumulate in
    :attr:`suppressed` (readable mid-stream -- a
    :class:`~repro.stream.campaign.StreamingCampaign` folds every
    feed's total into its stats and telemetry), and an optional
    *counter* (any object with an integer ``value``, e.g. a
    ``repro.obs`` Counter) is bumped per suppression.

    Every adapter in this module takes a ``dedup_window`` argument that
    applies this wrapper after its day-order sort.
    """

    def __init__(
        self,
        feed: Iterable[ProbeObservation],
        window: int,
        counter=None,
    ) -> None:
        if window <= 0:
            raise ValueError("dedup_window must be positive")
        self._feed = iter(feed)
        self._window = window
        self._seen: OrderedDict[tuple[int, int, int], None] = OrderedDict()
        self.suppressed = 0
        self._counter = counter

    def __iter__(self) -> Iterator[ProbeObservation]:
        return self

    def __next__(self) -> ProbeObservation:
        seen = self._seen
        for observation in self._feed:
            key = (observation.day, observation.target, observation.source)
            if key in seen:
                self.suppressed += 1
                if self._counter is not None:
                    self._counter.value += 1
                continue
            seen[key] = None
            if len(seen) > self._window:
                seen.popitem(last=False)
            return observation
        raise StopIteration


def dedup_feed(
    feed: Iterable[ProbeObservation], window: int, counter=None
) -> DedupFeed:
    """Functional spelling of :class:`DedupFeed` (the historical name)."""
    return DedupFeed(feed, window, counter=counter)


def _maybe_dedup(
    observations: list[ProbeObservation], dedup_window: int | None
) -> Iterator[ProbeObservation]:
    if dedup_window is None:
        return iter(observations)
    return DedupFeed(observations, dedup_window)


def observation_feed(
    observations: Iterable[ProbeObservation],
) -> Iterator[ProbeObservation]:
    """An active day-stream as a feed (passthrough; must be day-ordered)."""
    return iter(observations)


def sighting_feed(
    records: Iterable["SightingRecord | tuple"],
    dedup_window: int | None = None,
) -> Iterator[ProbeObservation]:
    """Generic passive records -> day-ordered observation feed.

    Accepts :class:`SightingRecord` instances or plain tuples in the
    same field order (``(source, day[, t_seconds[, target]])``), e.g.
    the rows a :class:`~repro.simnet.vantage.FlowTap` emits.  Records
    are sorted by ``(day, time)`` -- passive logs rarely arrive
    globally ordered -- with the sort stable, so equal-keyed records
    keep their input order.  *dedup_window* bounds repeat suppression
    (see :func:`dedup_feed`).
    """
    observations = [
        (
            record if isinstance(record, SightingRecord) else SightingRecord(*record)
        ).to_observation()
        for record in records
    ]
    observations.sort(key=_feed_key)
    return _maybe_dedup(observations, dedup_window)


def flow_feed(
    flows: Iterable[Flow], dedup_window: int | None = None
) -> Iterator[ProbeObservation]:
    """A flow log -> day-ordered observation feed.

    Each :class:`~repro.core.correlator.Flow` becomes a self-sighting of
    its source address on the day its timestamp falls in.  Privacy-mode
    client flows contribute address counts only; the feed matters the
    moment a flow's source carries a stable (EUI-64) IID.
    *dedup_window* collapses a host's repeat flows within a day (see
    :func:`dedup_feed`).
    """
    observations = [
        ProbeObservation(
            day=day_of(hours(flow.t_seconds)),
            t_seconds=flow.t_seconds,
            target=flow.source,
            source=flow.source,
        )
        for flow in flows
    ]
    observations.sort(key=_feed_key)
    return _maybe_dedup(observations, dedup_window)


def hitlist_feed(
    entries: Iterable[tuple[int, int]],
    dedup_window: int | None = None,
) -> Iterator[ProbeObservation]:
    """``(address, day)`` hitlist sightings -> day-ordered feed.

    The shape of a responsive-address hitlist re-verified daily: no
    timestamps, no targets, just which addresses were alive on which
    day.  *dedup_window* drops re-verifications of the same address on
    the same day (see :func:`dedup_feed`).
    """
    observations = [
        SightingRecord(source=address, day=day).to_observation()
        for address, day in entries
    ]
    observations.sort(key=_feed_key)
    return _maybe_dedup(observations, dedup_window)


def tap_feed(
    tap, days: Iterable[int], dedup_window: int | None = None
) -> Iterator[ProbeObservation]:
    """A :class:`~repro.simnet.vantage.FlowTap`'s records over *days*.

    Provider taps are the chattiest vantage (every flow re-fires the
    same sighting), so this is where *dedup_window* earns its keep.
    """
    return sighting_feed(tap.records(days), dedup_window=dedup_window)


class MixedFeed:
    """Day-order interleave of several feeds, active and passive alike.

    Each input feed must itself be ``(day, time)``-ordered (every
    adapter in this module is; campaign day streams are).  The merge is
    stable: on equal ``(day, time)`` keys, earlier-listed feeds win,
    so a single-feed ``MixedFeed`` reproduces that feed exactly.
    Re-iterable only if the underlying feeds are (lists yes, iterators
    no) -- drive each instance through one engine.
    """

    def __init__(self, *feeds: Iterable[ProbeObservation]) -> None:
        self.feeds = feeds

    def __iter__(self) -> Iterator[ProbeObservation]:
        return heapq.merge(*self.feeds, key=_feed_key)


def ingest_feed(engine, feed: Iterable[ProbeObservation]) -> int:
    """Drive any engine from a feed; returns observations ingested.

    The duck-typed twin of the engines' ``ingest_feed`` methods, for
    callers holding an engine only by its ``ingest_batch`` contract --
    :class:`~repro.stream.engine.StreamEngine`,
    :class:`~repro.stream.parallel.ParallelStreamEngine`, or anything
    else honouring it.
    """
    return engine.ingest_batch(feed)
