"""Live pursuit: day-major streaming mode for the Section 6 tracker.

The batch :class:`~repro.core.tracker.DeviceTracker` hunts one IID
across all days, then the next IID.  An online adversary works the other
way: each day it advances *every* open pursuit once, folding in anything
the campaign stream revealed passively since yesterday.  Both orders
send identical probes per (IID, anchor, day) -- they share
:meth:`DeviceTracker.hunt_one_day` -- so on the paper's cohorts (one
hunted device per AS, hence disjoint probe targets) the two modes
produce identical tracking reports; the equivalence tests assert it.

What the streaming mode adds:

* **passive anchoring** -- if a :class:`StreamEngine` watchlist saw the
  hunted IID answer a campaign probe after its last hunt, the pursuit
  re-anchors to that sighting for free (the "one bad apple" effect:
  rotation defeats itself the moment the device answers anything);
* **checkpoint/resume** -- a pursuit serializes to JSON mid-campaign and
  continues later with no probes replayed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.tracker import (
    DayOutcome,
    DeviceTracker,
    IidTrack,
    TrackingReport,
)
from repro.simnet.clock import HOURS_PER_DAY, seconds
from repro.stream.engine import StreamEngine

PURSUIT_FORMAT_VERSION = 1


@dataclass
class PursuitState:
    """One IID's open pursuit.

    ``last_update_t`` is when the anchor was last refreshed (hunt or
    sighting time, simulated seconds); ``None`` until either happens.
    """

    track: IidTrack
    last_known: int
    last_update_t: float | None = None


class LivePursuit:
    """Advances many IID hunts one day at a time."""

    def __init__(
        self, tracker: DeviceTracker, engine: StreamEngine | None = None
    ) -> None:
        self.tracker = tracker
        self.engine = engine
        self.pursuits: dict[int, PursuitState] = {}

    def add_target(self, iid: int, initial_address: int) -> None:
        """Open a pursuit; registers the IID on the engine watchlist."""
        if iid in self.pursuits:
            raise ValueError(f"already pursuing IID {iid:#x}")
        self.pursuits[iid] = PursuitState(
            track=IidTrack(iid=iid, initial_address=initial_address),
            last_known=initial_address,
        )
        if self.engine is not None:
            self.engine.watch(iid, initial_address)

    def add_targets(self, targets: dict[int, int]) -> None:
        for iid, initial in targets.items():
            self.add_target(iid, initial)

    def _anchor_for(self, iid: int, state: PursuitState) -> int:
        """The freshest known address: hunt result or passive sighting."""
        if self.engine is not None:
            sighting = self.engine.last_sighting(iid)
            if (
                sighting is not None
                and sighting.t_seconds is not None
                and (
                    state.last_update_t is None
                    or sighting.t_seconds > state.last_update_t
                )
            ):
                state.last_known = sighting.source
                state.last_update_t = sighting.t_seconds
        return state.last_known

    def advance(self, day: int) -> dict[int, DayOutcome]:
        """Hunt every open pursuit once on *day*; returns the outcomes."""
        outcomes: dict[int, DayOutcome] = {}
        hunt_t = seconds(day * HOURS_PER_DAY + self.tracker.config.scan_hour)
        for iid in sorted(self.pursuits):
            state = self.pursuits[iid]
            anchor = self._anchor_for(iid, state)
            outcome = self.tracker.hunt_one_day(iid, anchor, day)
            state.track.outcomes.append(outcome)
            if outcome.found:
                state.last_known = outcome.source
                # Stamp the hunt's simulated time: it outranks every
                # sighting up to now, while a *later* passive sighting
                # (the device answering tomorrow's campaign scan from a
                # new prefix) can still re-anchor the pursuit.
                state.last_update_t = hunt_t
            outcomes[iid] = outcome
        return outcomes

    def pursue(self, days: list[int]) -> TrackingReport:
        """Advance through *days* and return the report.

        With no engine sightings this is probe-for-probe identical to
        ``DeviceTracker.track_many`` over the same targets and days.
        """
        for day in days:
            self.advance(day)
        return self.report()

    def report(self) -> TrackingReport:
        report = TrackingReport()
        for iid, state in self.pursuits.items():
            report.tracks[iid] = state.track
        return report

    # -- checkpoint/resume -------------------------------------------------

    def state(self) -> dict:
        """JSON-able pursuit state (tracks, anchors, progress)."""
        return {
            "version": PURSUIT_FORMAT_VERSION,
            "pursuits": sorted(
                (
                    [
                        iid,
                        state.track.initial_address,
                        state.last_known,
                        state.last_update_t,
                        [
                            [o.day, o.found, o.probes_sent, o.source, o.changed_prefix]
                            for o in state.track.outcomes
                        ],
                    ]
                    for iid, state in self.pursuits.items()
                ),
                key=lambda row: row[0],
            ),
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.state()))
        tmp.replace(path)
        return path

    @classmethod
    def restore(
        cls,
        state: dict,
        tracker: DeviceTracker,
        engine: StreamEngine | None = None,
    ) -> "LivePursuit":
        if state.get("version") != PURSUIT_FORMAT_VERSION:
            raise ValueError(f"unsupported pursuit version: {state.get('version')!r}")
        pursuit = cls(tracker, engine)
        for iid, initial, last_known, last_update_t, outcomes in state["pursuits"]:
            track = IidTrack(iid=iid, initial_address=initial)
            track.outcomes.extend(
                DayOutcome(
                    day=day,
                    found=found,
                    probes_sent=probes,
                    source=source,
                    changed_prefix=changed,
                )
                for day, found, probes, source, changed in outcomes
            )
            pursuit.pursuits[iid] = PursuitState(
                track=track, last_known=last_known, last_update_t=last_update_t
            )
            if engine is not None:
                engine.watch(iid, last_known)
        return pursuit

    @classmethod
    def load(
        cls,
        path: str | Path,
        tracker: DeviceTracker,
        engine: StreamEngine | None = None,
    ) -> "LivePursuit":
        return cls.restore(json.loads(Path(path).read_text()), tracker, engine)
