"""Checkpoint/resume for the streaming engine and streaming campaigns.

Long campaigns (the paper's ran 44 days) must survive interruption.  A
checkpoint captures the *attacker-side* state only -- engine aggregates,
rotation windows, watchlist, and optionally the observation corpus --
so a resumed run is bit-identical to an uninterrupted one given the
same probe stream.

Two on-disk formats serialize the *same* state:

* ``"json"`` (canonical, the default): deterministic JSON, sets emitted
  sorted -- diff-able, stable, and the byte-identity oracle every other
  path is tested against.
* ``"binary"`` (:mod:`repro.stream.ckptbin`): length-prefixed flat
  little-endian 64-bit column blocks, written straight from the
  columnar accumulator's arrays and the store's column buffers, with
  incremental *delta* segments re-emitting only the shards dirtied
  since the previous save -- the format for checkpoints on the hot
  path.  Repeated :func:`save_engine` calls on one path chain deltas
  automatically.

Pick the format per call (``format=``), per process
(``REPRO_CHECKPOINT_FORMAT``), or not at all: :func:`load_engine` and
campaign resume sniff the file's magic bytes, so either format loads
regardless of configuration.

The simulated Internet itself is deliberately not checkpointed: a real
adversary cannot snapshot the Internet either.  Rebuilding it from the
same seed reproduces the same world; the only divergence risk is
device-side ICMPv6 token-bucket state, which refills within seconds of
simulated time and resets across large gaps (see ``TokenBucket``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro import config
from repro.core.records import ObservationStore
from repro.core.rotation_detect import RotationDetection
from repro.net.addr import Prefix
from repro.stream.engine import Sighting, StreamConfig, StreamEngine
from repro.stream.shard import ShardKey
from repro.stream.state import ShardState, alloc_span_rows, pool_span_rows

FORMAT_VERSION = 1

#: Process-wide checkpoint format override ("json" or "binary"); the
#: ``format=`` argument wins when given.  Reads always sniff the file.
#: (Resolved through :func:`repro.config.current`.)
FORMAT_ENV = config.ENV_CHECKPOINT_FORMAT


def checkpoint_format(explicit: str | None = None) -> str:
    """Resolve the checkpoint format: argument, environment, default."""
    fmt = config.current(checkpoint_format=explicit).checkpoint_format or "json"
    if fmt not in ("json", "binary"):
        raise ValueError(f"unknown checkpoint format: {fmt!r}")
    return fmt


def is_binary_checkpoint(path: str | Path) -> bool:
    """True when *path* starts with the binary segment magic."""
    from repro.stream.ckptbin import MAGIC

    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _detection_state(detection: RotationDetection) -> dict:
    return {
        "changed_pairs": sorted(list(p) for p in detection.changed_pairs),
        "stable_pairs": detection.stable_pairs,
        "rotating_prefixes": sorted(
            [p.network, p.plen] for p in detection.rotating_prefixes
        ),
    }


def _restore_detection(state: dict) -> RotationDetection:
    return RotationDetection(
        changed_pairs={(t, s) for t, s in state["changed_pairs"]},
        rotating_prefixes={Prefix(n, plen) for n, plen in state["rotating_prefixes"]},
        stable_pairs=state["stable_pairs"],
    )


def _shard_state(shard: ShardState) -> dict:
    return {
        "shard_id": shard.shard_id,
        "n_observations": shard.n_observations,
        "sources": sorted(shard.sources),
        "eui_sources": sorted(shard.eui_sources),
        "eui_iids": sorted(shard.eui_iids),
        "alloc": sorted(list(row) for row in alloc_span_rows(shard)),
        "pool": sorted(list(row) for row in pool_span_rows(shard)),
        "pairs": sorted(
            [day, sorted(list(p) for p in pairs)]
            for day, pairs in shard.pairs_by_day.items()
        ),
    }


def _restore_shard(state: dict) -> ShardState:
    shard = ShardState(shard_id=state["shard_id"])
    shard.n_observations = state["n_observations"]
    shard.sources = set(state["sources"])
    shard.eui_sources = set(state["eui_sources"])
    shard.eui_iids = set(state["eui_iids"])
    for asn, iid, day, lo, hi in state["alloc"]:
        shard.alloc_spans.setdefault(asn, {})[(iid, day)] = [lo, hi]
    for asn, iid, lo, hi in state["pool"]:
        shard.pool_spans.setdefault(asn, {})[iid] = [lo, hi]
    for day, pairs in state["pairs"]:
        shard.pairs_by_day[day] = {(t, s) for t, s in pairs}
    return shard


def _store_state(store: ObservationStore) -> list[list]:
    """The corpus as canonical checkpoint rows.

    Delegated to the store's backend: all backends serialize the same
    ``[day, t_seconds, target, source]`` rows in insertion order, so
    checkpoint bytes never depend on the storage layout.
    """
    return store.snapshot_rows()


def _restore_store(
    rows: list[list], store: ObservationStore | None = None
) -> ObservationStore:
    """Load checkpoint rows into *store* (a fresh one when ``None``).

    Disk-backed stores restore incrementally: rows their file already
    holds are verified and skipped, not re-inserted.
    """
    store = store if store is not None else ObservationStore()
    store.restore_rows(rows)
    return store


def engine_state(engine: StreamEngine) -> dict:
    """The engine's complete serializable state."""
    engine.materialize()  # fold any pending columnar buffers first
    state = {
        "version": FORMAT_VERSION,
        "config": {
            "num_shards": engine.config.num_shards,
            "shard_key": engine.config.shard_key.value,
            "keep_observations": engine.config.keep_observations,
            "retain_days": engine.config.retain_days,
        },
        "current_day": engine.current_day,
        "closed_through": engine._closed_through,
        "days_seen": sorted(engine._days_seen),
        "responses_ingested": engine.responses_ingested,
        "watch_iids": sorted(engine._watch_iids),
        "watched": sorted(
            [iid, s.source, s.day, s.t_seconds] for iid, s in engine.watched.items()
        ),
        "detection": _detection_state(engine.live_detection),
        "shards": [_shard_state(s) for s in engine.shards],
        "store": _store_state(engine.store) if engine.store is not None else None,
    }
    return state


def restore_engine(
    state: dict,
    origin_of: Callable[[int], int | None] | None = None,
    store: ObservationStore | None = None,
    telemetry=None,
) -> StreamEngine:
    """Rebuild an engine from :func:`engine_state` output.

    *origin_of* is not serializable and must be re-supplied; pass
    *store* to adopt an external store (e.g. a campaign result's)
    instead of rebuilding one from the checkpoint rows.  *telemetry*
    (a :class:`repro.obs.Telemetry`) times the restore and re-attaches
    instrumentation to the rebuilt engine -- telemetry itself is never
    checkpoint state, so it must be re-supplied per run, like
    *origin_of*.
    """
    if telemetry is not None:
        from repro.obs.instruments import CheckpointInstruments

        with CheckpointInstruments(telemetry).restore_seconds.time():
            engine = restore_engine(state, origin_of=origin_of, store=store)
        engine.attach_telemetry(telemetry)
        return engine
    if state.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version: {state.get('version')!r}")
    config = StreamConfig(
        num_shards=state["config"]["num_shards"],
        shard_key=ShardKey(state["config"]["shard_key"]),
        keep_observations=state["config"]["keep_observations"],
        # .get(): additive field, pre-retention checkpoints still load.
        retain_days=state["config"].get("retain_days"),
    )
    engine = StreamEngine(config, origin_of=origin_of, store=store)
    engine.current_day = state["current_day"]
    engine._closed_through = state["closed_through"]
    engine._days_seen = set(state["days_seen"])
    engine.responses_ingested = state["responses_ingested"]
    engine._watch_iids = set(state["watch_iids"])
    engine.watched = {
        iid: Sighting(source=source, day=day, t_seconds=t)
        for iid, source, day, t in state["watched"]
    }
    engine.live_detection = _restore_detection(state["detection"])
    engine.shards = [_restore_shard(s) for s in state["shards"]]
    if state["store"] is not None and store is None and engine.store is not None:
        _restore_store(state["store"], engine.store)
    return engine


def save_engine(
    engine: StreamEngine,
    path: str | Path,
    telemetry=None,
    format: str | None = None,
) -> Path:
    """Write the engine checkpoint atomically; returns the path.

    *format* is ``"json"`` (canonical), ``"binary"`` (columnar
    segments; repeated saves of the same engine to the same path chain
    incremental delta segments -- see :mod:`repro.stream.ckptbin`), or
    ``None`` for ``$REPRO_CHECKPOINT_FORMAT``-then-``"json"``.

    With *telemetry*, serialize latency, total write latency, and the
    checkpoint size are recorded and a ``checkpoint_written`` event is
    emitted -- the checkpoint *bytes* stay identical either way.
    """
    path = Path(path)
    if checkpoint_format(format) == "binary":
        from repro.stream.ckptbin import BinaryCheckpointer

        saver = engine._ckpt_savers.get(path)
        if saver is None:
            saver = engine._ckpt_savers[path] = BinaryCheckpointer(path)
        instruments = None
        if telemetry is not None:
            from repro.obs.instruments import CheckpointInstruments

            instruments = CheckpointInstruments(telemetry)
        saver.save(engine, instruments=instruments)
        return path
    tmp = path.with_name(path.name + ".tmp")
    try:
        if telemetry is None:
            tmp.write_text(json.dumps(engine_state(engine)))
            tmp.replace(path)
            return path
        from time import perf_counter

        from repro.obs.instruments import CheckpointInstruments

        obs = CheckpointInstruments(telemetry)
        t0 = perf_counter()
        with obs.serialize_seconds.time():
            payload = json.dumps(engine_state(engine))
        tmp.write_text(payload)
        tmp.replace(path)
        obs.written(path, len(payload), engine.current_day, perf_counter() - t0)
        return path
    finally:
        # A serialization or write failure must not leave a stale .tmp
        # next to the checkpoint (the replace consumed it on success).
        tmp.unlink(missing_ok=True)


def load_engine(
    path: str | Path,
    origin_of: Callable[[int], int | None] | None = None,
    store: ObservationStore | None = None,
    telemetry=None,
) -> StreamEngine:
    """Read a checkpoint written by :func:`save_engine` (either format).

    The format is sniffed from the file's magic bytes, so a process
    configured for one format transparently resumes from the other.
    """
    if is_binary_checkpoint(path):
        from repro.stream.ckptbin import read_state

        state = read_state(path)
    else:
        state = json.loads(Path(path).read_text())
    return restore_engine(
        state,
        origin_of=origin_of,
        store=store,
        telemetry=telemetry,
    )
