"""Partitioned dispatch for streaming ingestion.

The engine shards its hot-path state so per-IID aggregate updates touch
one small dict instead of one giant one: routing is deterministic by
either the response source's covering /32 (the provider-block
granularity the paper groups by) or its BGP origin ASN.  Shard-local
state keeps the working set cache-resident during bursts from one
provider, and gives a natural unit for future parallel workers --
observations for one key always land in the same shard, so shards never
contend.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.net.addr import IID_MASK

_NET32_SHIFT = 96  # bits below a /32 network

# The splitmix64-style multiplier behind shard placement.  Exposed so the
# columnar kernel can vectorize the identical scramble over uint64 key
# columns (multiplication there wraps mod 2**64, matching the IID_MASK
# truncation below) -- every routing participant must agree bit-for-bit.
SPLITMIX64 = 0x9E3779B97F4A7C15


class ShardKey(enum.Enum):
    """What the dispatcher hashes to pick a shard."""

    PREFIX32 = "prefix32"
    ASN = "asn"


def net32_of(address: int) -> int:
    """The /32 network number containing *address*."""
    return address >> _NET32_SHIFT


def shard_index(partition_key: int, num_shards: int) -> int:
    """The shard owning *partition_key*, for any routing participant.

    Exposed standalone so multiprocess workers can place rows without
    instantiating a router (they receive pre-resolved keys): every
    participant that scrambles the same key the same way agrees on the
    owning shard, which is what makes worker partial states mergeable
    back into the single-process layout.
    """
    # splitmix-style scramble so sequential /32s spread evenly.
    x = (partition_key * SPLITMIX64) & IID_MASK
    return (x >> 32) % num_shards


class ShardRouter:
    """Deterministic response-source -> shard routing.

    ``ASN`` keying needs an *origin_of* callable (``RoutingTable.
    origin_of``); unrouted sources land in shard 0's key-space under
    ASN 0.  Routing is stable across runs and across checkpoint/resume:
    it depends only on (key mode, shard count, address).
    """

    def __init__(
        self,
        num_shards: int,
        key: ShardKey = ShardKey.PREFIX32,
        origin_of: Callable[[int], int | None] | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if key is ShardKey.ASN and origin_of is None:
            raise ValueError("ASN sharding requires an origin_of callable")
        self.num_shards = num_shards
        self.key = key
        self._origin_of = origin_of

    def partition_key(self, source: int) -> int:
        """The stable grouping key for a response source address."""
        if self.key is ShardKey.ASN:
            return self._origin_of(source) or 0
        return net32_of(source)

    def shard_of(self, source: int) -> int:
        """Which shard owns *source*'s aggregates."""
        return shard_index(self.partition_key(source), self.num_shards)
