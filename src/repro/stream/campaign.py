"""The streaming campaign: ingest-as-you-scan with checkpoint/resume.

Wraps a batch :class:`~repro.core.campaign.Campaign` and drives its
day streams through a :class:`StreamEngine` in a single pass: every
response updates the live inferences as it arrives, and each scan's
observations are bulk-applied to the result's
:class:`~repro.core.records.ObservationStore` through its ``extend``
fast path.  The resulting :class:`CampaignResult` is identical to
``campaign.run()`` -- same store contents, same counters -- because
both modes share the scanner's probe loop and the storage layer.

``checkpoint_every`` writes an engine+progress+corpus checkpoint after
every N completed days; :meth:`resume` picks a run back up from such a
file, replaying nothing.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable

from repro import config
from repro.core.campaign import Campaign, CampaignResult
from repro.core.records import ObservationStore, ProbeObservation
from repro.stream.checkpoint import (
    FORMAT_VERSION,
    _restore_store,
    _store_state,
    engine_state,
    is_binary_checkpoint,
    restore_engine,
)
from repro.stream.checkpoint import checkpoint_format as resolve_checkpoint_format
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.feeds import MixedFeed
from repro.stream.parallel import ParallelStreamEngine


class StreamingCampaign:
    """Single-pass campaign execution over a live engine.

    The engine runs store-less (aggregates only); the observation corpus
    lives in ``result.store``, filled scan-by-scan through the bulk
    path.  Queries that need raw observations use the result store;
    queries the aggregates cover (inferences, rotation candidates,
    sightings) come from the engine without touching the corpus.

    ``workers`` opts the campaign into the multiprocess ingestion
    backend: responses are dispatched to that many worker processes and
    ``self.engine`` becomes the merged view, refreshed at every day the
    run stops on and at every checkpoint.  Checkpoints are byte-for-byte
    the same in both modes, so a run may freely switch worker counts --
    or drop back to single-process -- across resumes.

    ``passive_feeds`` attaches passive vantage data (see
    :mod:`repro.stream.feeds`): the feeds are interleaved with the
    probe stream in day order -- a day's passive records are ingested
    right after that day's scan completes (and records predating the
    first remaining scan day go in up front), so engine state stays
    day-monotonic and checkpoints remain mode-independent.  Passive
    records update the *engine* only (watchlist, aggregates, rotation
    windows); the result store and probe accounting stay scan-only.
    Records older than the day the engine is already past (a lagging
    feed on a resumed run) are counted in :attr:`passive_dropped` and
    skipped; everything ingested counts in :attr:`passive_ingested`.
    """

    def __init__(
        self,
        campaign: Campaign,
        engine: StreamEngine | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        workers: "int | str" = 0,
        batch_rows: int = 8192,
        passive_feeds: "Iterable[Iterable[ProbeObservation]] | None" = None,
        store: "ObservationStore | None" = None,
        telemetry=None,
        checkpoint_format: str | None = None,
        on_day_complete: "Callable[[int], None] | None" = None,
        shipper=None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_path is None:
            raise ValueError("checkpoint_every requires a checkpoint_path")
        if isinstance(workers, int) and workers < 0:
            raise ValueError("workers must be >= 0")
        self.campaign = campaign
        self.result = CampaignResult(targets_per_day=len(campaign.targets))
        # Caller hook invoked after each completed day (its feed drain
        # and periodic checkpoint included) -- the serve daemon's
        # snapshot-refresh point.  Public and reassignable.
        self.on_day_complete = on_day_complete
        # Whether result.store is caller-owned: a mid-campaign failure
        # must commit and close such a store so the disk-backed corpus
        # can be reattached (campaign-owned defaults are temp-backed
        # and die with the run).
        self._external_store = store is not None
        if store is not None:
            # The corpus on a caller-chosen backend -- e.g. an
            # ObservationStore over SqliteBackend so an internet-scale
            # corpus lives on disk and checkpoints commit only the
            # delta since the previous one.  Must be empty on a fresh
            # run; resume() reattaches partially filled stores.
            if len(store) > 0:
                raise ValueError(
                    "store already holds observations; pass it through "
                    "StreamingCampaign.resume to reattach a corpus"
                )
            # Release the default store the result built (under a
            # disk-backed default that is a temp file + connection).
            self.result.store.close()
            self.result.store = store
        if engine is None:
            engine = StreamEngine(
                StreamConfig(keep_observations=False),
                origin_of=campaign.internet.rib.origin_of,
            )
        else:
            self._adopt_engine(engine)
        self.engine = engine
        self.workers = workers
        self._parallel: ParallelStreamEngine | None = None
        if workers:
            # The (possibly checkpoint-restored) engine seeds the
            # dispatcher: its aggregates fold into every merge and its
            # watchlist/day state carries over, so an empty engine is
            # simply a zero-cost base.  An int forks that many local
            # pipe workers; a fabric spec string ("tcp://host:port
            # ?workers=N...") boots a socket master instead, with the
            # worker count riding in the spec.
            if isinstance(workers, str):
                parallel_kwargs = {"transport": workers}
            else:
                parallel_kwargs = {"num_workers": workers}
            self._parallel = ParallelStreamEngine(
                engine.config,
                origin_of=campaign.internet.rib.origin_of,
                batch_rows=batch_rows,
                base=engine,
                telemetry=telemetry,
                **parallel_kwargs,
            )
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = checkpoint_every
        # "json" (canonical) or "binary" (columnar delta segments, see
        # repro.stream.ckptbin); resolved here so a bad value fails at
        # construction, not at the first mid-campaign checkpoint.
        self.checkpoint_format = resolve_checkpoint_format(checkpoint_format)
        self._ckpt_saver = None  # lazily built BinaryCheckpointer
        # Checkpoint replication (repro.replicate): a SegmentShipper
        # instance, a bind address string, or None -- in which case
        # REPRO_REPLICATE_BIND can switch it on without touching the
        # call site.  Disabled, the cost is one None check per binary
        # checkpoint.
        self.shipper = None
        self._owns_shipper = False
        if shipper is None:
            bind = config.current().replicate_bind
            if bind and self.checkpoint_format == "binary" and checkpoint_path:
                from repro.replicate import SegmentShipper

                self.shipper = SegmentShipper(bind, telemetry=telemetry)
                self._owns_shipper = True
        elif isinstance(shipper, str):
            from repro.replicate import SegmentShipper

            self._require_replicable(checkpoint_path)
            self.shipper = SegmentShipper(shipper, telemetry=telemetry)
            self._owns_shipper = True
        else:
            self._require_replicable(checkpoint_path)
            self.shipper = shipper
        # Checkpoint accounting surfaced by stats(): how many were
        # written this session, the file size after the last one, and
        # the full-vs-delta split (JSON writes count as full).
        self.checkpoints_written = 0
        self.checkpoints_full = 0
        self.checkpoints_delta = 0
        self.last_checkpoint_bytes = 0
        self._passive_feeds = tuple(passive_feeds) if passive_feeds else ()
        self._feed: "Iterable[ProbeObservation] | None" = (
            iter(MixedFeed(*self._passive_feeds)) if self._passive_feeds else None
        )
        self._feed_pending: ProbeObservation | None = None
        self.passive_ingested = 0
        self.passive_dropped = 0
        # Telemetry (repro.obs): execution state, never checkpointed --
        # that is what keeps resumed checkpoints byte-identical whether
        # or not a run was observed.
        self.telemetry = telemetry
        self._obs = None
        self._feed_obs = None
        self._started = False
        if telemetry is not None:
            from repro.obs.instruments import CheckpointInstruments, FeedInstruments

            self._obs = CheckpointInstruments(telemetry)
            self._feed_obs = FeedInstruments(telemetry)
            if self._parallel is None:
                # Parallel mode instruments the dispatcher instead; the
                # base engine never ingests directly.
                engine.attach_telemetry(telemetry)
            self.result.store.attach_telemetry(telemetry)

    def _require_replicable(self, checkpoint_path) -> None:
        """An explicitly requested shipper must be able to ship."""
        if checkpoint_path is None:
            raise ValueError("replication requires a checkpoint_path")
        if self.checkpoint_format != "binary":
            raise ValueError(
                "replication requires checkpoint_format='binary' "
                "(segments are what ships)"
            )

    def close_shipper(self) -> None:
        """Close a campaign-owned shipper (one built from an address or
        ``REPRO_REPLICATE_BIND``); caller-provided shippers are the
        caller's to close.  Idempotent."""
        if self.shipper is not None and self._owns_shipper:
            self.shipper.close()

    @property
    def live_engine(self) -> "StreamEngine | ParallelStreamEngine":
        """The object live queries and watchlist calls should target.

        Single-process mode: the engine itself.  Parallel mode: the
        dispatcher, whose ``watch``/``last_sighting`` are stream-exact
        while ``self.engine`` is only a merged snapshot.
        """
        return self._parallel if self._parallel is not None else self.engine

    @staticmethod
    def _adopt_engine(engine: StreamEngine) -> None:
        """Make a caller-supplied engine store-less, consistently.

        The campaign owns the corpus, so the engine must not keep its
        own copy -- and its *config* must agree, or a checkpoint would
        record ``keep_observations=True`` with a null store and resume
        with a fresh empty store that silently accumulates only
        post-resume observations.
        """
        if engine.store is not None and len(engine.store) > 0:
            raise ValueError(
                "engine already holds observations; StreamingCampaign owns "
                "the corpus -- pass a fresh engine"
            )
        engine.store = None
        engine.config = replace(engine.config, keep_observations=False)

    @classmethod
    def resume(
        cls,
        campaign: Campaign,
        checkpoint_path: str | Path,
        checkpoint_every: int = 0,
        workers: "int | str" = 0,
        batch_rows: int = 8192,
        passive_feeds: "Iterable[Iterable[ProbeObservation]] | None" = None,
        store: "ObservationStore | None" = None,
        telemetry=None,
        checkpoint_format: str | None = None,
        shipper=None,
    ) -> "StreamingCampaign":
        """Rebuild a streaming campaign from a checkpoint file.

        The rebuilt run continues from the first unprocessed day; the
        engine, corpus, and counters come back exactly as written.  The
        worker count is an execution choice, not checkpoint state: any
        *workers* value resumes any checkpoint.  Passive feeds are
        caller-supplied per run (vantage data is not checkpoint state);
        records for days the checkpoint already closed are dropped.

        *store* reattaches a caller-owned corpus -- typically an
        :class:`ObservationStore` over a
        :class:`~repro.store.sqlite.SqliteBackend` file from the
        interrupted run: rows the file already holds are verified and
        skipped, so the disk-backed resume replays nothing.

        The checkpoint's format is sniffed from its magic bytes, so a
        run may switch formats across resumes.  *checkpoint_format*
        governs the checkpoints the resumed run will *write*; a resumed
        binary run rebases with a fresh full segment on its first
        checkpoint.
        """
        if is_binary_checkpoint(checkpoint_path):
            from repro.stream.ckptbin import read_state

            state = read_state(checkpoint_path)
        else:
            state = json.loads(Path(checkpoint_path).read_text())
        if state.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version: {state.get('version')!r}"
            )
        streaming = cls(
            campaign,
            engine=restore_engine(
                state["engine"],
                origin_of=campaign.internet.rib.origin_of,
                telemetry=telemetry,
            ),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            workers=workers,
            batch_rows=batch_rows,
            passive_feeds=passive_feeds,
            telemetry=telemetry,
            checkpoint_format=checkpoint_format,
            shipper=shipper,
        )
        if store is not None:
            # Release the default store the constructor built (under a
            # disk-backed default that is a temp file + connection).
            streaming.result.store.close()
            streaming.result.store = store
            streaming._external_store = True
            if telemetry is not None:
                store.attach_telemetry(telemetry)
        _restore_store(state["store"], streaming.result.store)
        progress = state["progress"]
        streaming.result.probes_sent = progress["probes_sent"]
        streaming.result.days_run = progress["days_run"]
        streaming.result.targets_per_day = progress["targets_per_day"]
        return streaming

    # -- execution ---------------------------------------------------------

    def _checkpoint_state(self) -> dict:
        return {
            "version": FORMAT_VERSION,
            "progress": {
                "probes_sent": self.result.probes_sent,
                "days_run": self.result.days_run,
                "targets_per_day": self.result.targets_per_day,
            },
            "engine": engine_state(self.engine),
            "store": _store_state(self.result.store),
        }

    def _write_checkpoint(self) -> None:
        if self.checkpoint_format == "binary":
            self._write_checkpoint_binary()
            return
        obs = self._obs
        path = self.checkpoint_path
        tmp = path.with_name(path.name + ".tmp")
        try:
            if obs is None:
                payload = json.dumps(self._checkpoint_state())
                tmp.write_text(payload)
                tmp.replace(path)
            else:
                # Telemetry changes nothing about the payload -- only
                # measures it (the checkpoint tests pin observed ==
                # unobserved bytes).
                t0 = time.perf_counter()
                with obs.serialize_seconds.time():
                    payload = json.dumps(self._checkpoint_state())
                tmp.write_text(payload)
                tmp.replace(path)
                obs.written(
                    path,
                    len(payload),
                    self.live_engine.current_day,
                    time.perf_counter() - t0,
                )
        finally:
            # A serialization or write failure must not leave a stale
            # .tmp next to the checkpoint.
            tmp.unlink(missing_ok=True)
        self.checkpoints_written += 1
        self.checkpoints_full += 1
        self.last_checkpoint_bytes = len(payload)

    def _write_checkpoint_binary(self) -> None:
        """One binary segment: full on the first write, delta after.

        Parallel mode passes the dispatcher's dirty-worker shard set
        explicitly -- ``self.engine`` is a fresh merged snapshot at
        every checkpoint, so the saver's own engine-identity dirty
        tracking would (correctly but wastefully) rebase every time.
        The order is safe because ``_refresh_engine`` runs first and
        flushes the dispatch buffers, marking their workers dirty.
        """
        from repro.stream.ckptbin import BinaryCheckpointer

        saver = self._ckpt_saver
        if saver is None:
            saver = self._ckpt_saver = BinaryCheckpointer(self.checkpoint_path)
        dirty = None
        if self._parallel is not None:
            dirty = self._parallel.take_dirty_sids()
        result = saver.save(
            self.engine,
            store=self.result.store,
            progress={
                "probes_sent": self.result.probes_sent,
                "days_run": self.result.days_run,
                "targets_per_day": self.result.targets_per_day,
            },
            dirty_sids=dirty,
            instruments=self._obs,
        )
        self.checkpoints_written += 1
        if result.kind == "delta":
            self.checkpoints_delta += 1
        else:
            self.checkpoints_full += 1
        self.last_checkpoint_bytes = result.file_bytes
        if self.shipper is not None:
            # Synchronous on the checkpoint thread: the file is
            # quiescent here, and ship() only reads the new byte
            # ranges + enqueues (slow followers never block it).
            self.shipper.ship(saver)

    def _refresh_engine(self) -> None:
        """In parallel mode, re-materialize ``self.engine`` as the
        merged view (shutting the workers down once the campaign is
        done); single-process mode needs nothing."""
        if self._parallel is None:
            return
        if self.finished:
            self.engine = self._parallel.finalize()
        else:
            self.engine = self._parallel.snapshot_engine()

    def _drain_feed(
        self, through_day: int | None, skip_drained: bool = False
    ) -> None:
        """Ingest passive records with day <= *through_day* (all if None).

        Records are pulled lazily off the merged feed, so a feed far
        longer than the campaign costs only what each day consumes.
        Lagging records -- older than the day the engine is already on
        -- are dropped (and counted), keeping the engine's day
        monotonicity intact on resumed runs.  *skip_drained* (the
        initial drain of a ``run()`` call) additionally drops records
        *for* the engine's current day: any such record was already
        drained before the checkpoint that set that day, so replaying
        the same feed across a resume must not ingest it twice --
        that's what keeps resumed checkpoints byte-identical to
        uninterrupted ones.
        """
        if self._feed is None:
            return
        engine = self.live_engine
        floor = engine.current_day
        if skip_drained and floor is not None:
            floor += 1
        batch: list[ProbeObservation] = []
        while True:
            if self._feed_pending is not None:
                record, self._feed_pending = self._feed_pending, None
            else:
                record = next(self._feed, None)
                if record is None:
                    self._feed = None
                    break
            if through_day is not None and record.day > through_day:
                self._feed_pending = record
                break
            if floor is not None and record.day < floor:
                self.passive_dropped += 1
                continue
            batch.append(record)
        if batch:
            self.passive_ingested += engine.ingest_batch(batch)
        fobs = self._feed_obs
        if fobs is not None:
            # Totals, not deltas: counters are set to the campaign's
            # monotone running totals (dedup suppressions accumulate
            # inside the DedupFeed wrappers, per feed).
            fobs.drained.value = self.passive_ingested
            fobs.lagging_dropped.value = self.passive_dropped
            fobs.dedup_suppressed.value = self.dedup_suppressed

    def _on_day_complete(self, day: int) -> None:
        self._drain_feed(day)
        if (
            self.checkpoint_every
            and self.result.days_run % self.checkpoint_every == 0
        ):
            self._refresh_engine()
            self._write_checkpoint()
        if self.on_day_complete is not None:
            self.on_day_complete(day)

    def checkpoint(self) -> None:
        """Write a checkpoint now (refreshing the merged view first).

        The serve daemon's final-checkpoint hook, and useful for any
        caller that wants durability between ``run()`` calls; requires
        a ``checkpoint_path``.
        """
        if self.checkpoint_path is None:
            raise ValueError("checkpoint() requires a checkpoint_path")
        self._refresh_engine()
        self._write_checkpoint()

    def _salvage_store(self) -> None:
        """Best-effort store shutdown after a mid-campaign failure.

        A caller-provided store -- typically sqlite on a caller-owned
        path -- is flushed, committed, and closed, so the rows ingested
        before the crash are durable and ``resume`` can reattach the
        file.  Campaign-owned default stores are left alone: they are
        temp-backed (closing would delete the file) and there is
        nothing for a caller to reattach.
        """
        if not self._external_store:
            return
        try:
            self.result.store.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def run(self, max_days: int | None = None) -> CampaignResult:
        """Process remaining campaign days; returns the (shared) result.

        Delegates the per-response loop to
        :meth:`Campaign.run_streaming` -- the one ingest loop both batch
        and streaming modes share -- with the engine (or the parallel
        dispatcher) as consumer.  *max_days* bounds how many days this
        call processes (the interruption hook the checkpoint tests
        exercise).

        If ingest raises mid-campaign, a caller-provided store is
        committed and closed before the exception propagates (see
        :meth:`_salvage_store`), so a crashed disk-backed run can be
        reattached through :meth:`resume`.
        """
        try:
            return self._run(max_days)
        except BaseException:
            self._salvage_store()
            raise

    def _run(self, max_days: int | None) -> CampaignResult:
        # Passive records predating the first remaining scan day go in
        # before any probe response, keeping day order end to end.
        first_day = self.campaign.config.start_day + self.result.days_run
        if self.telemetry is not None and not self._started:
            self._started = True
            self.telemetry.emit(
                "campaign_start",
                first_day=first_day,
                days_run=self.result.days_run,
                total_days=self.campaign.config.days,
                workers=self.workers,
            )
        self._drain_feed(first_day - 1, skip_drained=True)
        consumer = (
            self._parallel._ingest_observation
            if self._parallel
            else self.engine._ingest_observation
        )
        self.campaign.run_streaming(
            consumer=consumer,
            result=self.result,
            start_offset=self.result.days_run,
            max_days=max_days,
            on_day_complete=self._on_day_complete,
        )
        if self.finished:
            # The campaign consumed its last scan day: whatever remains
            # of the passive feeds (trailing sighting days included)
            # goes in before the final flush closes the stream.
            self._drain_feed(None)
        if self._parallel is not None:
            if not self.finished:
                self._parallel.flush()
            # finished: _refresh_engine finalizes, which flushes itself
            # (and is a cached no-op if a prior run already finalized).
            self._refresh_engine()
        else:
            self.engine.flush()
        if self.checkpoint_path is not None:
            self._write_checkpoint()
        if self.finished and self.telemetry is not None:
            self.telemetry.emit(
                "campaign_finished",
                days_run=self.result.days_run,
                responses=self.live_engine.responses_ingested,
                passive_ingested=self.passive_ingested,
                passive_dropped=self.passive_dropped,
                dedup_suppressed=self.dedup_suppressed,
            )
        return self.result

    @property
    def finished(self) -> bool:
        return self.result.days_run >= self.campaign.config.days

    @property
    def dedup_suppressed(self) -> int:
        """Repeat sightings the attached feeds' dedup windows dropped
        so far (summed across every wrapped passive feed)."""
        return sum(getattr(feed, "suppressed", 0) for feed in self._passive_feeds)

    def stats(self) -> dict[str, int]:
        """Drop/suppression accounting alongside the headline counters.

        The previously invisible totals: every passive record ingested,
        every lagging record dropped on resume, and every repeat a
        ``dedup_window`` suppressed -- plus the progress counters a
        monitoring caller wants next to them.
        """
        return {
            "days_run": self.result.days_run,
            "probes_sent": self.result.probes_sent,
            "responses": self.live_engine.responses_ingested,
            "passive_ingested": self.passive_ingested,
            "passive_dropped": self.passive_dropped,
            "dedup_suppressed": self.dedup_suppressed,
            "checkpoints_written": self.checkpoints_written,
            "checkpoints_full": self.checkpoints_full,
            "checkpoints_delta": self.checkpoints_delta,
            "last_checkpoint_bytes": self.last_checkpoint_bytes,
        }
