"""Multiprocess streaming ingestion: sharded workers behind one dispatcher.

The single-process :class:`~repro.stream.engine.StreamEngine` already
partitions its hot-path state into shards that never share mutable
state.  This module cashes that contract in: a
:class:`ParallelStreamEngine` runs N worker processes, each owning the
shards the scramble in :func:`~repro.stream.shard.shard_index` maps to
it, and routes batched observation chunks to them over pipes.
Observations travel as flat ``(day, target, source, asn)`` tuples --
exactly the fields the workers read, batched to amortize the IPC and
pickling cost that per-object transfer would pay on every response.

Division of labour:

* the **dispatcher** (the caller's process) flattens observations,
  resolves each source /48's origin AS once through the memoized
  routing cache, tracks stream-order state that must not be sharded --
  day progression, watchlist sightings, the optional observation store
  -- and runs day-over-day rotation diffs on pair sets collected from
  the workers whenever a day closes;
* each **worker** folds its chunks into plain
  :class:`~repro.stream.state.ShardState` aggregates with the same
  fused loop the engine's batch path uses, and ships those states back
  on request.

The merge step (:meth:`ParallelStreamEngine.snapshot_engine` /
:meth:`~ParallelStreamEngine.finalize`) folds worker partials -- plus
any checkpoint-restored base state -- into a fresh
:class:`StreamEngine` with :func:`~repro.stream.state.merge_shard_state`.
Because every aggregate commutes, the merged engine is *byte-identical*
(same :func:`~repro.stream.checkpoint.engine_state`, hence the same
checkpoint JSON) to a single-process engine fed the same stream: the
single-process engine is exactly the degenerate one-worker case.
Worker-count invariance is equivalence-tested at N = 1, 2, 4.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable

from repro.core.records import ObservationStore, ProbeObservation
from repro.core.rotation_detect import RotationDetection, diff_pairs, target_prefix48
from repro.net.addr import IID_BITS, IID_MASK
from repro.net.eui64 import _FFFE, _FFFE_SHIFT
from repro.net.icmpv6 import ProbeResponse
from repro.stream import columnar as columnar_kernel
from repro.stream.engine import Sighting, StreamConfig, StreamEngine, update_sighting
from repro.stream.shard import ShardKey, shard_index
from repro.stream.state import ShardState, merge_shard_state, prune_shard_days


# -- worker process --------------------------------------------------------


def _apply_rows(
    rows: list[tuple],
    shards: list[ShardState],
    entries: dict,
    counts: dict[int, int],
    asn_keyed: bool,
    num_shards: int,
) -> None:
    """Fold one chunk of flat rows into the worker's shard aggregates.

    This is ``StreamEngine.ingest_batch``'s fused inner loop minus the
    concerns the dispatcher keeps (day progression, watchlist, store):
    workers only ever see rows for shards they own, and the origin AS
    arrives pre-resolved in the row.  The two loops are deliberately
    hand-inlined twins -- a shared per-row helper would reintroduce the
    call overhead they exist to remove -- and any edit to the span/pair
    logic must land in both; the worker-count-invariance tests pin them
    byte-identical on every shared corpus.
    """
    for day, target, source, asn in rows:
        net48 = source >> 80
        entry = entries.get(net48)
        if entry is None:
            sid = shard_index(asn if asn_keyed else source >> 96, num_shards)
            shard = shards[sid]
            entry = entries[net48] = [
                sid,
                shard.sources.add,
                shard.eui_sources.add,
                shard.eui_iids.add,
                None,
                None,
                shard.pairs_by_day,
                shard,
                asn,
            ]
        sid = entry[0]
        counts[sid] = counts.get(sid, 0) + 1
        entry[1](source)
        iid = source & IID_MASK
        if (iid >> _FFFE_SHIFT) & 0xFFFF != _FFFE:  # not an EUI-64 IID
            continue
        entry[2](source)
        entry[3](iid)
        alloc = entry[4]
        if alloc is None:
            shard = entry[7]
            row_asn = entry[8]
            alloc = shard.alloc_spans.get(row_asn)
            if alloc is None:
                alloc = shard.alloc_spans[row_asn] = {}
            entry[4] = alloc
            pool = shard.pool_spans.get(row_asn)
            if pool is None:
                pool = shard.pool_spans[row_asn] = {}
            entry[5] = pool
        else:
            pool = entry[5]
        t64 = target >> IID_BITS
        span = alloc.get((iid, day))
        if span is None:
            alloc[(iid, day)] = [t64, t64]
        elif t64 < span[0]:
            span[0] = t64
        elif t64 > span[1]:
            span[1] = t64
        s64 = source >> IID_BITS
        span = pool.get(iid)
        if span is None:
            pool[iid] = [s64, s64]
        elif s64 < span[0]:
            span[0] = s64
        elif s64 > span[1]:
            span[1] = s64
        pairs = entry[6].get(day)
        if pairs is None:
            pairs = entry[6][day] = set()
        pairs.add((target, source))


def _worker_main(
    conn, num_shards: int, asn_keyed: bool, columnar: bool | None = None
) -> None:
    """Worker loop: apply row chunks, answer state and pair requests.

    Messages arrive in dispatch order on a dedicated pipe, so a reply to
    ``day_pairs``/``state`` always reflects every chunk sent before the
    request -- the ordering guarantee the dispatcher's day-close and
    snapshot barriers rely on.

    With the columnar kernel enabled (the default when numpy is
    importable), chunks buffer as uint64 columns and fold into the
    shard states lazily -- any state-observing message (``day_pairs``,
    ``prune``, ``state``) materializes first, so replies always carry
    plain, fully-applied :class:`ShardState` structures.
    """
    shards = [ShardState(shard_id=i) for i in range(num_shards)]
    entries: dict[int, list] = {}
    counts: dict[int, int] = {}
    acc = columnar_kernel.make_accumulator(num_shards, columnar)
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "rows":
                if acc is not None:
                    acc.absorb(
                        *columnar_kernel.row_columns(
                            message[1], asn_keyed, num_shards
                        )
                    )
                else:
                    _apply_rows(
                        message[1], shards, entries, counts, asn_keyed, num_shards
                    )
            elif tag == "cols":
                # Column hand-off: the dispatcher already split the
                # addresses into uint64 arrays, so the columnar worker
                # absorbs them as-is (shard placement is the vectorized
                # scramble); a classic-kernel worker bridges back to
                # flat rows.
                if acc is not None:
                    columnar_kernel.absorb_worker_columns(
                        acc, message[1], asn_keyed, num_shards
                    )
                else:
                    _apply_rows(
                        columnar_kernel.worker_columns_to_rows(message[1]),
                        shards,
                        entries,
                        counts,
                        asn_keyed,
                        num_shards,
                    )
            elif tag == "day_pairs":
                day = message[1]
                pairs: set[tuple[int, int]] = set()
                for shard in shards:
                    day_pairs = shard.pairs_by_day.get(day)
                    if day_pairs:
                        pairs |= day_pairs
                if acc is not None:
                    # Buffered pair columns convert straight to tuples;
                    # shard sets stay unmaterialized until state is
                    # actually requested.
                    pairs |= acc.day_pairs_set(day)
                conn.send(("pairs", pairs))
            elif tag == "prune":
                if acc is not None:
                    # Retention runs: fold per-row aggregate buffers so
                    # they never outlive a day, then drop pruned pair
                    # columns -- the worker's memory stays bounded.
                    acc.fold_aggregates(shards)
                    acc.drop_pair_days(message[1])
                prune_shard_days(shards, message[1])
            elif tag == "ping":
                conn.send(("pong",))
            elif tag in ("state", "stop"):
                if acc is not None:
                    acc.materialize(shards)
                for sid, count in counts.items():
                    shards[sid].n_observations = count
                conn.send(("state", shards))
                if tag == "stop":
                    return
            else:
                conn.send(("error", f"unknown message tag {tag!r}"))
                return
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception as exc:  # ship the failure to the dispatcher
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()


# -- dispatcher ------------------------------------------------------------


class ParallelStreamEngine:
    """Drop-in multiprocess ingestion front-end for :class:`StreamEngine`.

    Accepts the same observation stream and watchlist calls as the
    single-process engine; materialize the merged view on demand:

    * :meth:`snapshot_engine` -- merged :class:`StreamEngine` of
      everything ingested so far; workers keep running (the live-query
      and periodic-checkpoint hook);
    * :meth:`finalize` -- close the in-progress day, merge, and shut the
      workers down (the end-of-stream hook).

    Pass a checkpoint-restored engine as *base* to resume: workers
    start empty and the base state is folded in at every merge.
    ``num_workers=1`` is the degenerate case the equivalence tests pin
    against the single-process engine.  *columnar* selects the worker
    apply kernel exactly like ``StreamEngine(columnar=...)``: ``None``
    (auto) uses the numpy sort-reduce kernel when available, ``False``
    forces the classic fused loop, and a missing numpy always falls
    back silently.
    """

    def __init__(
        self,
        config: StreamConfig | None = None,
        origin_of: Callable[[int], int | None] | None = None,
        *,
        num_workers: int = 2,
        batch_rows: int = 8192,
        store: ObservationStore | None = None,
        base: StreamEngine | None = None,
        columnar: bool | None = None,
        telemetry=None,
    ) -> None:
        self.config = config or StreamConfig()
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        if self.config.shard_key is ShardKey.ASN and origin_of is None:
            raise ValueError("ASN sharding requires an origin_of callable")
        if base is not None and base.config != self.config:
            raise ValueError(
                "base engine config does not match: "
                f"{base.config} != {self.config}"
            )
        self.num_workers = num_workers
        self.batch_rows = batch_rows
        self._columnar = columnar
        self._origin_of = origin_of
        self._asn_keyed = self.config.shard_key is ShardKey.ASN
        self._base = base
        self._route_cache: dict[int, tuple[int, int]] = {}
        self._buffers: list[list[tuple]] = [[] for _ in range(num_workers)]
        self._conns: list = []
        self._procs: list = []
        self._merged: StreamEngine | None = None
        self._open = True
        # Workers that received rows since a binary checkpoint saver
        # last drained the set (take_dirty_sids).  Marked only at the
        # send sites -- a snapshot flushes the buffers first, so every
        # mutation is visible as a send by checkpoint time.
        self._dirty_workers: set[int] = set()

        # Stream-order state the dispatcher owns (never sharded).
        if base is not None:
            self.current_day: int | None = base.current_day
            self._closed_through: int | None = base._closed_through
            self._days_seen: set[int] = set(base._days_seen)
            self._watch_iids: set[int] = set(base._watch_iids)
            self.watched: dict[int, Sighting] = {
                iid: Sighting(source=s.source, day=s.day, t_seconds=s.t_seconds)
                for iid, s in base.watched.items()
            }
            self.live_detection = RotationDetection(
                changed_pairs=set(base.live_detection.changed_pairs),
                rotating_prefixes=set(base.live_detection.rotating_prefixes),
                stable_pairs=base.live_detection.stable_pairs,
            )
            self.rotation_days = {
                day: set(prefixes) for day, prefixes in base.rotation_days.items()
            }
            self.responses_ingested = base.responses_ingested
        else:
            self.current_day = None
            self._closed_through = None
            self._days_seen = set()
            self._watch_iids = set()
            self.watched = {}
            self.live_detection = RotationDetection()
            self.rotation_days = {}
            self.responses_ingested = 0
        # Merged pairs of the most recently closed scanned day, kept so
        # the next close diffs without re-asking the workers.
        self._closed_pairs: tuple[int, set[tuple[int, int]]] | None = None

        if store is not None:
            self.store: ObservationStore | None = store
        elif base is not None and base.store is not None:
            self.store = base.store
        else:
            self.store = ObservationStore() if self.config.keep_observations else None

        # Telemetry bundle (repro.obs): dispatcher-side only (workers
        # stay uninstrumented; their cost shows up in wait/merge time).
        # Execution state, never checkpointed.
        self._obs = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

        self._start_workers()

    def attach_telemetry(self, telemetry) -> None:
        """Bind a :class:`repro.obs.Telemetry` to the dispatcher (and
        the store it owns).  Idempotent; shares the ``repro_stream_*``
        vocabulary with :class:`StreamEngine` plus per-worker series."""
        from repro.obs.instruments import ParallelInstruments

        self._obs = ParallelInstruments(telemetry, self.num_workers)
        if self.store is not None:
            self.store.attach_telemetry(telemetry)

    # -- worker lifecycle --------------------------------------------------

    def _start_workers(self) -> None:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        for worker in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self.config.num_shards,
                    self._asn_keyed,
                    self._columnar,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
            if self._obs is not None:
                self._obs.worker_joined(worker, process.pid)

    def _check_open(self) -> None:
        if not self._open:
            raise RuntimeError("parallel engine is finalized/closed")

    def _recv(self, conn, expect: str):
        obs = self._obs
        if obs is None:
            reply = conn.recv()
        else:
            with obs.wait_seconds.time():
                reply = conn.recv()
        if reply[0] == "error":
            self.close()
            raise RuntimeError(f"stream worker failed: {reply[1]}")
        if reply[0] != expect:
            self.close()
            raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
        return reply[1] if len(reply) > 1 else None

    def close(self) -> None:
        """Hard-stop the workers (no merge).  Idempotent."""
        self._open = False
        if self._obs is not None:
            for worker in range(len(self._procs)):
                self._obs.worker_exited(worker)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for process in self._procs:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ParallelStreamEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        if getattr(self, "_procs", None):
            self.close()

    # -- watchlist ---------------------------------------------------------

    def watch(self, iid: int, initial_address: int | None = None) -> None:
        """Same contract as :meth:`StreamEngine.watch` (dispatcher-side,
        so sightings resolve in exact stream order at no IPC cost)."""
        self._watch_iids.add(iid)
        if iid not in self.watched and initial_address is not None:
            self.watched[iid] = Sighting(
                source=initial_address, day=self.current_day or 0, t_seconds=None
            )

    def last_sighting(self, iid: int) -> Sighting | None:
        return self.watched.get(iid)

    # -- ingestion ---------------------------------------------------------

    def ingest(self, observation: ProbeObservation) -> None:
        """Route one observation; the per-response consumer fast path.

        Campaign drivers hand the dispatcher one response at a time, so
        this avoids the batch prologue: one day check, one route-cache
        probe, one buffer append.
        """
        day = observation.day
        if day != self.current_day:
            # Delegate the cold path (first day, day close, backwards
            # error) to the batch loop.
            self.ingest_batch((observation,))
            return
        self._check_open()
        if self._closed_pairs is not None and self._closed_pairs[0] == day:
            # This day was closed and cached by flush(); new rows for it
            # must invalidate the cache (see ingest_batch).
            self._closed_pairs = None
        source = observation.source
        route = self._route_of(source)
        buffer = self._buffers[route[0]]
        buffer.append((day, observation.target, source, route[1]))
        if len(buffer) >= self.batch_rows:
            self._conns[route[0]].send(("rows", buffer))
            self._buffers[route[0]] = []
            self._dirty_workers.add(route[0])
            if self._obs is not None:
                self._obs.dispatched(route[0], len(buffer))
        if self.store is not None:
            self.store.add(observation)
        self.responses_ingested += 1
        if self._obs is not None:
            self._obs.responses.value += 1
        if self._watch_iids:
            iid = source & IID_MASK
            if iid in self._watch_iids:
                update_sighting(self.watched, iid, source, day, observation.t_seconds)

    def ingest_response(self, response: ProbeResponse, day: int | None = None) -> None:
        self.ingest_batch((ProbeObservation.from_response(response, day),))

    def ingest_responses(
        self, responses: Iterable[ProbeResponse], day: int | None = None
    ) -> int:
        return self.ingest_batch(
            ProbeObservation.from_response(r, day) for r in responses
        )

    def ingest_feed(self, feed: Iterable[ProbeObservation]) -> int:
        """Consume a day-ordered feed; same contract as
        :meth:`StreamEngine.ingest_feed`, dispatched to the workers."""
        return self.ingest_batch(feed)

    def ingest_batch(self, observations: Iterable[ProbeObservation]) -> int:
        """Flatten, route, and enqueue a batch; returns how many rows.

        Per observation the dispatcher does exactly: one dict probe for
        the /48 route (origin AS + owning worker), one tuple append, and
        -- only when a watchlist or store is active -- the bookkeeping
        that must see stream order.  Everything else happens in the
        workers.
        """
        self._check_open()
        buffers = self._buffers
        conns = self._conns
        limit = self.batch_rows
        route_cache = self._route_cache
        resolve_route = self._resolve_route
        watch = self._watch_iids
        watched = self.watched
        days_seen = self._days_seen
        store = self.store
        obs_bundle = self._obs
        keep: list[ProbeObservation] | None = [] if store is not None else None
        current_day = self.current_day
        if self._closed_pairs is not None and self._closed_pairs[0] == current_day:
            # flush() closed and cached the current day's pairs; rows
            # arriving for that same day would make the cache stale for
            # the next day-over-day diff.
            self._closed_pairs = None
        count = 0
        try:
            for observation in observations:
                day = observation.day
                if day != current_day:
                    if current_day is None:
                        pass
                    elif day < current_day:
                        raise ValueError(
                            f"stream went backwards: day {day} after day {current_day}"
                        )
                    else:
                        # A later day appeared: everything up to day-1
                        # is complete.  Flush so the workers hold those
                        # days in full, then run the close protocol.
                        self.current_day = current_day
                        self._flush_buffers()
                        self._close_through(day - 1)
                    current_day = day
                    self.current_day = day
                    days_seen.add(day)
                    if obs_bundle is not None:
                        obs_bundle.day_opened(day)
                source = observation.source
                net48 = source >> 80
                route = route_cache.get(net48)
                if route is None:
                    route = route_cache[net48] = resolve_route(source)
                buffer = buffers[route[0]]
                buffer.append((day, observation.target, source, route[1]))
                if len(buffer) >= limit:
                    conns[route[0]].send(("rows", buffer))
                    buffers[route[0]] = []
                    self._dirty_workers.add(route[0])
                    if obs_bundle is not None:
                        obs_bundle.dispatched(route[0], len(buffer))
                if keep is not None:
                    keep.append(observation)
                count += 1
                if watch:
                    iid = source & IID_MASK
                    if iid in watch:
                        update_sighting(
                            watched, iid, source, day, observation.t_seconds
                        )
        finally:
            # Mirror StreamEngine.ingest_batch: rows processed before a
            # mid-batch error stay accounted, matching the per-
            # observation path's behavior on the same stream.
            self.current_day = current_day
            self.responses_ingested += count
            if obs_bundle is not None:
                obs_bundle.observe_batch(count)
            if keep:
                store.extend(keep)
        return count

    def _resolve_route(self, source: int) -> tuple[int, int]:
        """(owning worker, origin AS) for *source* -- the one derivation.

        Every dispatch path -- per-response, flat-row batch, and column
        batch -- must place a /48's rows on the same worker, so the
        scramble and the unrouted-AS convention live here only.
        """
        asn = (self._origin_of(source) or 0) if self._origin_of else 0
        worker = shard_index(
            asn if self._asn_keyed else source >> 96, self.config.num_shards
        ) % self.num_workers
        return (worker, asn)

    def _route_of(self, source: int) -> tuple[int, int]:
        """:meth:`_resolve_route`, memoized per covering /48."""
        net48 = source >> 80
        route = self._route_cache.get(net48)
        if route is None:
            route = self._route_cache[net48] = self._resolve_route(source)
        return route

    def ingest_columns(self, batch) -> int:
        """Dispatch a :class:`~repro.store.batch.ColumnBatch` to the workers.

        The zero-copy hand-off: per day segment the rows are split by
        owning worker with one vectorized scramble and shipped as flat
        uint64 arrays -- no per-row tuples are built on either side of
        the pipe.  Day closes, watchlist sightings, store writes, and
        mid-batch backwards-day accounting keep :meth:`ingest_batch`'s
        exact semantics (the fuzz harness pins the merged state
        byte-identical).  Without numpy the batch lazily degrades to
        the flat-row path.
        """
        self._check_open()
        if not len(batch):
            return 0
        if not columnar_kernel.numpy_enabled():
            return self.ingest_batch(iter(batch))
        segments, day_column, error = columnar_kernel.day_segments(
            batch.day, self.current_day
        )
        store = self.store
        valid = batch
        count = 0
        try:
            if segments:
                if len(day_column) != len(batch):
                    valid = batch.slice(0, len(day_column))
                asn, src_hi, src_lo, tgt_hi, tgt_lo = (
                    columnar_kernel.dispatch_batch_arrays(valid, self._route_of)
                )
                worker_rows = columnar_kernel.worker_of_rows(
                    asn,
                    src_hi,
                    self._asn_keyed,
                    self.config.num_shards,
                    self.num_workers,
                )
            for start, stop, day in segments:
                if day != self.current_day:
                    if self.current_day is not None:
                        self._flush_buffers()
                        self._close_through(day - 1)
                    self.current_day = day
                    self._days_seen.add(day)
                    if self._obs is not None:
                        self._obs.day_opened(day)
                if self._closed_pairs is not None and self._closed_pairs[0] == day:
                    # flush() closed and cached this day; new rows make
                    # the cached pair set stale (see ingest_batch).
                    self._closed_pairs = None
                segment = slice(start, stop)
                seg_worker = worker_rows[segment]
                for w in range(self.num_workers):
                    mask = seg_worker == w
                    if not mask.any():
                        continue
                    self._conns[w].send(
                        (
                            "cols",
                            (
                                day_column[segment][mask],
                                asn[segment][mask],
                                src_hi[segment][mask],
                                src_lo[segment][mask],
                                tgt_hi[segment][mask],
                                tgt_lo[segment][mask],
                            ),
                        )
                    )
                    self._dirty_workers.add(w)
                    if self._obs is not None:
                        self._obs.dispatched(w, int(mask.sum()))
                if self._watch_iids:
                    for i in columnar_kernel.watch_hits(
                        src_lo[segment], self._watch_iids
                    ):
                        row = start + i
                        update_sighting(
                            self.watched,
                            valid.src_lo[row],
                            (valid.src_hi[row] << 64) | valid.src_lo[row],
                            day,
                            valid.t_seconds[row],
                        )
                count += stop - start
        finally:
            self.responses_ingested += count
            if self._obs is not None:
                self._obs.observe_batch(count)
            if count and store is not None:
                store.extend_columns(
                    valid if count == len(valid) else valid.slice(0, count)
                )
        if error is not None:
            raise ValueError(error)
        return count

    def _flush_buffers(self) -> None:
        obs = self._obs
        for worker, buffer in enumerate(self._buffers):
            if obs is not None:
                obs.queue_depth[worker].value = len(buffer)
            if buffer:
                self._conns[worker].send(("rows", buffer))
                self._buffers[worker] = []
                self._dirty_workers.add(worker)
                if obs is not None:
                    obs.dispatched(worker, len(buffer))

    def take_dirty_sids(self) -> set[int]:
        """Shard ids possibly mutated since the last call; clears the set.

        Worker placement is ``shard_index(key) % num_workers`` over the
        same key the worker's shard placement uses, so worker *w* owns
        exactly the shards with ``sid % num_workers == w`` -- a dirty
        worker over-approximates to all its shards, which is safe for
        delta checkpoints (extra shards re-emit, never go missing).
        """
        dirty = self._dirty_workers
        self._dirty_workers = set()
        workers = self.num_workers
        return {
            sid
            for sid in range(self.config.num_shards)
            if sid % workers in dirty
        }

    def barrier(self) -> None:
        """Block until every worker has applied everything sent so far."""
        self._check_open()
        self._flush_buffers()
        for conn in self._conns:
            conn.send(("ping",))
        for conn in self._conns:
            self._recv(conn, "pong")

    # -- live rotation detection (dispatcher-side day closes) --------------

    def _merged_day_pairs(self, day: int) -> set[tuple[int, int]]:
        """Pairs of *day* across all workers plus any resumed base state."""
        for conn in self._conns:
            conn.send(("day_pairs", day))
        pairs: set[tuple[int, int]] = set()
        for conn in self._conns:
            pairs |= self._recv(conn, "pairs")
        if self._base is not None:
            pairs |= self._base._pairs_on(day)
        return pairs

    def _close_through(self, day: int) -> None:
        """The dispatcher's replica of ``StreamEngine._close_days_through``.

        Identical day-pairing rules and the same :func:`diff_pairs`, but
        over pair sets collected from the workers; caching the last
        closed day's merged pairs keeps it to one collection per close.
        """
        start = (
            self._closed_through + 1
            if self._closed_through is not None
            else self.current_day
        )
        days_seen = self._days_seen
        for closed in range(start, day + 1):
            previous = closed - 1
            if previous in days_seen and closed in days_seen:
                if self._closed_pairs is not None and self._closed_pairs[0] == previous:
                    previous_pairs = self._closed_pairs[1]
                else:
                    previous_pairs = self._merged_day_pairs(previous)
                closed_pairs = self._merged_day_pairs(closed)
                detection = diff_pairs(previous_pairs, closed_pairs)
                # Per-day attribution for the serve layer, deduplicated
                # against the cumulative set exactly as
                # StreamEngine._diff_days does.
                fresh = detection.changed_pairs - self.live_detection.changed_pairs
                self.rotation_days[closed] = {target_prefix48(t) for t, _ in fresh}
                self.live_detection.changed_pairs |= detection.changed_pairs
                self.live_detection.rotating_prefixes |= detection.rotating_prefixes
                self.live_detection.stable_pairs += detection.stable_pairs
                self._closed_pairs = (closed, closed_pairs)
                if self._obs is not None:
                    self._obs.day_closed(
                        closed, len(detection.changed_pairs), detection.stable_pairs
                    )
            self._closed_through = closed
        retain = self.config.retain_days
        if retain is not None and self._closed_through is not None:
            for conn in self._conns:
                conn.send(("prune", self._closed_through - retain + 2))

    def flush(self) -> RotationDetection:
        """Close the in-progress day; the parallel ``StreamEngine.flush``."""
        self._check_open()
        self._flush_buffers()
        if self.current_day is not None and self._closed_through != self.current_day:
            self._close_through(self.current_day)
        return self.live_detection

    # -- merge -------------------------------------------------------------

    def _fold(self, worker_states: list[list[ShardState]]) -> StreamEngine:
        obs = self._obs
        if obs is None:
            return self._fold_states(worker_states)
        with obs.merge_seconds.time():
            return self._fold_states(worker_states)

    def _fold_states(self, worker_states: list[list[ShardState]]) -> StreamEngine:
        engine = StreamEngine(self.config, origin_of=self._origin_of, store=self.store)
        if self.store is None:
            engine.store = None
        if self._base is not None:
            for shard in self._base.shards:
                merge_shard_state(engine.shards[shard.shard_id], shard)
        for shards in worker_states:
            for shard in shards:
                if shard.n_observations:
                    merge_shard_state(engine.shards[shard.shard_id], shard)
        retain = self.config.retain_days
        if retain is not None and self._closed_through is not None:
            # A resumed base may hold pair days the live run has since
            # pruned; apply the current threshold to the merged view.
            engine.prune_pair_days(self._closed_through - retain + 2)
        engine.current_day = self.current_day
        engine._closed_through = self._closed_through
        engine._days_seen = set(self._days_seen)
        engine.responses_ingested = self.responses_ingested
        engine._watch_iids = set(self._watch_iids)
        engine.watched = {
            iid: Sighting(source=s.source, day=s.day, t_seconds=s.t_seconds)
            for iid, s in self.watched.items()
        }
        engine.live_detection = RotationDetection(
            changed_pairs=set(self.live_detection.changed_pairs),
            rotating_prefixes=set(self.live_detection.rotating_prefixes),
            stable_pairs=self.live_detection.stable_pairs,
        )
        engine.rotation_days = {
            day: set(prefixes) for day, prefixes in self.rotation_days.items()
        }
        return engine

    def read_view(self) -> StreamEngine:
        """A merged :class:`StreamEngine` for read-only queries.

        The serve layer's entry point: the cached finalized merge when
        the run is done, otherwise a fresh :meth:`snapshot_engine`.
        Must be called from the ingest thread (it flushes dispatch
        buffers); readers hold the immutable snapshots the publisher
        builds from it, never this view itself.
        """
        if self._merged is not None:
            return self._merged
        return self.snapshot_engine()

    def snapshot_engine(self) -> StreamEngine:
        """Merged view of everything ingested so far; workers keep running.

        Byte-identical (same ``engine_state``) to a single-process
        engine fed the same observations -- including the still-open
        day, which stays unclosed exactly as it would live.
        """
        self._check_open()
        self._flush_buffers()
        for conn in self._conns:
            conn.send(("state",))
        states = [self._recv(conn, "state") for conn in self._conns]
        return self._fold(states)

    def finalize(self) -> StreamEngine:
        """Close the final day, merge, and shut down.  Idempotent.

        Equivalent to ``engine.ingest_batch(...); engine.flush()`` on a
        single-process engine.
        """
        if self._merged is not None:
            return self._merged
        self._check_open()
        self.flush()
        for conn in self._conns:
            conn.send(("stop",))
        states = [self._recv(conn, "state") for conn in self._conns]
        merged = self._fold(states)
        self._open = False
        if self._obs is not None:
            for worker in range(len(self._procs)):
                self._obs.worker_exited(worker)
        for conn in self._conns:
            conn.close()
        for process in self._procs:
            process.join(timeout=10)
        self._conns = []
        self._procs = []
        self._merged = merged
        return merged
