"""Parallel streaming ingestion: sharded workers behind one dispatcher.

The single-process :class:`~repro.stream.engine.StreamEngine` already
partitions its hot-path state into shards that never share mutable
state.  This module cashes that contract in: a
:class:`ParallelStreamEngine` runs N workers, each owning the shards
the scramble in :func:`~repro.stream.shard.shard_index` maps to it,
and routes batched observation chunks to them through a
:mod:`~repro.stream.fabric` transport -- local ``multiprocessing``
pipes by default, or length-prefixed TCP sockets so the workers run on
other hosts (``transport="tcp://0.0.0.0:9999?workers=4"``).
Observations travel as flat ``(day, target, source, asn)`` tuples --
exactly the fields the workers read, batched to amortize the transfer
and pickling cost that per-object transfer would pay on every
response.

Division of labour:

* the **dispatcher** (the caller's process) flattens observations,
  resolves each source /48's origin AS once through the memoized
  routing cache, tracks stream-order state that must not be sharded --
  day progression, watchlist sightings, the optional observation store
  -- and runs day-over-day rotation diffs on pair columns collected
  from the workers whenever a day closes;
* each **worker** (a :class:`~repro.stream.fabric.protocol.WorkerCore`
  behind whatever transport) folds its chunks into plain
  :class:`~repro.stream.state.ShardState` aggregates with the same
  fused loop the engine's batch path uses, and ships those states back
  on request.

The merge step (:meth:`ParallelStreamEngine.snapshot_engine` /
:meth:`~ParallelStreamEngine.finalize`) folds worker partials -- plus
any checkpoint-restored base state -- into a fresh
:class:`StreamEngine` with :func:`~repro.stream.state.merge_shard_state`.
Because every aggregate commutes, the merged engine is *byte-identical*
(same :func:`~repro.stream.checkpoint.engine_state`, hence the same
checkpoint JSON) to a single-process engine fed the same stream: the
single-process engine is exactly the degenerate one-worker case.
Worker-count invariance is equivalence-tested at N = 1, 2, 4 on both
transports.

Fault tolerance rides the same commutativity.  Under the socket
transport's ``"requeue"`` policy the dispatcher journals every
mutating message per channel (journal-append *before* send, so a
failed send is already covered); when a worker dies mid-campaign its
journal replays onto the lowest-indexed survivor -- any worker can
absorb any shard's rows -- and the campaign completes with the same
bytes.  The journal costs dispatcher memory proportional to the
stream shipped so far, so it is *bounded*: past
``REPRO_FABRIC_JOURNAL_LIMIT`` journaled rows (default 4M;
``journal_limit=`` on the transport or spec string; ``0`` = keep
everything) the journals are dropped and a later worker loss degrades
to the ``"abort"`` behavior -- safe precisely because long campaigns
checkpoint periodically.  Under ``"abort"`` the engine closes and
raises :class:`~repro.stream.fabric.FabricError`; the last committed
checkpoint on disk stays resumable.  Either way: never a hang, never
silent loss.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro import config as repro_config
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.rotation_detect import RotationDetection, diff_pairs, target_prefix48
from repro.net.addr import IID_MASK
from repro.stream import columnar as columnar_kernel
from repro.stream.engine import Sighting, StreamConfig, StreamEngine, update_sighting
from repro.stream.fabric.protocol import FabricError, WorkerLost, pairs_from_columns
from repro.stream.fabric.transport import PipeTransport, parse_worker_spec
from repro.stream.shard import ShardKey, shard_index
from repro.stream.sink import IngestSinkBase
from repro.stream.state import ShardState, merge_shard_state
from repro.util import get_logger

log = get_logger("repro.stream.parallel")


def _journal_weight(message: tuple) -> int:
    """Rows a journaled message holds -- the unit the journal bound
    counts (a row, not a message, is what costs memory)."""
    tag = message[0]
    if tag == "rows":
        return len(message[1])
    if tag == "cols":
        return len(message[1][0])
    return 1


class ParallelStreamEngine(IngestSinkBase):
    """Drop-in parallel ingestion front-end for :class:`StreamEngine`.

    Accepts the same observation stream and watchlist calls as the
    single-process engine; materialize the merged view on demand:

    * :meth:`snapshot_engine` -- merged :class:`StreamEngine` of
      everything ingested so far; workers keep running (the live-query
      and periodic-checkpoint hook);
    * :meth:`finalize` -- close the in-progress day, merge, and shut the
      workers down (the end-of-stream hook).

    Pass a checkpoint-restored engine as *base* to resume: workers
    start empty and the base state is folded in at every merge.
    ``num_workers=1`` is the degenerate case the equivalence tests pin
    against the single-process engine.  *columnar* selects the worker
    apply kernel exactly like ``StreamEngine(columnar=...)``: ``None``
    (auto) uses the numpy sort-reduce kernel when available, ``False``
    forces the classic fused loop, and a missing numpy always falls
    back silently.

    *transport* selects worker placement: ``None`` forks local pipe
    workers (:class:`~repro.stream.fabric.PipeTransport`, the
    historical behavior); a :class:`~repro.stream.fabric.SocketTransport`
    (or a spec string like ``"tcp://0.0.0.0:9999?workers=4"``) runs a
    socket master instead -- a spec's ``workers=`` overrides
    *num_workers* so one string configures the whole deployment.
    """

    def __init__(
        self,
        config: StreamConfig | None = None,
        origin_of: Callable[[int], int | None] | None = None,
        *,
        num_workers: int = 2,
        batch_rows: int = 8192,
        store: ObservationStore | None = None,
        base: StreamEngine | None = None,
        columnar: bool | None = None,
        telemetry=None,
        transport=None,
    ) -> None:
        self.config = config or StreamConfig()
        if isinstance(transport, str):
            transport, spec_workers = parse_worker_spec(transport)
            if spec_workers is not None:
                num_workers = spec_workers
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        if self.config.shard_key is ShardKey.ASN and origin_of is None:
            raise ValueError("ASN sharding requires an origin_of callable")
        if base is not None and base.config != self.config:
            raise ValueError(
                "base engine config does not match: "
                f"{base.config} != {self.config}"
            )
        self.num_workers = num_workers
        self.batch_rows = batch_rows
        self._columnar = columnar
        self._origin_of = origin_of
        self._asn_keyed = self.config.shard_key is ShardKey.ASN
        self._base = base
        self._route_cache: dict[int, tuple[int, int]] = {}
        self._buffers: list[list[tuple]] = [[] for _ in range(num_workers)]
        self._transport = transport if transport is not None else PipeTransport()
        self._channels: list = []
        # Dispatch slot -> channel index.  Starts as the identity; a
        # requeue redirects every slot of a lost channel to its heir.
        self._slots: list[int] = list(range(num_workers))
        # Per-channel journals of mutating messages (rows/cols/prune),
        # kept only under the "requeue" policy: a lost channel's journal
        # replays onto a survivor, rebuilding its shards exactly.  The
        # journals retain every row shipped so far, so they are bounded:
        # past _journal_limit total rows they are dropped and a later
        # worker loss degrades to the abort behavior (the last committed
        # checkpoint stays resumable) instead of growing without bound.
        self._journals: list[list[tuple]] | None = (
            [[] for _ in range(num_workers)]
            if self._transport.policy == "requeue"
            else None
        )
        journal_limit = getattr(self._transport, "journal_limit", None)
        if journal_limit is None:
            journal_limit = repro_config.current().fabric_journal_limit_rows
        self._journal_limit = journal_limit
        self._journal_rows = 0
        self._journal_degraded = False
        self._sync_token = 0
        self._merged: StreamEngine | None = None
        self._open = True
        # Workers that received rows since a binary checkpoint saver
        # last drained the set (take_dirty_sids).  Marked only at the
        # send sites -- a snapshot flushes the buffers first, so every
        # mutation is visible as a send by checkpoint time.
        self._dirty_workers: set[int] = set()

        # Stream-order state the dispatcher owns (never sharded).
        if base is not None:
            self.current_day: int | None = base.current_day
            self._closed_through: int | None = base._closed_through
            self._days_seen: set[int] = set(base._days_seen)
            self._watch_iids: set[int] = set(base._watch_iids)
            self.watched: dict[int, Sighting] = {
                iid: Sighting(source=s.source, day=s.day, t_seconds=s.t_seconds)
                for iid, s in base.watched.items()
            }
            self.live_detection = RotationDetection(
                changed_pairs=set(base.live_detection.changed_pairs),
                rotating_prefixes=set(base.live_detection.rotating_prefixes),
                stable_pairs=base.live_detection.stable_pairs,
            )
            self.rotation_days = {
                day: set(prefixes) for day, prefixes in base.rotation_days.items()
            }
            self.responses_ingested = base.responses_ingested
        else:
            self.current_day = None
            self._closed_through = None
            self._days_seen = set()
            self._watch_iids = set()
            self.watched = {}
            self.live_detection = RotationDetection()
            self.rotation_days = {}
            self.responses_ingested = 0
        # Merged pairs of the most recently closed scanned day, kept so
        # the next close diffs without re-asking the workers.
        self._closed_pairs: tuple[int, set[tuple[int, int]]] | None = None

        if store is not None:
            self.store: ObservationStore | None = store
        elif base is not None and base.store is not None:
            self.store = base.store
        else:
            self.store = ObservationStore() if self.config.keep_observations else None

        # Telemetry bundle (repro.obs): dispatcher-side only (workers
        # stay uninstrumented; their cost shows up in wait/merge time).
        # Execution state, never checkpointed.
        self._obs = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

        self._channels = self._transport.start(
            num_workers,
            num_shards=self.config.num_shards,
            asn_keyed=self._asn_keyed,
            columnar=columnar,
        )
        if self._obs is not None:
            for index, channel in enumerate(self._channels):
                self._obs.worker_joined(index, channel.pid)

    def attach_telemetry(self, telemetry) -> None:
        """Bind a :class:`repro.obs.Telemetry` to the dispatcher (and
        the store it owns).  Idempotent; shares the ``repro_stream_*``
        vocabulary with :class:`StreamEngine` plus per-worker series."""
        from repro.obs.instruments import ParallelInstruments

        self._obs = ParallelInstruments(telemetry, self.num_workers)
        if self.store is not None:
            self.store.attach_telemetry(telemetry)
        if hasattr(self._transport, "attach_telemetry"):
            self._transport.attach_telemetry(telemetry, self.num_workers)

    # -- worker lifecycle --------------------------------------------------

    @property
    def transport(self):
        """The live :class:`~repro.stream.fabric` transport."""
        return self._transport

    @property
    def _procs(self) -> list:
        """Worker process handles (tests poke liveness through this)."""
        return self._transport.processes

    def _check_open(self) -> None:
        if not self._open:
            raise RuntimeError("parallel engine is finalized/closed")

    def close(self) -> None:
        """Hard-stop the workers (no merge).  Idempotent."""
        self._open = False
        if self._obs is not None:
            for worker in range(len(self._channels)):
                self._obs.worker_exited(worker)
        self._channels = []
        self._transport.close(graceful=False)

    def __enter__(self) -> "ParallelStreamEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        if getattr(self, "_open", False) and getattr(self, "_channels", None):
            try:
                self.close()
            except Exception:
                pass

    # -- fault handling ----------------------------------------------------

    def _handle_loss(self, channel_index: int, reason: str) -> None:
        """Resolve a lost worker channel per the transport policy.

        ``requeue``: redirect the channel's dispatch slots to the
        lowest-indexed survivor and replay its journal there -- shards
        are disjoint across channels and every aggregate commutes, so
        the survivor absorbs the dead worker's entire history exactly
        once (the journal is appended *before* each original send, so a
        send that died mid-flight is already covered, and the replay
        itself extends the heir's journal first so cascading deaths
        recurse safely).  ``abort``/``fail``: close everything and
        raise -- with a socket campaign the last committed checkpoint
        on disk stays resumable.
        """
        channel = self._channels[channel_index]
        channel.mark_dead(reason)
        if self._obs is not None:
            self._obs.worker_exited(channel_index)
        if self._journals is None:
            policy = self._transport.policy
            degraded = self._journal_degraded
            self.close()
            if degraded:
                raise FabricError(
                    f"worker channel {channel_index} lost ({reason}) after "
                    "the requeue journal exceeded its row bound "
                    f"({self._journal_limit}); aborting -- the last "
                    "committed checkpoint remains resumable"
                )
            if policy == "abort":
                raise FabricError(
                    f"worker channel {channel_index} lost ({reason}); "
                    "aborting -- the last committed checkpoint remains "
                    "resumable"
                )
            raise FabricError(f"worker channel {channel_index} lost: {reason}")
        survivors = [i for i, ch in enumerate(self._channels) if ch.alive]
        if not survivors:
            self.close()
            raise FabricError(
                f"all workers lost (last: channel {channel_index}: {reason})"
            )
        heir = survivors[0]
        journal = self._journals[channel_index]
        self._journals[channel_index] = []
        # Heir inherits the journal *before* replay: if the heir dies
        # mid-replay, its own journal already covers everything.
        self._journals[heir].extend(journal)
        for slot in range(self.num_workers):
            if self._slots[slot] == channel_index:
                self._slots[slot] = heir
        if hasattr(self._transport, "note_requeued"):
            self._transport.note_requeued(len(journal))
        heir_channel = self._channels[heir]
        for message in journal:
            try:
                heir_channel.send(message)
            except WorkerLost as exc:
                self._handle_loss(exc.channel_index, str(exc))
                return  # the recursion replayed the heir's full journal

    def _degrade_journal(self) -> None:
        """Drop the requeue journals once they exceed the row bound.

        Dispatcher memory stops growing; from here a worker loss
        aborts to the last committed checkpoint (the degraded message
        in :meth:`_handle_loss`) instead of replaying.  Raise
        ``REPRO_FABRIC_JOURNAL_LIMIT`` (or set it to 0) to keep
        requeue coverage across a longer stream.
        """
        self._journals = None
        self._journal_degraded = True
        log.warning(
            "fabric requeue journal exceeded %d rows; dropping journals "
            "-- a worker loss from here aborts to the last committed "
            "checkpoint (raise REPRO_FABRIC_JOURNAL_LIMIT to extend "
            "requeue coverage)",
            self._journal_limit,
        )

    def _dispatch(self, slot: int, message: tuple) -> None:
        """Send a mutating message to whichever channel owns *slot*."""
        while True:
            channel_index = self._slots[slot]
            channel = self._channels[channel_index]
            if not channel.alive:
                self._handle_loss(channel_index, channel.dead_reason or "worker lost")
                continue  # the slot now points at the heir
            if self._journals is not None:
                self._journals[channel_index].append(message)
                self._journal_rows += _journal_weight(message)
                if self._journal_limit and self._journal_rows > self._journal_limit:
                    self._degrade_journal()
            try:
                channel.send(message)
            except WorkerLost as exc:
                self._handle_loss(exc.channel_index, str(exc))
                # Journaled before the send, so the replay delivered it.
            return

    def _active_channels(self) -> list[int]:
        """Channel indices currently owning at least one slot, sorted."""
        return sorted(set(self._slots))

    def _recv_channel(self, channel_index: int, expect: str):
        channel = self._channels[channel_index]
        obs = self._obs
        if obs is None:
            reply = channel.recv()
        else:
            with obs.wait_seconds.time():
                reply = channel.recv()
        if reply[0] == "error":
            self.close()
            raise RuntimeError(f"stream worker failed: {reply[1]}")
        if reply[0] != expect:
            self.close()
            raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
        return reply[1] if len(reply) > 1 else None

    def _resync(self) -> None:
        """Drain stale frames after an interrupted collective.

        A collective that died partway left un-consumed replies in
        flight on the survivors.  Pinging every active channel with a
        fresh token and reading until the matching pong discards them
        (messages are FIFO per channel), leaving every conversation
        aligned for the retry.
        """
        while True:
            self._sync_token += 1
            token = self._sync_token
            try:
                active = self._active_channels()
                for channel_index in active:
                    self._channels[channel_index].send(("ping", token))
                for channel_index in active:
                    channel = self._channels[channel_index]
                    while True:
                        reply = channel.recv()
                        if reply[0] == "error":
                            self.close()
                            raise RuntimeError(f"stream worker failed: {reply[1]}")
                        if reply[0] == "pong" and reply[1] == token:
                            break
                return
            except WorkerLost as exc:
                self._handle_loss(exc.channel_index, str(exc))

    def _collect(self, message: tuple, expect: str) -> list:
        """Send *message* to every active channel and gather the replies.

        Restarts from scratch on a worker loss: the loss handler moves
        the dead channel's shards to a survivor, so only a fresh
        request sees the post-requeue truth; :meth:`_resync` first
        clears any half-collected replies.
        """
        while True:
            try:
                active = self._active_channels()
                for channel_index in active:
                    self._channels[channel_index].send(message)
                return [self._recv_channel(ci, expect) for ci in active]
            except WorkerLost as exc:
                self._handle_loss(exc.channel_index, str(exc))
                self._resync()

    # -- watchlist ---------------------------------------------------------

    def watch(self, iid: int, initial_address: int | None = None) -> None:
        """Same contract as :meth:`StreamEngine.watch` (dispatcher-side,
        so sightings resolve in exact stream order at no transfer cost)."""
        self._watch_iids.add(iid)
        if iid not in self.watched and initial_address is not None:
            self.watched[iid] = Sighting(
                source=initial_address, day=self.current_day or 0, t_seconds=None
            )

    def last_sighting(self, iid: int) -> Sighting | None:
        return self.watched.get(iid)

    # -- ingestion ---------------------------------------------------------

    def _ingest_observation(self, observation: ProbeObservation) -> None:
        """Route one observation; the per-response consumer fast path.

        Campaign drivers hand the dispatcher one response at a time, so
        this avoids the batch prologue: one day check, one route-cache
        probe, one buffer append.  (The polymorphic
        :meth:`~repro.stream.sink.IngestSinkBase.ingest` lands here for
        single observations.)
        """
        day = observation.day
        if day != self.current_day:
            # Delegate the cold path (first day, day close, backwards
            # error) to the batch loop.
            self.ingest_batch((observation,))
            return
        self._check_open()
        if self._closed_pairs is not None and self._closed_pairs[0] == day:
            # This day was closed and cached by flush(); new rows for it
            # must invalidate the cache (see ingest_batch).
            self._closed_pairs = None
        source = observation.source
        route = self._route_of(source)
        buffer = self._buffers[route[0]]
        buffer.append((day, observation.target, source, route[1]))
        if len(buffer) >= self.batch_rows:
            self._dispatch(route[0], ("rows", buffer))
            self._buffers[route[0]] = []
            self._dirty_workers.add(route[0])
            if self._obs is not None:
                self._obs.dispatched(route[0], len(buffer))
        if self.store is not None:
            self.store.add(observation)
        self.responses_ingested += 1
        if self._obs is not None:
            self._obs.responses.value += 1
        if self._watch_iids:
            iid = source & IID_MASK
            if iid in self._watch_iids:
                update_sighting(self.watched, iid, source, day, observation.t_seconds)

    def ingest_batch(self, observations: Iterable[ProbeObservation]) -> int:
        """Flatten, route, and enqueue a batch; returns how many rows.

        Per observation the dispatcher does exactly: one dict probe for
        the /48 route (origin AS + owning worker), one tuple append, and
        -- only when a watchlist or store is active -- the bookkeeping
        that must see stream order.  Everything else happens in the
        workers.
        """
        self._check_open()
        buffers = self._buffers
        dispatch = self._dispatch
        limit = self.batch_rows
        route_cache = self._route_cache
        resolve_route = self._resolve_route
        watch = self._watch_iids
        watched = self.watched
        days_seen = self._days_seen
        store = self.store
        obs_bundle = self._obs
        keep: list[ProbeObservation] | None = [] if store is not None else None
        current_day = self.current_day
        if self._closed_pairs is not None and self._closed_pairs[0] == current_day:
            # flush() closed and cached the current day's pairs; rows
            # arriving for that same day would make the cache stale for
            # the next day-over-day diff.
            self._closed_pairs = None
        count = 0
        try:
            for observation in observations:
                day = observation.day
                if day != current_day:
                    if current_day is None:
                        pass
                    elif day < current_day:
                        raise ValueError(
                            f"stream went backwards: day {day} after day {current_day}"
                        )
                    else:
                        # A later day appeared: everything up to day-1
                        # is complete.  Flush so the workers hold those
                        # days in full, then run the close protocol.
                        self.current_day = current_day
                        self._flush_buffers()
                        self._close_through(day - 1)
                    current_day = day
                    self.current_day = day
                    days_seen.add(day)
                    if obs_bundle is not None:
                        obs_bundle.day_opened(day)
                source = observation.source
                net48 = source >> 80
                route = route_cache.get(net48)
                if route is None:
                    route = route_cache[net48] = resolve_route(source)
                buffer = buffers[route[0]]
                buffer.append((day, observation.target, source, route[1]))
                if len(buffer) >= limit:
                    dispatch(route[0], ("rows", buffer))
                    buffers[route[0]] = []
                    self._dirty_workers.add(route[0])
                    if obs_bundle is not None:
                        obs_bundle.dispatched(route[0], len(buffer))
                if keep is not None:
                    keep.append(observation)
                count += 1
                if watch:
                    iid = source & IID_MASK
                    if iid in watch:
                        update_sighting(
                            watched, iid, source, day, observation.t_seconds
                        )
        finally:
            # Mirror StreamEngine.ingest_batch: rows processed before a
            # mid-batch error stay accounted, matching the per-
            # observation path's behavior on the same stream.
            self.current_day = current_day
            self.responses_ingested += count
            if obs_bundle is not None:
                obs_bundle.observe_batch(count)
            if keep:
                store.extend(keep)
        return count

    def _resolve_route(self, source: int) -> tuple[int, int]:
        """(owning worker, origin AS) for *source* -- the one derivation.

        Every dispatch path -- per-response, flat-row batch, and column
        batch -- must place a /48's rows on the same worker, so the
        scramble and the unrouted-AS convention live here only.
        """
        asn = (self._origin_of(source) or 0) if self._origin_of else 0
        worker = shard_index(
            asn if self._asn_keyed else source >> 96, self.config.num_shards
        ) % self.num_workers
        return (worker, asn)

    def _route_of(self, source: int) -> tuple[int, int]:
        """:meth:`_resolve_route`, memoized per covering /48."""
        net48 = source >> 80
        route = self._route_cache.get(net48)
        if route is None:
            route = self._route_cache[net48] = self._resolve_route(source)
        return route

    def ingest_columns(self, batch) -> int:
        """Dispatch a :class:`~repro.store.batch.ColumnBatch` to the workers.

        The zero-copy hand-off: per day segment the rows are split by
        owning worker with one vectorized scramble and shipped as flat
        uint64 arrays -- no per-row tuples are built on either side of
        the transport.  Day closes, watchlist sightings, store writes,
        and mid-batch backwards-day accounting keep
        :meth:`ingest_batch`'s exact semantics (the fuzz harness pins
        the merged state byte-identical).  Without numpy the batch
        lazily degrades to the flat-row path.
        """
        self._check_open()
        if not len(batch):
            return 0
        if not columnar_kernel.numpy_enabled():
            return self.ingest_batch(iter(batch))
        segments, day_column, error = columnar_kernel.day_segments(
            batch.day, self.current_day
        )
        store = self.store
        valid = batch
        count = 0
        try:
            if segments:
                if len(day_column) != len(batch):
                    valid = batch.slice(0, len(day_column))
                asn, src_hi, src_lo, tgt_hi, tgt_lo = (
                    columnar_kernel.dispatch_batch_arrays(valid, self._route_of)
                )
                worker_rows = columnar_kernel.worker_of_rows(
                    asn,
                    src_hi,
                    self._asn_keyed,
                    self.config.num_shards,
                    self.num_workers,
                )
            for start, stop, day in segments:
                if day != self.current_day:
                    if self.current_day is not None:
                        self._flush_buffers()
                        self._close_through(day - 1)
                    self.current_day = day
                    self._days_seen.add(day)
                    if self._obs is not None:
                        self._obs.day_opened(day)
                if self._closed_pairs is not None and self._closed_pairs[0] == day:
                    # flush() closed and cached this day; new rows make
                    # the cached pair set stale (see ingest_batch).
                    self._closed_pairs = None
                segment = slice(start, stop)
                seg_worker = worker_rows[segment]
                for w in range(self.num_workers):
                    mask = seg_worker == w
                    if not mask.any():
                        continue
                    self._dispatch(
                        w,
                        (
                            "cols",
                            (
                                day_column[segment][mask],
                                asn[segment][mask],
                                src_hi[segment][mask],
                                src_lo[segment][mask],
                                tgt_hi[segment][mask],
                                tgt_lo[segment][mask],
                            ),
                        ),
                    )
                    self._dirty_workers.add(w)
                    if self._obs is not None:
                        self._obs.dispatched(w, int(mask.sum()))
                if self._watch_iids:
                    for i in columnar_kernel.watch_hits(
                        src_lo[segment], self._watch_iids
                    ):
                        row = start + i
                        update_sighting(
                            self.watched,
                            valid.src_lo[row],
                            (valid.src_hi[row] << 64) | valid.src_lo[row],
                            day,
                            valid.t_seconds[row],
                        )
                count += stop - start
        finally:
            self.responses_ingested += count
            if self._obs is not None:
                self._obs.observe_batch(count)
            if count and store is not None:
                store.extend_columns(
                    valid if count == len(valid) else valid.slice(0, count)
                )
        if error is not None:
            raise ValueError(error)
        return count

    def _flush_buffers(self) -> None:
        obs = self._obs
        for worker, buffer in enumerate(self._buffers):
            if obs is not None:
                obs.queue_depth[worker].value = len(buffer)
            if buffer:
                self._dispatch(worker, ("rows", buffer))
                self._buffers[worker] = []
                self._dirty_workers.add(worker)
                if obs is not None:
                    obs.dispatched(worker, len(buffer))

    def take_dirty_sids(self) -> set[int]:
        """Shard ids possibly mutated since the last call; clears the set.

        Worker placement is ``shard_index(key) % num_workers`` over the
        same key the worker's shard placement uses, so dispatch slot
        *w* owns exactly the shards with ``sid % num_workers == w`` --
        a dirty slot over-approximates to all its shards, which is safe
        for delta checkpoints (extra shards re-emit, never go missing).
        Requeue redirections don't change slot-to-shard ownership, only
        which channel services the slot.
        """
        dirty = self._dirty_workers
        self._dirty_workers = set()
        workers = self.num_workers
        return {
            sid
            for sid in range(self.config.num_shards)
            if sid % workers in dirty
        }

    def barrier(self) -> None:
        """Block until every worker has applied everything sent so far."""
        self._check_open()
        self._flush_buffers()
        self._resync()

    # -- live rotation detection (dispatcher-side day closes) --------------

    def _merged_day_pairs(self, day: int) -> set[tuple[int, int]]:
        """Pairs of *day* across all workers plus any resumed base state.

        Workers reply with flat pair *columns* (four parallel uint64
        lists) -- nothing object-shaped crosses the transport -- and
        the dispatcher rebuilds the set to diff.
        """
        pairs: set[tuple[int, int]] = set()
        for columns in self._collect(("day_pairs", day), "pairs"):
            pairs |= pairs_from_columns(columns)
        if self._base is not None:
            pairs |= self._base._pairs_on(day)
        return pairs

    def _close_through(self, day: int) -> None:
        """The dispatcher's replica of ``StreamEngine._close_days_through``.

        Identical day-pairing rules and the same :func:`diff_pairs`, but
        over pair columns collected from the workers; caching the last
        closed day's merged pairs keeps it to one collection per close.
        """
        start = (
            self._closed_through + 1
            if self._closed_through is not None
            else self.current_day
        )
        days_seen = self._days_seen
        for closed in range(start, day + 1):
            previous = closed - 1
            if previous in days_seen and closed in days_seen:
                if self._closed_pairs is not None and self._closed_pairs[0] == previous:
                    previous_pairs = self._closed_pairs[1]
                else:
                    previous_pairs = self._merged_day_pairs(previous)
                closed_pairs = self._merged_day_pairs(closed)
                detection = diff_pairs(previous_pairs, closed_pairs)
                # Per-day attribution for the serve layer, deduplicated
                # against the cumulative set exactly as
                # StreamEngine._diff_days does.
                fresh = detection.changed_pairs - self.live_detection.changed_pairs
                self.rotation_days[closed] = {target_prefix48(t) for t, _ in fresh}
                self.live_detection.changed_pairs |= detection.changed_pairs
                self.live_detection.rotating_prefixes |= detection.rotating_prefixes
                self.live_detection.stable_pairs += detection.stable_pairs
                self._closed_pairs = (closed, closed_pairs)
                if self._obs is not None:
                    self._obs.day_closed(
                        closed, len(detection.changed_pairs), detection.stable_pairs
                    )
            self._closed_through = closed
        retain = self.config.retain_days
        if retain is not None and self._closed_through is not None:
            floor = self._closed_through - retain + 2
            sent: set[int] = set()
            for slot in range(self.num_workers):
                channel_index = self._slots[slot]
                if channel_index in sent:
                    continue
                sent.add(channel_index)
                self._dispatch(slot, ("prune", floor))

    def flush(self) -> RotationDetection:
        """Close the in-progress day; the parallel ``StreamEngine.flush``."""
        self._check_open()
        self._flush_buffers()
        if self.current_day is not None and self._closed_through != self.current_day:
            self._close_through(self.current_day)
        return self.live_detection

    # -- merge -------------------------------------------------------------

    def _fold(self, worker_states: list[list[ShardState]]) -> StreamEngine:
        obs = self._obs
        if obs is None:
            return self._fold_states(worker_states)
        with obs.merge_seconds.time():
            return self._fold_states(worker_states)

    def _fold_states(self, worker_states: list[list[ShardState]]) -> StreamEngine:
        engine = StreamEngine(self.config, origin_of=self._origin_of, store=self.store)
        if self.store is None:
            engine.store = None
        if self._base is not None:
            for shard in self._base.shards:
                merge_shard_state(engine.shards[shard.shard_id], shard)
        for shards in worker_states:
            for shard in shards:
                if shard.n_observations:
                    merge_shard_state(engine.shards[shard.shard_id], shard)
        retain = self.config.retain_days
        if retain is not None and self._closed_through is not None:
            # A resumed base may hold pair days the live run has since
            # pruned; apply the current threshold to the merged view.
            engine.prune_pair_days(self._closed_through - retain + 2)
        engine.current_day = self.current_day
        engine._closed_through = self._closed_through
        engine._days_seen = set(self._days_seen)
        engine.responses_ingested = self.responses_ingested
        engine._watch_iids = set(self._watch_iids)
        engine.watched = {
            iid: Sighting(source=s.source, day=s.day, t_seconds=s.t_seconds)
            for iid, s in self.watched.items()
        }
        engine.live_detection = RotationDetection(
            changed_pairs=set(self.live_detection.changed_pairs),
            rotating_prefixes=set(self.live_detection.rotating_prefixes),
            stable_pairs=self.live_detection.stable_pairs,
        )
        engine.rotation_days = {
            day: set(prefixes) for day, prefixes in self.rotation_days.items()
        }
        return engine

    def read_view(self) -> StreamEngine:
        """A merged :class:`StreamEngine` for read-only queries.

        The serve layer's entry point: the cached finalized merge when
        the run is done, otherwise a fresh :meth:`snapshot_engine`.
        Must be called from the ingest thread (it flushes dispatch
        buffers); readers hold the immutable snapshots the publisher
        builds from it, never this view itself.
        """
        if self._merged is not None:
            return self._merged
        return self.snapshot_engine()

    def snapshot_engine(self) -> StreamEngine:
        """Merged view of everything ingested so far; workers keep running.

        Byte-identical (same ``engine_state``) to a single-process
        engine fed the same observations -- including the still-open
        day, which stays unclosed exactly as it would live.
        """
        self._check_open()
        self._flush_buffers()
        return self._fold(self._collect(("state",), "state"))

    def finalize(self) -> StreamEngine:
        """Close the final day, merge, and shut down.  Idempotent.

        Equivalent to ``engine.ingest_batch(...); engine.flush()`` on a
        single-process engine.  Worker states are collected while every
        worker is still alive; ``stop`` is fire-and-forget afterwards,
        so an exit can never masquerade as a mid-collection death.
        """
        if self._merged is not None:
            return self._merged
        self._check_open()
        self.flush()
        states = self._collect(("state",), "state")
        for channel_index in self._active_channels():
            try:
                self._channels[channel_index].send(("stop",))
            except WorkerLost:
                pass
        merged = self._fold(states)
        self._open = False
        if self._obs is not None:
            for worker in range(len(self._channels)):
                self._obs.worker_exited(worker)
        self._channels = []
        self._transport.close(graceful=True)
        self._merged = merged
        return merged
