"""Columnar (numpy) worker kernel: sort-reduce ingestion off the hot path.

Profiling the streaming subsystem shows per-worker apply cost dominated
by Python ``set.add``/``dict`` inserts -- every observation pays for
hashing 128-bit ints and interpreter dispatch, so parallel workers gain
little over the serial fused loop.  This module replaces that hot loop
with a columnar kernel:

* each chunk of observations is split into ``uint64`` columns --
  addresses as (hi, lo) pairs, plus day / origin-AS / shard columns;
* per-chunk work is pure numpy: the EUI-64 ``ff:fe`` structural test,
  shard placement (the same splitmix scramble as
  :func:`~repro.stream.shard.shard_index`, vectorized), and per-shard
  row counting;
* the expensive Python-object work is *deferred*: day-over-day rotation
  diffs run directly on lexsorted, deduplicated pair columns
  (:func:`diff_pair_columns`), and sets/span dicts materialize only
  when shard state is actually read -- checkpoint, snapshot, merge, or
  an inference query (:meth:`ColumnarAccumulator.materialize`).
  Materialization sorts each buffered column family once, deduplicates
  rows vectorially, min/max-reduces span groups with
  ``ufunc.reduceat``, and only then touches Python sets -- once per
  *unique* element instead of once per observation.

Because every aggregate the engine keeps commutes (counts add, sets
union, spans min/max -- see :mod:`repro.stream.state`), deferring and
reordering the inserts is invisible in the result: a columnar engine's
checkpoint bytes are identical to the per-observation engine's on any
valid stream (fuzz-equivalence-tested).

numpy is an optional dependency (the ``[fast]`` extra).  When it is
absent -- or ``REPRO_STREAM_FORCE_FALLBACK`` is set in the environment
-- :func:`make_accumulator` returns ``None`` and callers fall back to
the pure-Python fused loops that predate this kernel, keeping tier-1
dependency-light with identical results.
"""

from __future__ import annotations

from repro import config
from repro.core.rotation_detect import RotationDetection
from repro.net.addr import Prefix
from repro.net.eui64 import _FFFE, _FFFE_SHIFT
from repro.stream.shard import SPLITMIX64
from repro.stream.state import ShardState, merge_span_bounds

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI leg covers this
    np = None

#: Set (to any non-empty value) to force the pure-Python fallback even
#: when numpy is importable -- the CI no-numpy leg and the fallback
#: equivalence tests use it.  (Resolved through
#: :func:`repro.config.current`.)
FORCE_FALLBACK_ENV = config.ENV_FORCE_FALLBACK

_MASK64 = (1 << 64) - 1
_NET48_SHIFT = 80


def numpy_enabled() -> bool:
    """True when the numpy kernel is importable and not overridden."""
    return np is not None and not config.current().force_fallback


def make_accumulator(
    num_shards: int, columnar: bool | None = None
) -> "ColumnarAccumulator | None":
    """Build the columnar accumulator, or ``None`` for the fallback path.

    *columnar* follows the engine-facing convention: ``None`` (auto)
    and ``True`` select the numpy kernel when :func:`numpy_enabled`;
    ``False`` forces the classic fused loop.  ``True`` without numpy
    degrades silently to the fallback -- requesting speed must never
    turn into an import error on a minimal install.
    """
    if columnar is False or not numpy_enabled():
        return None
    return ColumnarAccumulator(num_shards)


def vector_shard_index(keys, num_shards: int):
    """Vectorized :func:`~repro.stream.shard.shard_index` over uint64 keys.

    uint64 multiplication wraps mod 2**64, which is exactly the
    ``& IID_MASK`` truncation in the scalar scramble, so both paths
    place every key identically.
    """
    x = keys * np.uint64(SPLITMIX64)
    return (x >> np.uint64(32)) % np.uint64(num_shards)


def eui64_mask(src_lo):
    """Vectorized ``is_eui64_iid`` over an IID (low-64) column."""
    return (src_lo >> np.uint64(_FFFE_SHIFT)) & np.uint64(0xFFFF) == np.uint64(_FFFE)


def day_segments(days: list, current_day: int | None):
    """Split a batch's day list into runs of equal days; police ordering.

    Returns ``(segments, day_column, error)``: segments are ``(start,
    stop, day)`` over the longest valid prefix, *day_column* is the
    validated int64 day array truncated to that prefix (fed straight
    into the column build), and *error* is the per-observation path's
    "stream went backwards" message when the prefix ends at an ordering
    violation (the caller ingests the prefix, then raises -- exactly
    what the scalar loop does mid-batch).
    """
    arr = np.array(days, dtype=np.int64)
    n = len(arr)
    prev = np.empty(n, dtype=np.int64)
    prev[0] = current_day if current_day is not None else arr[0]
    prev[1:] = arr[:-1]
    bad = arr < prev
    error = None
    if bad.any():
        n = int(bad.argmax())
        error = f"stream went backwards: day {days[n]} after day {int(prev[n])}"
        arr = arr[:n]
    if n == 0:
        return [], arr, error
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = arr[1:] != arr[:-1]
    starts = np.nonzero(first)[0].tolist()
    stops = starts[1:] + [n]
    return [(a, b, days[a]) for a, b in zip(starts, stops)], arr, error


def observation_columns(batch: list, day_column, route_of):
    """Columns for a day-ordered batch of :class:`ProbeObservation`-likes.

    *day_column* is the validated int64 day array from
    :func:`day_segments` (one entry per observation).  *route_of(source)*
    -> ``(shard, asn)`` is consulted once per unique source /48 (the
    engine's memoized route cache), then broadcast back over the rows
    with the unique-inverse mapping -- one column build serves every
    day segment of the batch via slicing.
    """
    src_hi = np.array([o.source >> 64 for o in batch], dtype=np.uint64)
    src_lo = np.array([o.source & _MASK64 for o in batch], dtype=np.uint64)
    tgt_hi = np.array([o.target >> 64 for o in batch], dtype=np.uint64)
    tgt_lo = np.array([o.target & _MASK64 for o in batch], dtype=np.uint64)
    net48, first_idx, inverse = np.unique(
        src_hi >> np.uint64(16), return_index=True, return_inverse=True
    )
    sid_u = np.empty(len(net48), dtype=np.int64)
    asn_u = np.empty(len(net48), dtype=np.int64)
    for j, i in enumerate(first_idx.tolist()):
        sid_u[j], asn_u[j] = route_of(batch[i].source)
    return sid_u[inverse], day_column, asn_u[inverse], src_hi, src_lo, tgt_hi, tgt_lo


def _batch_address_arrays(batch):
    """uint64 address arrays plus the unique-source-/48 grouping.

    The shared core of the :class:`ColumnBatch` kernel entry points:
    each column becomes a uint64 array with one C-level ``np.array``
    call (the batch already holds flat hi/lo buffers -- no per-row
    attribute walks or shifts), and the unique-/48 ``first_idx`` /
    ``inverse`` mapping lets callers resolve routes once per /48 and
    broadcast back over the rows, exactly as
    :func:`observation_columns` does for object batches.
    """
    src_hi = np.array(batch.src_hi, dtype=np.uint64)
    src_lo = np.array(batch.src_lo, dtype=np.uint64)
    tgt_hi = np.array(batch.tgt_hi, dtype=np.uint64)
    tgt_lo = np.array(batch.tgt_lo, dtype=np.uint64)
    _net48, first_idx, inverse = np.unique(
        src_hi >> np.uint64(16), return_index=True, return_inverse=True
    )
    return src_hi, src_lo, tgt_hi, tgt_lo, first_idx, inverse


def column_batch_arrays(batch, day_column, route_of):
    """Kernel columns for a :class:`~repro.store.batch.ColumnBatch`.

    The zero-conversion twin of :func:`observation_columns`.
    *route_of(source)* -> ``(shard, asn)`` is consulted once per unique
    source /48; *day_column* is the validated array from
    :func:`day_segments` and *batch* must already be truncated to its
    length.
    """
    src_hi, src_lo, tgt_hi, tgt_lo, first_idx, inverse = _batch_address_arrays(batch)
    sid_u = np.empty(len(first_idx), dtype=np.int64)
    asn_u = np.empty(len(first_idx), dtype=np.int64)
    batch_hi = batch.src_hi
    batch_lo = batch.src_lo
    for j, i in enumerate(first_idx.tolist()):
        sid_u[j], asn_u[j] = route_of((batch_hi[i] << 64) | batch_lo[i])
    return sid_u[inverse], day_column, asn_u[inverse], src_hi, src_lo, tgt_hi, tgt_lo


def dispatch_batch_arrays(batch, route_of):
    """Worker-routing columns for a :class:`ColumnBatch` at the dispatcher.

    Like :func:`column_batch_arrays` but keeps only the origin AS of
    each row's route (worker placement is re-derived vectorially by
    :func:`worker_of_rows`, and shard placement happens worker-side,
    exactly as with flat rows).  *route_of(source)* is the dispatcher's
    memoized per-/48 resolver.  Returns ``(asn, src_hi, src_lo,
    tgt_hi, tgt_lo)`` with *asn* as an int64 row column.
    """
    src_hi, src_lo, tgt_hi, tgt_lo, first_idx, inverse = _batch_address_arrays(batch)
    asn_u = np.empty(len(first_idx), dtype=np.int64)
    batch_hi = batch.src_hi
    batch_lo = batch.src_lo
    for j, i in enumerate(first_idx.tolist()):
        asn_u[j] = route_of((batch_hi[i] << 64) | batch_lo[i])[1]
    return asn_u[inverse], src_hi, src_lo, tgt_hi, tgt_lo


def worker_of_rows(asn, src_hi, asn_keyed: bool, num_shards: int, num_workers: int):
    """Owning-worker index per row, matching the scalar dispatcher.

    The scalar path computes ``shard_index(key) % num_workers`` per
    /48; :func:`vector_shard_index` is elementwise-identical to
    ``shard_index``, so both paths place every row on the same worker.
    """
    key = asn.astype(np.uint64) if asn_keyed else src_hi >> np.uint64(32)
    return vector_shard_index(key, num_shards) % np.uint64(num_workers)


def absorb_worker_columns(acc, columns, asn_keyed: bool, num_shards: int) -> None:
    """Fold one ``cols`` message into a worker's accumulator.

    *columns* is the pickled ``(day, asn, src_hi, src_lo, tgt_hi,
    tgt_lo)`` array tuple; shard placement is the vectorized scramble
    over pre-resolved origin AS (or the source /32), exactly as
    :func:`row_columns` does for flat rows.
    """
    day, asn, src_hi, src_lo, tgt_hi, tgt_lo = columns
    key = asn.astype(np.uint64) if asn_keyed else src_hi >> np.uint64(32)
    sid = vector_shard_index(key, num_shards).astype(np.int64)
    acc.absorb(sid, day, asn, src_hi, src_lo, tgt_hi, tgt_lo)


def worker_columns_to_rows(columns) -> list[tuple]:
    """``cols`` message -> flat ``(day, target, source, asn)`` rows.

    The fallback bridge for a worker running the classic fused loop
    while the dispatcher ships columns: plain Python ints only (numpy
    scalars must never leak into shard sets -- they would not survive
    checkpoint JSON serialization).
    """
    day, asn, src_hi, src_lo, tgt_hi, tgt_lo = (
        c.tolist() if hasattr(c, "tolist") else list(c) for c in columns
    )
    return [
        (d, (thi << 64) | tlo, (shi << 64) | slo, a)
        for d, a, shi, slo, thi, tlo in zip(day, asn, src_hi, src_lo, tgt_hi, tgt_lo)
    ]


def row_columns(rows: list, asn_keyed: bool, num_shards: int):
    """Columns for worker flat rows ``(day, target, source, asn)``.

    Workers receive the origin AS pre-resolved, so shard placement is
    the fully vectorized scramble -- no route cache, no Python loop.
    """
    days = np.array([r[0] for r in rows], dtype=np.int64)
    asn = np.array([r[3] for r in rows], dtype=np.int64)
    src_hi = np.array([r[2] >> 64 for r in rows], dtype=np.uint64)
    src_lo = np.array([r[2] & _MASK64 for r in rows], dtype=np.uint64)
    tgt_hi = np.array([r[1] >> 64 for r in rows], dtype=np.uint64)
    tgt_lo = np.array([r[1] & _MASK64 for r in rows], dtype=np.uint64)
    key = asn.astype(np.uint64) if asn_keyed else src_hi >> np.uint64(32)
    sid = vector_shard_index(key, num_shards).astype(np.int64)
    return sid, days, asn, src_hi, src_lo, tgt_hi, tgt_lo


def watch_hits(src_lo, watch_iids: set) -> list:
    """Row indices whose IID is watched, in stream order."""
    watch = np.fromiter(watch_iids, dtype=np.uint64, count=len(watch_iids))
    return np.nonzero(np.isin(src_lo, watch))[0].tolist()


def _combine64(hi, lo) -> list:
    """``(hi << 64) | lo`` per row, as Python ints."""
    return [(h << 64) | l for h, l in zip(hi.tolist(), lo.tolist())]


_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xBF58476D1CE4E5B9
_MIX3 = 0x94D049BB133111EB


def _row_hash(cols: list):
    """A splitmix-style uint64 mix of each row's columns.

    Used as an *exact-negative* filter: equal rows always hash equal,
    so hash-based set probes only ever over-approximate matches, and
    the small candidate sets are verified column-exact afterwards --
    no result ever depends on hashes being collision-free.
    """
    h = cols[0] * np.uint64(_MIX1)
    for c in cols[1:]:
        h = (h ^ c) * np.uint64(_MIX2)
        h ^= h >> np.uint64(29)
    h = (h ^ (h >> np.uint64(32))) * np.uint64(_MIX3)
    return h


def _dedup_rows(cols: list) -> list:
    """Drop duplicate rows without a full multi-column sort.

    Rows with a unique hash are unique outright; only the hash-dup
    subset (true duplicates plus the odd collision) pays the exact
    lexicographic dedup.  Row order of the result is arbitrary --
    callers that need grouping order use :func:`_unique_rows`.
    """
    n = len(cols[0])
    if n == 0:
        return cols
    h = _row_hash(cols)
    uniq, inverse, counts = np.unique(h, return_inverse=True, return_counts=True)
    if len(uniq) == n:
        return cols
    dup = counts[inverse] > 1
    singles = [c[~dup] for c in cols]
    dup_cols = _unique_rows([c[dup] for c in cols])
    return [np.concatenate((s, d)) for s, d in zip(singles, dup_cols)]


def _hash_overlap(hash_a, hash_b):
    """Masks of elements whose hash value occurs on both sides.

    One stable argsort of the concatenation, then per-run origin flags
    via ``logical_or.reduceat`` -- cheaper than two ``np.isin`` calls,
    which each re-sort internally.
    """
    na = len(hash_a)
    merged = np.concatenate((hash_a, hash_b))
    n = len(merged)
    order = np.argsort(merged, kind="stable")
    sorted_hashes = merged[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_hashes[1:] != sorted_hashes[:-1]
    starts = np.nonzero(boundary)[0]
    is_a = order < na
    has_a = np.logical_or.reduceat(is_a, starts)
    has_b = np.logical_or.reduceat(~is_a, starts)
    lengths = np.diff(np.append(starts, n))
    candidate_sorted = np.repeat(has_a & has_b, lengths)
    candidate = np.empty(n, dtype=bool)
    candidate[order] = candidate_sorted
    return candidate[:na], candidate[na:]


def _match_rows(cols_a: list, cols_b: list):
    """Boolean masks of rows common to two deduplicated row sets."""
    na = len(cols_a[0])
    nb = len(cols_b[0])
    merged = [np.concatenate(pair) for pair in zip(cols_a, cols_b)]
    order = np.lexsort(tuple(reversed(merged)))
    sorted_cols = [c[order] for c in merged]
    same = np.ones(na + nb - 1, dtype=bool)
    for c in sorted_cols:
        same &= c[1:] == c[:-1]
    # Each input is deduplicated, so an equal-neighbour pair is one row
    # from each side.
    first = order[:-1][same]
    second = order[1:][same]
    common_a = np.zeros(na, dtype=bool)
    common_b = np.zeros(nb, dtype=bool)
    common_a[np.where(first < na, first, second)] = True
    common_b[np.where(first >= na, first, second) - na] = True
    return common_a, common_b


def _unique_rows(cols: list) -> list:
    """Lexicographically sort the row set held in *cols*; drop duplicates.

    ``cols[0]`` is the primary key.  Returns the sorted, deduplicated
    columns (numeric lexsort beats ``np.unique`` on structured views).
    """
    n = len(cols[0])
    if n == 0:
        return cols
    order = np.lexsort(tuple(reversed(cols)))
    cols = [c[order] for c in cols]
    changed = np.zeros(n - 1, dtype=bool)
    for c in cols:
        changed |= c[1:] != c[:-1]
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    keep[1:] = changed
    return [c[keep] for c in cols]


def _group_slices(*key_cols):
    """(starts, stops) of equal-key runs in already-sorted key columns."""
    n = len(key_cols[0])
    changed = np.zeros(n - 1, dtype=bool)
    for c in key_cols:
        changed |= c[1:] != c[:-1]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = changed
    starts = np.nonzero(first)[0]
    stops = np.append(starts[1:], n)
    return starts, stops


def diff_pair_columns(cols_a: list, cols_b: list, emitted_a=None):
    """The day-over-day rotation diff, entirely in column space.

    *cols_a*/*cols_b* are deduplicated ``(tgt_hi, tgt_lo, src_hi,
    src_lo)`` pair columns of two scanned days.  Returns
    ``(changed_cols, changed_net48s, stable_pairs, appeared_b)`` where
    ``changed_cols`` holds the symmetric difference (the rows
    :func:`~repro.core.rotation_detect.diff_pairs` would put in
    ``changed_pairs``), ``changed_net48s`` the unique /48 numbers of
    the changed targets, ``stable_pairs`` the intersection size, and
    ``appeared_b`` marks the *cols_b* rows included in the difference.
    Python tuples for the changed pairs are *not* built here -- the
    engine folds them lazily (see ``StreamEngine.live_detection``).

    *emitted_a* (a mask over *cols_a*) names rows already emitted as
    changed by the previous close -- day N's appeared rows re-surface
    as day N's disappeared rows one close later, and skipping them
    keeps the deferred changed-pair stream duplicate-free (a missing
    mask only costs re-deduplication, never correctness).
    """
    na = len(cols_a[0])
    nb = len(cols_b[0])
    stable = 0
    if na == 0 or nb == 0:
        changed_a = np.ones(na, dtype=bool)
        appeared_b = np.ones(nb, dtype=bool)
        if emitted_a is not None:
            changed_a &= ~emitted_a
        changed = [
            np.concatenate((ca[changed_a], cb))
            for ca, cb in zip(cols_a, cols_b)
        ]
    else:
        # Hash probes shrink the exact comparison to the candidate
        # matches; with heavy rotation (the paper's whole premise) the
        # common set is small, so the multi-column sort touches almost
        # nothing.  Hashes only pre-filter -- equality is verified on
        # the full columns, so collisions cannot corrupt the diff.
        cand_a, cand_b = _hash_overlap(_row_hash(cols_a), _row_hash(cols_b))
        changed_a = ~cand_a
        changed_b = ~cand_b
        if cand_a.any() and cand_b.any():
            common_a, common_b = _match_rows(
                [c[cand_a] for c in cols_a], [c[cand_b] for c in cols_b]
            )
            stable = int(common_a.sum())
            # Candidates that failed exact verification (hash collisions
            # with a different row) are changed after all.
            changed_a[np.nonzero(cand_a)[0][~common_a]] = True
            changed_b[np.nonzero(cand_b)[0][~common_b]] = True
        appeared_b = changed_b
        if emitted_a is not None:
            changed_a &= ~emitted_a
        changed = [
            np.concatenate((ca[changed_a], cb[changed_b]))
            for ca, cb in zip(cols_a, cols_b)
        ]
    net48s = np.unique(changed[0] >> np.uint64(16))
    return changed, net48s, stable, appeared_b


def net48_prefixes(net48s) -> set:
    """/48 :class:`Prefix` objects for an array of changed /48 numbers.

    The shared prefix-flagging step of both the cumulative fold below
    and the engine's per-day rotation attribution.
    """
    return {Prefix(n48 << _NET48_SHIFT, 48) for n48 in net48s.tolist()}


def fold_changed(pending: list, detection: RotationDetection) -> None:
    """Fold deferred :func:`diff_pair_columns` results into *detection*.

    Concatenates every pending changed-column batch and builds the
    Python pair tuples and /48 prefixes in one pass each.  The batches
    are duplicate-free by construction (the emitted-mask in
    :meth:`ColumnarAccumulator.diff_days`); the rare stragglers from an
    invalidated mask just cost a redundant set insert.
    """
    cols = [
        np.concatenate([entry[0][i] for entry in pending]) for i in range(4)
    ]
    if len(cols[0]):
        detection.changed_pairs.update(
            zip(_combine64(cols[0], cols[1]), _combine64(cols[2], cols[3]))
        )
    net48s = np.unique(np.concatenate([entry[1] for entry in pending]))
    detection.rotating_prefixes.update(net48_prefixes(net48s))


class ColumnarAccumulator:
    """Buffers observation columns; folds them into shard state on demand.

    The owner (a :class:`~repro.stream.engine.StreamEngine` or a
    multiprocess worker) calls :meth:`absorb` per chunk on the hot path
    and :meth:`materialize` whenever its :class:`ShardState` list must
    be current -- checkpoint, snapshot, merge, inference queries.
    Day-close rotation diffs never materialize: they read merged pair
    columns straight from the buffer (:meth:`day_pair_columns`).  Shard
    row counts fold in at materialize time too, so an un-materialized
    accumulator leaves the shard list untouched.
    """

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self.pending = 0
        self._counts = np.zeros(num_shards, dtype=np.int64)
        # Every row: (sid, src_hi, src_lo) -- feeds the sources sets.
        self._rows: list[tuple] = []
        # EUI-64 rows: (sid, day, asn, src_hi, src_lo, tgt_hi) -- feeds
        # spans and the EUI source/IID sets (pairs carry tgt_lo below).
        self._eui: list[tuple] = []
        # day -> [(sid, tgt_hi, tgt_lo, src_hi, src_lo), ...] EUI pair
        # chunks, plus a per-day merged/deduplicated diff-ready cache
        # and the mask of merged rows already emitted as changed.
        self._pair_chunks: dict[int, list[tuple]] = {}
        self._merged_pairs: dict[int, list] = {}
        self._appeared: dict[int, object] = {}
        # Shards that received rows since a checkpoint saver last drained
        # this set (binary delta dirty-tracking; never cleared by
        # materialize -- folding buffers does not make a shard clean).
        self.dirty_sids: set[int] = set()

    def absorb(self, sid, day, asn, src_hi, src_lo, tgt_hi, tgt_lo) -> None:
        """Buffer one chunk of column arrays (all int64/uint64, same length).

        O(chunk) numpy work only: the EUI mask, a bincount, and column
        subsetting.  No Python set or dict is touched here.
        """
        n = len(sid)
        if n == 0:
            return
        counts = np.bincount(sid, minlength=self.num_shards)
        self._counts += counts
        self.dirty_sids.update(np.nonzero(counts)[0].tolist())
        self._rows.append((sid, src_hi, src_lo))
        eui = eui64_mask(src_lo)
        if eui.any():
            if eui.all():  # all-EUI chunks skip seven subset copies
                sid_e, day_e, asn_e, shi_e, slo_e, thi_e, tlo_e = (
                    sid,
                    day,
                    asn,
                    src_hi,
                    src_lo,
                    tgt_hi,
                    tgt_lo,
                )
            else:
                sid_e = sid[eui]
                day_e = day[eui]
                asn_e = asn[eui]
                shi_e = src_hi[eui]
                slo_e = src_lo[eui]
                thi_e = tgt_hi[eui]
                tlo_e = tgt_lo[eui]
            self._eui.append((sid_e, day_e, asn_e, shi_e, slo_e, thi_e))
            days_in = np.unique(day_e).tolist()
            for d in days_in:
                # Single-day chunks (every engine segment) skip the mask.
                mask = slice(None) if len(days_in) == 1 else day_e == d
                self._pair_chunks.setdefault(d, []).append(
                    (sid_e[mask], thi_e[mask], tlo_e[mask], shi_e[mask], slo_e[mask])
                )
                self._merged_pairs.pop(d, None)
                self._appeared.pop(d, None)
        self.pending += n

    # -- pair columns (the day-close fast path) ----------------------------

    def has_pairs(self, day: int) -> bool:
        return day in self._pair_chunks

    def day_pair_columns(self, day: int) -> list:
        """Merged, deduplicated ``(tgt_hi, tgt_lo, src_hi, src_lo)`` of *day*.

        Cached until new rows arrive for the day; an unscanned or
        EUI-free day reads as empty columns, matching the empty pair
        set the scalar path would diff.
        """
        merged = self._merged_pairs.get(day)
        if merged is None:
            chunks = self._pair_chunks.get(day)
            if not chunks:
                empty = np.empty(0, dtype=np.uint64)
                return [empty, empty, empty, empty]
            merged = _dedup_rows(
                [np.concatenate([c[i] for c in chunks]) for i in range(1, 5)]
            )
            self._merged_pairs[day] = merged
        return merged

    def diff_days(self, day_a: int, day_b: int):
        """:func:`diff_pair_columns` over two buffered days.

        Tracks which of *day_b*'s rows were emitted as changed so the
        next close (where they become *day_a*'s disappeared rows) skips
        re-emitting them -- the deferred changed stream stays
        duplicate-free without a global re-deduplication at fold time.
        """
        changed, net48s, stable, appeared_b = diff_pair_columns(
            self.day_pair_columns(day_a),
            self.day_pair_columns(day_b),
            emitted_a=self._appeared.get(day_a),
        )
        self._appeared[day_b] = appeared_b
        return changed, net48s, stable

    def day_pairs_set(self, day: int) -> set:
        """*day*'s buffered pairs as Python ``(target, source)`` tuples.

        The multiprocess ``day_pairs`` protocol reply; building tuples
        from the merged columns skips shard-set materialization.
        """
        cols = self.day_pair_columns(day)
        return set(
            zip(_combine64(cols[0], cols[1]), _combine64(cols[2], cols[3]))
        )

    def pair_days(self) -> list[int]:
        """Days with buffered pair columns, ascending (checkpoint walk)."""
        return sorted(self._pair_chunks)

    def shard_pair_columns(self, day: int) -> dict:
        """*day*'s buffered pairs grouped by shard, as uint64 columns.

        Returns ``{sid: (tgt_hi, tgt_lo, src_hi, src_lo)}`` -- sorted,
        deduplicated, straight from the buffered chunks.  The binary
        checkpoint writer emits these arrays directly, so pending pairs
        serialize without ever becoming Python tuples.
        """
        chunks = self._pair_chunks.get(day)
        if not chunks:
            return {}
        cols = [np.concatenate([c[i] for c in chunks]) for i in range(5)]
        sid_u, thi_u, tlo_u, shi_u, slo_u = _unique_rows(cols)
        starts, stops = _group_slices(sid_u)
        return {
            int(sid_u[a]): (thi_u[a:b], tlo_u[a:b], shi_u[a:b], slo_u[a:b])
            for a, b in zip(starts.tolist(), stops.tolist())
        }

    def drop_pair_days(self, threshold: int) -> None:
        """Forget buffered pair columns for days older than *threshold*.

        The columnar half of ``retain_days`` pruning; aggregates are
        unaffected (pruning never touches them).
        """
        for day in [d for d in self._pair_chunks if d < threshold]:
            del self._pair_chunks[day]
        for day in [d for d in self._merged_pairs if d < threshold]:
            del self._merged_pairs[day]
        for day in [d for d in self._appeared if d < threshold]:
            del self._appeared[day]

    # -- materialization ---------------------------------------------------

    @property
    def has_pending(self) -> bool:
        """True while any buffered column has not been folded yet."""
        return bool(self.pending or self._pair_chunks)

    def materialize(self, shards: list[ShardState]) -> None:
        """Sort-reduce every buffered column and fold into *shards*.

        All values cross into Python land via ``tolist()`` (plain ints),
        so the resulting shard state is indistinguishable -- including
        under JSON serialization -- from per-observation ingestion.
        """
        self.fold_aggregates(shards)
        self._fold_pairs(shards)

    def fold_aggregates(self, shards: list[ShardState]) -> None:
        """Fold counts, source/IID sets, and spans; keep pairs columnar.

        The bounded-memory half of materialization: ``retain_days``
        engines call this at every day close so the per-row aggregate
        buffers never outlive a day, while the pair columns stay in the
        accumulator where the columnar day-close diff (and
        :meth:`drop_pair_days` pruning) can keep operating on them.
        """
        if not self.pending:
            return
        for sid, count in enumerate(self._counts.tolist()):
            if count:
                shards[sid].n_observations += count
        self._counts = np.zeros(self.num_shards, dtype=np.int64)

        sid, src_hi, src_lo = (
            np.concatenate([chunk[i] for chunk in self._rows]) for i in range(3)
        )
        self._fold_sources(shards, sid, src_hi, src_lo)

        if self._eui:
            columns = [
                np.concatenate([chunk[i] for chunk in self._eui]) for i in range(6)
            ]
            self._fold_eui(shards, *columns)

        self._rows = []
        self._eui = []
        self.pending = 0

    def _fold_sources(self, shards, sid, src_hi, src_lo) -> None:
        sid_u, hi_u, lo_u = _unique_rows([sid, src_hi, src_lo])
        starts, stops = _group_slices(sid_u)
        combined = _combine64(hi_u, lo_u)
        for a, b in zip(starts.tolist(), stops.tolist()):
            shards[int(sid_u[a])].sources.update(combined[a:b])

    def _fold_eui(self, shards, sid, day, asn, src_hi, src_lo, tgt_hi):
        # EUI-64 source addresses and IIDs (dedup per distinct key).
        sid_u, hi_u, lo_u = _unique_rows([sid, src_hi, src_lo])
        starts, stops = _group_slices(sid_u)
        combined = _combine64(hi_u, lo_u)
        for a, b in zip(starts.tolist(), stops.tolist()):
            shards[int(sid_u[a])].eui_sources.update(combined[a:b])
        sid_u, iid_u = _unique_rows([sid, src_lo])
        starts, stops = _group_slices(sid_u)
        iid_l = iid_u.tolist()
        for a, b in zip(starts.tolist(), stops.tolist()):
            shards[int(sid_u[a])].eui_iids.update(iid_l[a:b])

        # Allocation and pool spans share one lexsort: rows ordered by
        # (sid, asn, iid, day) group for alloc on all four keys and for
        # pool on the first three.
        order = np.lexsort((day, src_lo, asn, sid))
        sid_s = sid[order]
        asn_s = asn[order]
        iid_s = src_lo[order]
        day_s = day[order]
        thi_s = tgt_hi[order]
        shi_s = src_hi[order]
        n = len(order)
        pool_changed = np.zeros(n - 1, dtype=bool)
        for c in (sid_s, asn_s, iid_s):
            pool_changed |= c[1:] != c[:-1]
        alloc_changed = pool_changed | (day_s[1:] != day_s[:-1])
        first = np.empty(n, dtype=bool)
        first[0] = True

        first[1:] = alloc_changed
        alloc_starts = np.nonzero(first)[0]
        lows = np.minimum.reduceat(thi_s, alloc_starts).tolist()
        highs = np.maximum.reduceat(thi_s, alloc_starts).tolist()
        g_sid = sid_s[alloc_starts].tolist()
        g_asn = asn_s[alloc_starts].tolist()
        g_iid = iid_s[alloc_starts].tolist()
        g_day = day_s[alloc_starts].tolist()
        for i in range(len(g_sid)):
            shard = shards[g_sid[i]]
            spans = shard.alloc_spans.get(g_asn[i])
            if spans is None:
                spans = shard.alloc_spans[g_asn[i]] = {}
            merge_span_bounds(spans, (g_iid[i], g_day[i]), lows[i], highs[i])

        first[1:] = pool_changed
        pool_starts = np.nonzero(first)[0]
        lows = np.minimum.reduceat(shi_s, pool_starts).tolist()
        highs = np.maximum.reduceat(shi_s, pool_starts).tolist()
        g_sid = sid_s[pool_starts].tolist()
        g_asn = asn_s[pool_starts].tolist()
        g_iid = iid_s[pool_starts].tolist()
        for i in range(len(g_sid)):
            shard = shards[g_sid[i]]
            spans = shard.pool_spans.get(g_asn[i])
            if spans is None:
                spans = shard.pool_spans[g_asn[i]] = {}
            merge_span_bounds(spans, g_iid[i], lows[i], highs[i])

    def _fold_pairs(self, shards) -> None:
        for day, chunks in self._pair_chunks.items():
            cols = [np.concatenate([c[i] for c in chunks]) for i in range(5)]
            sid_u, thi_u, tlo_u, shi_u, slo_u = _unique_rows(cols)
            starts, stops = _group_slices(sid_u)
            targets = _combine64(thi_u, tlo_u)
            sources = _combine64(shi_u, slo_u)
            for a, b in zip(starts.tolist(), stops.tolist()):
                shard = shards[int(sid_u[a])]
                pairs = shard.pairs_by_day.get(day)
                if pairs is None:
                    pairs = shard.pairs_by_day[day] = set()
                pairs.update(zip(targets[a:b], sources[a:b]))
        self._pair_chunks = {}
        self._merged_pairs = {}
        self._appeared = {}
