"""The streaming ingestion engine: one pass, always-current inferences.

:class:`StreamEngine` consumes :class:`ProbeObservation`s (or raw
:class:`ProbeResponse`s) as they arrive and keeps every per-AS inference
the tracker needs -- allocation sizes, rotation pools, rotation-candidate
prefixes, and last-known addresses of watched IIDs -- incrementally
up to date, without ever re-walking the observation corpus.

Ingestion is partitioned by a :class:`~repro.stream.shard.ShardRouter`:
each response updates exactly one shard's aggregates, so shards never
share mutable state and the dispatcher parallelizes trivially (the
distributed-worker backend is a ROADMAP item; the partitioning contract
is what this module fixes).

Day handling: observation days must arrive non-decreasing (scans are
time-ordered).  When a new day first appears, the previous day is
*closed*: its ``<target, EUI response>`` pair set is diffed against the
day before it -- the same :func:`diff_pairs` the batch detector uses --
and newly flagged prefixes accumulate in :attr:`live_detection`.  Call
:meth:`flush` at end of stream to close the final day.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Callable, Iterable

from repro.core.allocation import AllocationInference
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.rotation_detect import RotationDetection, diff_pairs, target_prefix48
from repro.core.rotation_pool import RotationPoolInference
from repro.core.tracker import AsProfile
from repro.net.addr import IID_BITS, IID_MASK, Prefix
from repro.net.eui64 import _FFFE, _FFFE_SHIFT
from repro.stream import columnar as columnar_kernel
from repro.stream.shard import ShardKey, ShardRouter
from repro.stream.sink import IngestSinkBase
from repro.stream.state import (
    ShardState,
    allocation_inference_from_spans,
    merge_spans,
    pool_inference_from_spans,
    prune_shard_days,
)


@dataclass(frozen=True)
class StreamConfig:
    """Engine parameters.

    ``keep_observations`` retains the full corpus in an
    :class:`ObservationStore` (needed for byte-identical batch
    equivalence and for analyses the aggregates don't cover); disable it
    for bounded-memory ingestion at scale.

    ``retain_days`` bounds how many per-day rotation pair sets stay
    memory-resident: after a day closes, anything older than the newest
    *retain_days* days is dropped.  The live day-over-day diff needs
    exactly 2 (the closing day and the accumulating one), so
    ``retain_days=2`` gives a constant-memory indefinite run; ``None``
    (the default) keeps every day for on-demand
    :meth:`StreamEngine.rotation_between` queries.
    """

    num_shards: int = 8
    shard_key: ShardKey = ShardKey.PREFIX32
    keep_observations: bool = True
    retain_days: int | None = None

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.retain_days is not None and self.retain_days < 2:
            raise ValueError("retain_days must be >= 2 (the live diff needs 2 days)")


@dataclass
class Sighting:
    """The freshest observation of a watched IID.

    ``t_seconds`` is ``None`` for a watchlist seed (an anchor supplied
    by the caller, not yet observed on the stream) -- kept JSON-clean,
    no infinity sentinels.
    """

    source: int
    day: int
    t_seconds: float | None


def update_sighting(
    watched: dict[int, Sighting], iid: int, source: int, day: int, t_seconds: float
) -> None:
    """Record an observation of a watched IID if it is the freshest.

    The one freshness rule (strictly newer ``t_seconds`` wins, so the
    first arrival keeps a tie), shared by every ingest path -- the
    engine's, its batch fast path, and the parallel dispatcher's.
    Callers gate on the watch set first; this only runs for watched
    IIDs, off the hot path.
    """
    sighting = watched.get(iid)
    if sighting is None:
        watched[iid] = Sighting(source=source, day=day, t_seconds=t_seconds)
    elif sighting.t_seconds is None or t_seconds > sighting.t_seconds:
        sighting.source = source
        sighting.day = day
        sighting.t_seconds = t_seconds


class StreamEngine(IngestSinkBase):
    """Single-pass ingestion with incrementally maintained inferences.

    An :class:`~repro.stream.sink.IngestSink`: the polymorphic
    ``ingest()`` and the legacy ``ingest_response(s)`` / ``ingest_feed``
    entrypoints come from the shared mixin; this class implements the
    three native primitives (:meth:`_ingest_observation`,
    :meth:`ingest_batch`, :meth:`ingest_columns`).
    """

    def __init__(
        self,
        config: StreamConfig | None = None,
        origin_of: Callable[[int], int | None] | None = None,
        store: ObservationStore | None = None,
        *,
        columnar: bool | None = None,
        telemetry=None,
    ) -> None:
        self.config = config or StreamConfig()
        self._origin_of = origin_of
        self.router = ShardRouter(
            self.config.num_shards, self.config.shard_key, origin_of
        )
        self.shards = [ShardState(shard_id=i) for i in range(self.config.num_shards)]
        if store is not None:
            self.store = store
        else:
            self.store = ObservationStore() if self.config.keep_observations else None
        self.live_detection = RotationDetection()  # via the property setter
        # Per-day rotation attribution for the serve layer: day ->
        # prefixes whose pairs were first flagged changed at that day's
        # close (a disappearance that merely completes a previously
        # reported appearance is not re-attributed, matching the
        # columnar emitted-mask dedup).  One small set per closed day;
        # execution state only, never checkpointed -- a restored engine
        # re-accumulates from its resume day.
        self.rotation_days: dict[int, set[Prefix]] = {}
        self._watch_iids: set[int] = set()
        self.watched: dict[int, Sighting] = {}
        self.current_day: int | None = None
        self._closed_through: int | None = None  # newest day already diffed
        self._days_seen: set[int] = set()  # days with >= 1 observation
        self.responses_ingested = 0
        # Hot-path cache: (shard, asn) per source /48.  Sound because BGP
        # routes in this model are /48 or shorter (periphery /48s are the
        # paper's unit), so origin -- and hence ASN-keyed sharding -- is
        # constant within a /48; /32-keyed sharding is coarser still.
        self._route_cache: dict[int, tuple[int, int]] = {}
        # Batch fast path: per-/48 list of pre-resolved shard targets
        # (bound set.add methods plus the per-AS span dicts), so the
        # inner loop of ingest_batch touches no attributes at all.
        self._fast_entries: dict[int, list] = {}
        # Columnar kernel (numpy sort-reduce per chunk, set/dict work
        # deferred to materialize): the default ingest_batch path when
        # numpy is importable; ``columnar=False`` forces the classic
        # fused loop, and a missing numpy falls back to it silently.
        # Execution detail only -- never part of checkpoint state.
        self._acc = columnar_kernel.make_accumulator(self.config.num_shards, columnar)
        # Dirty-tracking for incremental (delta) checkpoints: a shard's
        # epoch is bumped to the current engine epoch on every mutation;
        # a binary saver remembers the epoch it saved at and re-emits
        # only shards whose epoch moved past it.  Execution state only,
        # never serialized.
        self._epoch = 1
        self._shard_epochs = [1] * self.config.num_shards
        # Highest prune_pair_days threshold applied so far (delta
        # restores replay it on shards the delta did not re-emit).
        self._prune_floor: int | None = None
        # Per-path binary checkpointers kept by save_engine so repeated
        # saves to one path chain deltas (see repro.stream.ckptbin).
        self._ckpt_savers: dict = {}
        # Telemetry bundle (repro.obs), execution state only: None keeps
        # every hot path at a single attribute check; checkpoints never
        # see it (the fuzz harness pins the bytes identical either way).
        self._obs = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry) -> None:
        """Bind a :class:`repro.obs.Telemetry` to this engine (and its
        store, if it owns one).  Safe to call on restored/merged engines;
        instruments resolve get-or-create, so re-attaching is idempotent."""
        from repro.obs.instruments import EngineInstruments

        self._obs = EngineInstruments(telemetry)
        if self.store is not None:
            self.store.attach_telemetry(telemetry)

    # -- watchlist (live tracker pursuit) ---------------------------------

    def watch(self, iid: int, initial_address: int | None = None) -> None:
        """Start keeping the freshest sighting of *iid*.

        The passive half of tracking: if the hunted device answers any
        campaign probe after a rotation, its new address is known without
        a single extra probe.
        """
        self._watch_iids.add(iid)
        if iid not in self.watched and initial_address is not None:
            self.watched[iid] = Sighting(
                source=initial_address,
                day=self.current_day or 0,
                t_seconds=None,
            )

    def last_sighting(self, iid: int) -> Sighting | None:
        return self.watched.get(iid)

    # -- ingestion ---------------------------------------------------------

    def _ingest_observation(self, observation: ProbeObservation) -> None:
        """Fold one observation into all engine state. O(1).

        The hot per-response primitive behind the polymorphic
        ``ingest()``; campaign consumers bind this method directly."""
        day = observation.day
        if day != self.current_day:
            if self.current_day is None:
                self.current_day = day
            elif day < self.current_day:
                raise ValueError(
                    f"stream went backwards: day {day} after day {self.current_day}"
                )
            else:
                self._close_days_through(day - 1)
                self.current_day = day
            self._days_seen.add(day)
            if self._obs is not None:
                self._obs.day_opened(day)

        source = observation.source
        route = self._route_cache.get(source >> 80)
        if route is None:
            asn = (self._origin_of(source) or 0) if self._origin_of else 0
            route = (self.router.shard_of(source), asn)
            self._route_cache[source >> 80] = route
        self.shards[route[0]].observe(observation, route[1])
        self._shard_epochs[route[0]] = self._epoch
        if self.store is not None:
            self.store.add(observation)
        self.responses_ingested += 1
        if self._obs is not None:
            self._obs.responses.value += 1

        if self._watch_iids:
            iid = observation.source_iid
            if iid in self._watch_iids:
                update_sighting(self.watched, iid, source, day, observation.t_seconds)

    def ingest_batch(self, observations: Iterable[ProbeObservation]) -> int:
        """Bulk-apply a micro-batch; returns how many were ingested.

        The measured fast path: one flat loop with every per-response
        attribute lookup hoisted into the per-/48 entry cache (shard
        routing, bound ``set.add`` methods, per-AS span dicts) and store
        writes deferred to one bulk :meth:`ObservationStore.extend`.
        State-identical to calling :meth:`ingest` per observation -- the
        equivalence tests assert it -- just without the per-response
        interpreter overhead.

        ``repro.stream.fabric.protocol._apply_rows`` is this loop's
        hand-inlined twin for fabric workers; edits to the span/pair logic
        must land in both (the worker-count-invariance tests pin them
        identical).

        With the columnar kernel active (numpy importable and
        ``columnar`` not ``False``), batches route through the
        sort-reduce path instead -- state-identical again, several-fold
        faster (see ``BENCH_stream.json``'s ``columnar_ingest``).
        """
        if self._acc is not None:
            return self._ingest_batch_columnar(observations)
        shards = self.shards
        entries = self._fast_entries
        route_cache = self._route_cache
        origin = self._origin_of
        shard_of = self.router.shard_of
        watch = self._watch_iids
        watched = self.watched
        store = self.store
        obs_bundle = self._obs
        keep: list[ProbeObservation] | None = [] if store is not None else None
        days_seen = self._days_seen
        current_day = self.current_day
        count = 0
        counts: dict[int, int] = {}
        try:
            for observation in observations:
                day = observation.day
                if day != current_day:
                    if current_day is None:
                        pass
                    elif day < current_day:
                        raise ValueError(
                            f"stream went backwards: day {day} after day {current_day}"
                        )
                    else:
                        # self.current_day still holds the old day here,
                        # exactly as in the per-observation path.
                        self._close_days_through(day - 1)
                    current_day = day
                    self.current_day = day
                    days_seen.add(day)
                    if obs_bundle is not None:
                        obs_bundle.day_opened(day)
                source = observation.source
                net48 = source >> 80
                entry = entries.get(net48)
                if entry is None:
                    route = route_cache.get(net48)
                    if route is None:
                        asn = (origin(source) or 0) if origin else 0
                        route = route_cache[net48] = (shard_of(source), asn)
                    shard = shards[route[0]]
                    # Span dicts start as None: they are created on the
                    # first EUI-64 response, matching ShardState.observe.
                    entry = entries[net48] = [
                        route[0],
                        shard.sources.add,
                        shard.eui_sources.add,
                        shard.eui_iids.add,
                        None,
                        None,
                        shard.pairs_by_day,
                        shard,
                        route[1],
                    ]
                count += 1
                sid = entry[0]
                counts[sid] = counts.get(sid, 0) + 1
                entry[1](source)
                if keep is not None:
                    keep.append(observation)
                iid = source & IID_MASK
                if (iid >> _FFFE_SHIFT) & 0xFFFF == _FFFE:  # is_eui64_iid
                    entry[2](source)
                    entry[3](iid)
                    target = observation.target
                    alloc = entry[4]
                    if alloc is None:
                        shard = entry[7]
                        asn = entry[8]
                        alloc = shard.alloc_spans.get(asn)
                        if alloc is None:
                            alloc = shard.alloc_spans[asn] = {}
                        entry[4] = alloc
                        pool = shard.pool_spans.get(asn)
                        if pool is None:
                            pool = shard.pool_spans[asn] = {}
                        entry[5] = pool
                    else:
                        pool = entry[5]
                    t64 = target >> IID_BITS
                    span = alloc.get((iid, day))
                    if span is None:
                        alloc[(iid, day)] = [t64, t64]
                    elif t64 < span[0]:
                        span[0] = t64
                    elif t64 > span[1]:
                        span[1] = t64
                    s64 = source >> IID_BITS
                    span = pool.get(iid)
                    if span is None:
                        pool[iid] = [s64, s64]
                    elif s64 < span[0]:
                        span[0] = s64
                    elif s64 > span[1]:
                        span[1] = s64
                    pairs = entry[6].get(day)
                    if pairs is None:
                        pairs = entry[6][day] = set()
                    pairs.add((target, source))
                if watch and iid in watch:
                    update_sighting(watched, iid, source, day, observation.t_seconds)
        finally:
            self.responses_ingested += count
            if obs_bundle is not None:
                obs_bundle.observe_batch(count)
            epoch = self._epoch
            for sid, shard_count in counts.items():
                shards[sid].n_observations += shard_count
                self._shard_epochs[sid] = epoch
            if keep:
                store.extend(keep)
        return count

    def _route_of(self, source: int) -> tuple[int, int]:
        """(shard, origin AS) for a source, memoized per covering /48."""
        route = self._route_cache.get(source >> 80)
        if route is None:
            asn = (self._origin_of(source) or 0) if self._origin_of else 0
            route = self._route_cache[source >> 80] = (
                self.router.shard_of(source),
                asn,
            )
        return route

    # How many observations the columnar path converts to columns at a
    # time.  Bounds transient memory on lazy feeds (the classic loop was
    # O(1); this is O(chunk)) while staying large enough to amortize the
    # per-chunk numpy fixed costs.
    _COLUMNAR_CHUNK = 16384

    def _ingest_batch_columnar(self, observations: Iterable[ProbeObservation]) -> int:
        """The columnar twin of :meth:`ingest_batch`.

        The input is consumed in bounded chunks (lazy feeds are never
        materialized whole).  Per day-run of each chunk: build uint64
        columns (one Python pass over the observations), resolve routes
        per unique /48, and hand the columns to the accumulator; Python
        sets and span dicts are only touched when a day closes or state
        is read (:meth:`materialize`).  Day progression, watchlist
        sightings, and store writes keep the scalar path's exact
        semantics -- including the rows-before-error accounting on a
        backwards day (rows before the offending one are ingested, then
        the error raises).
        """
        iterator = iter(observations)
        total = 0
        while True:
            obs = list(islice(iterator, self._COLUMNAR_CHUNK))
            if not obs:
                return total
            total += self._ingest_columns(obs)

    def _ingest_columns(self, obs: list[ProbeObservation]) -> int:
        """Ingest one materialized chunk through the columnar kernel."""
        segments, day_column, error = columnar_kernel.day_segments(
            [o.day for o in obs], self.current_day
        )
        store = self.store
        keep: list[ProbeObservation] | None = [] if store is not None else None
        count = 0
        try:
            if segments:
                valid = obs if len(day_column) == len(obs) else obs[: len(day_column)]
                columns = columnar_kernel.observation_columns(
                    valid, day_column, self._route_of
                )
            for start, stop, day in segments:
                if day != self.current_day:
                    if self.current_day is not None:
                        self._close_days_through(day - 1)
                    self.current_day = day
                    self._days_seen.add(day)
                    if self._obs is not None:
                        self._obs.day_opened(day)
                self._acc.absorb(*(c[start:stop] for c in columns))
                if self._watch_iids:
                    src_lo = columns[4][start:stop]
                    for i in columnar_kernel.watch_hits(src_lo, self._watch_iids):
                        o = obs[start + i]
                        update_sighting(
                            self.watched,
                            o.source & IID_MASK,
                            o.source,
                            day,
                            o.t_seconds,
                        )
                count += stop - start
                if keep is not None:
                    keep.extend(obs[start:stop])
        finally:
            self.responses_ingested += count
            if self._obs is not None:
                self._obs.observe_batch(count)
            if keep:
                store.extend(keep)
        if error is not None:
            raise ValueError(error)
        return count

    def ingest_columns(self, batch) -> int:
        """Ingest a :class:`~repro.store.batch.ColumnBatch` directly.

        The redesign's native hand-off: the batch already holds flat
        day/hi/lo columns (from ``Zmap6`` column emission, a store's
        ``scan_columns``, or a resumed corpus), so the kernel arrays
        build with one C-level conversion per column instead of the
        per-observation attribute walks ``ingest_batch`` pays.  State-
        identical to ingesting ``batch.observations()`` -- the store
        fuzz harness pins it -- including mid-batch backwards-day
        accounting.  Without the numpy kernel the batch degrades to the
        classic per-observation loop, lazily.
        """
        if not len(batch):
            return 0
        if self._acc is None:
            return self.ingest_batch(iter(batch))
        chunk = self._COLUMNAR_CHUNK
        if len(batch) <= chunk:
            return self._ingest_column_batch(batch)
        total = 0
        for start in range(0, len(batch), chunk):
            total += self._ingest_column_batch(batch.slice(start, start + chunk))
        return total

    def _ingest_column_batch(self, batch) -> int:
        """One bounded :class:`ColumnBatch` through the columnar kernel.

        The :meth:`_ingest_columns` twin minus the object-to-column
        build; store writes stay columnar too
        (:meth:`~repro.core.records.ObservationStore.extend_columns`),
        so a column-native store appends with zero row materialization.
        """
        segments, day_column, error = columnar_kernel.day_segments(
            batch.day, self.current_day
        )
        store = self.store
        valid = batch
        count = 0
        try:
            if segments:
                if len(day_column) != len(batch):
                    valid = batch.slice(0, len(day_column))
                columns = columnar_kernel.column_batch_arrays(
                    valid, day_column, self._route_of
                )
            for start, stop, day in segments:
                if day != self.current_day:
                    if self.current_day is not None:
                        self._close_days_through(day - 1)
                    self.current_day = day
                    self._days_seen.add(day)
                    if self._obs is not None:
                        self._obs.day_opened(day)
                self._acc.absorb(*(c[start:stop] for c in columns))
                if self._watch_iids:
                    src_lo = columns[4][start:stop]
                    for i in columnar_kernel.watch_hits(src_lo, self._watch_iids):
                        row = start + i
                        update_sighting(
                            self.watched,
                            valid.src_lo[row],
                            (valid.src_hi[row] << 64) | valid.src_lo[row],
                            day,
                            valid.t_seconds[row],
                        )
                count += stop - start
        finally:
            self.responses_ingested += count
            if self._obs is not None:
                self._obs.observe_batch(count)
            if count and store is not None:
                store.extend_columns(
                    valid if count == len(valid) else valid.slice(0, count)
                )
        if error is not None:
            raise ValueError(error)
        return count

    def materialize(self) -> None:
        """Fold any pending columnar buffers into the shard states.

        Cheap no-op without the kernel or with nothing buffered; every
        state-reading path calls it, so callers never see a shard view
        that lags the ingested stream.
        """
        acc = self._acc
        if acc is not None and acc.has_pending:
            obs = self._obs
            if obs is None:
                acc.materialize(self.shards)
            else:
                with obs.materialize_seconds.time():
                    acc.materialize(self.shards)

    # ingest_response / ingest_responses / ingest_feed and the
    # polymorphic ingest() are inherited from IngestSinkBase.

    # -- live rotation detection ------------------------------------------

    @property
    def live_detection(self) -> RotationDetection:
        """The cumulative rotation detection, folded on first read.

        Columnar day closes defer the changed-pair tuple and prefix
        construction (:func:`~repro.stream.columnar.diff_pair_columns`);
        reading the detection folds everything pending -- deduplicated
        across closes -- so observers always see the complete state.
        """
        if self._pending_changed:
            columnar_kernel.fold_changed(self._pending_changed, self._live_detection)
            self._pending_changed = []
        return self._live_detection

    @live_detection.setter
    def live_detection(self, detection: RotationDetection) -> None:
        self._live_detection = detection
        self._pending_changed: list = []

    def _shards_have_pairs(self, *days: int) -> bool:
        """True if any shard holds a materialized pair set for any *days*.

        The columnar close path is only sound while the accumulator owns
        every pair of the two days being diffed; per-observation ingest
        or a mid-stream materialization (checkpoint, snapshot) moves
        pairs into the shards, after which closes must diff full merged
        sets again.
        """
        for shard in self.shards:
            pairs_by_day = shard.pairs_by_day
            for day in days:
                if day in pairs_by_day:
                    return True
        return False

    def _diff_days(self, previous: int, closed: int) -> None:
        """Diff two scanned days into the live detection.

        Columnar engines diff pair columns directly (no Python sets) as
        long as the accumulator still owns both days' pairs; otherwise
        -- and always for classic engines -- this is the shared
        :func:`diff_pairs` over merged shard sets.
        """
        acc = self._acc
        if acc is not None and not self._shards_have_pairs(previous, closed):
            changed, net48s, stable = acc.diff_days(previous, closed)
            self._pending_changed.append((changed, net48s))
            self.rotation_days[closed] = columnar_kernel.net48_prefixes(net48s)
            self._live_detection.stable_pairs += stable
            if self._obs is not None:
                self._obs.day_closed(closed, len(changed[0]), stable)
            return
        detection = diff_pairs(self._pairs_on(previous), self._pairs_on(closed))
        # Attribute only pairs not already in the cumulative set, so the
        # per-day sets agree with the columnar close path's emitted-mask
        # dedup (computed before the cumulative |= below).
        fresh = detection.changed_pairs - self.live_detection.changed_pairs
        self.rotation_days[closed] = {target_prefix48(t) for t, _ in fresh}
        self._live_detection.changed_pairs |= detection.changed_pairs
        self._live_detection.rotating_prefixes |= detection.rotating_prefixes
        self._live_detection.stable_pairs += detection.stable_pairs
        if self._obs is not None:
            self._obs.day_closed(
                closed, len(detection.changed_pairs), detection.stable_pairs
            )

    def _pairs_on(self, day: int) -> set[tuple[int, int]]:
        self.materialize()
        pairs: set[tuple[int, int]] = set()
        for shard in self.shards:
            pairs |= shard.pairs_by_day.get(day, set())
        return pairs

    def _close_days_through(self, day: int) -> None:
        """Diff every newly closed day against its predecessor.

        A pair of consecutive days is diffed iff *both* were scanned
        (had at least one observation): a scanned day with zero EUI-64
        pairs legitimately diffs as "everything disappeared", matching
        the batch detector, while an unscanned gap day yields no
        snapshot to compare against.  Shard-local diffs would be
        equivalent (the pair -> shard mapping is content-stable), but
        the merged diff reuses ``diff_pairs`` verbatim, keeping one
        source of truth with the batch detector.
        """
        start = (
            self._closed_through + 1
            if self._closed_through is not None
            else self.current_day
        )
        days_seen = self._days_seen
        for closed in range(start, day + 1):
            previous = closed - 1
            if previous in days_seen and closed in days_seen:
                self._diff_days(previous, closed)
            self._closed_through = closed
        retain = self.config.retain_days
        if retain is not None and self._closed_through is not None:
            if self._acc is not None:
                # Bounded-memory mode: per-row aggregate buffers must not
                # outlive a day.  Pairs stay columnar (pruned below), so
                # the columnar close diff keeps its fast path.
                self._acc.fold_aggregates(self.shards)
            self.prune_pair_days(self._closed_through - retain + 2)

    def flush(self) -> RotationDetection:
        """Close the in-progress day and return the cumulative detection."""
        if self.current_day is not None and self._closed_through != self.current_day:
            self._close_days_through(self.current_day)
        return self.live_detection

    def prune_pair_days(self, threshold: int) -> None:
        """Drop per-day pair sets for days older than *threshold*.

        The bounded-memory half of ``retain_days``; a pruned day reads
        as empty to :meth:`rotation_between`, while :attr:`live_detection`
        already holds its contribution.
        """
        if self._acc is not None:
            self._acc.drop_pair_days(threshold)
        prune_shard_days(self.shards, threshold)
        if self._prune_floor is None or threshold > self._prune_floor:
            self._prune_floor = threshold

    def rotation_between(self, day_a: int, day_b: int) -> RotationDetection:
        """On-demand diff of two retained days (batch-identical).

        With ``retain_days`` set, days older than the retention window
        have been dropped and diff as empty snapshots.
        """
        return diff_pairs(self._pairs_on(day_a), self._pairs_on(day_b))

    # -- merged-shard queries ----------------------------------------------

    def _merged_alloc_spans(self, asn: int) -> dict[tuple[int, int], list[int]]:
        self.materialize()
        merged: dict[tuple[int, int], list[int]] = {}
        for shard in self.shards:
            spans = shard.alloc_spans.get(asn)
            if spans:
                merge_spans(merged, spans)
        return merged

    def _merged_pool_spans(self, asn: int) -> dict[int, list[int]]:
        self.materialize()
        merged: dict[int, list[int]] = {}
        for shard in self.shards:
            spans = shard.pool_spans.get(asn)
            if spans:
                merge_spans(merged, spans)
        return merged

    def asns(self) -> list[int]:
        """Every origin AS with at least one EUI-64 observation."""
        self.materialize()
        seen: set[int] = set()
        for shard in self.shards:
            seen.update(shard.pool_spans)
        return sorted(seen)

    def allocation_inference(
        self, asn: int, day: int | None = None
    ) -> AllocationInference:
        """Algorithm 1, as of now, from aggregates alone."""
        return allocation_inference_from_spans(asn, self._merged_alloc_spans(asn), day)

    def allocation_inferences(
        self, day: int | None = None
    ) -> dict[int, AllocationInference]:
        inferences = {}
        for asn in self.asns():
            if asn == 0:
                continue
            try:
                inferences[asn] = self.allocation_inference(asn, day)
            except ValueError:
                continue
        return inferences

    def pool_inference(self, asn: int) -> RotationPoolInference:
        """Algorithm 2, as of now, from aggregates alone."""
        return pool_inference_from_spans(asn, self._merged_pool_spans(asn))

    def pool_inferences(self) -> dict[int, RotationPoolInference]:
        inferences = {}
        for asn in self.asns():
            if asn == 0:
                continue
            try:
                inferences[asn] = self.pool_inference(asn)
            except ValueError:
                continue
        return inferences

    def as_profiles(self, default_allocation_plen: int = 56) -> dict[int, AsProfile]:
        """Live tracker knowledge: the streaming analogue of
        :attr:`ExperimentContext.as_profiles`."""
        profiles: dict[int, AsProfile] = {}
        allocations = self.allocation_inferences()
        for asn, pool in self.pool_inferences().items():
            allocation = allocations.get(asn)
            allocation_plen = (
                allocation.inferred_plen if allocation else default_allocation_plen
            )
            profiles[asn] = AsProfile(
                asn=asn,
                allocation_plen=allocation_plen,
                pool_plen=min(pool.inferred_plen, allocation_plen),
            )
        return profiles

    # -- summary -----------------------------------------------------------

    def unique_sources(self) -> int:
        self.materialize()
        return sum(len(s.sources) for s in self.shards)

    def unique_eui64_sources(self) -> int:
        self.materialize()
        return sum(len(s.eui_sources) for s in self.shards)

    def eui64_iids(self) -> set[int]:
        self.materialize()
        iids: set[int] = set()
        for shard in self.shards:
            iids |= shard.eui_iids
        return iids

    def summary(self) -> dict[str, int]:
        """Counters aligned with :meth:`CampaignResult.summary` keys."""
        return {
            "responses": self.responses_ingested,
            "unique_addresses": self.unique_sources(),
            "unique_eui64_addresses": self.unique_eui64_sources(),
            "unique_eui64_iids": len(self.eui64_iids()),
            "rotating_48s": len(self.live_detection.rotating_prefixes),
        }
