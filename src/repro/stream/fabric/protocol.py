"""The fabric wire protocol: message tags and the worker-side core.

The dispatcher/worker conversation is a handful of tagged tuples --
the same tuples the pipe era sent over ``multiprocessing``
connections, now transport-agnostic:

==============  =======================================  ==================
Request         Payload                                  Reply
==============  =======================================  ==================
``hello``       ``(proto, pid)``                         ``welcome`` +
                                                         worker config
                                                         (socket only)
``rows``        flat ``(day, target, source, asn)``      *(none)*
``cols``        uint64 column arrays                     *(none)*
``day_pairs``   ``day``                                  ``pairs`` + flat
                                                         pair columns
``prune``       ``keep_floor`` day                       *(none)*
``ping``        sync token                               ``pong`` + token
``hb``          sender timestamp                         ``hb_pong`` + it
``hb_push``     *(none; worker-initiated liveness        *(none)*
                beat, sent from a thread decoupled
                from the serve loop)*
``state``       --                                       ``state`` + shards
``stop``        --                                       *(none; worker
                                                         exits)*
==============  =======================================  ==================

On the socket transport every connection starts with a mutual
HMAC-SHA256 challenge-response over the shared authkey
(:mod:`~repro.stream.fabric.framing`) *before* ``hello``; replay and
impersonation protection live there, in raw-bytes frames, not in the
pickled conversation above.

Anything that goes wrong worker-side is reported as an ``("error",
message)`` frame, which the dispatcher re-raises as
``RuntimeError("stream worker failed: ...")`` -- the pipe-era contract,
unchanged.

:class:`WorkerCore` is the transport-independent worker: it owns the
shard aggregates plus the columnar accumulator and implements every
request above, so the local pipe worker, the remote socket worker, and
in-process test workers all run the exact same fold logic.
Determinism note: the core is a pure function of the message sequence
it receives for the shards it owns -- the property that makes
requeue-to-survivor journal replay and the serial == pipes == sockets
byte-identity pin possible at all.

``day_pairs`` replies ship flat *pair columns* (four parallel uint64
lists: target hi/lo, source hi/lo), not pickled Python sets -- the
last pipe-era wart, fixed here.  The dispatcher rebuilds the set with
:func:`pairs_from_columns` and diffs as before.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.net.addr import IID_BITS, IID_MASK
from repro.net.eui64 import _FFFE, _FFFE_SHIFT
from repro.stream import columnar as columnar_kernel
from repro.stream.shard import shard_index
from repro.stream.sink import IngestSinkBase
from repro.stream.state import ShardState, prune_shard_days

PROTO_VERSION = 1

_MASK64 = (1 << 64) - 1


class FabricError(RuntimeError):
    """A fabric-level failure: handshake, framing, or protocol breach."""


class WorkerLost(FabricError):
    """A worker died or its connection broke mid-conversation.

    ``channel_index`` names the transport channel (dispatch slot) that
    failed so the dispatcher can requeue its journal onto a survivor.
    """

    def __init__(self, channel_index: int, reason: str = ""):
        detail = f"worker channel {channel_index} lost"
        if reason:
            detail += f": {reason}"
        super().__init__(detail)
        self.channel_index = channel_index


def _apply_rows(
    rows: list[tuple],
    shards: list[ShardState],
    entries: dict,
    counts: dict[int, int],
    asn_keyed: bool,
    num_shards: int,
) -> None:
    """Fold one chunk of flat rows into the worker's shard aggregates.

    This is ``StreamEngine.ingest_batch``'s fused inner loop minus the
    concerns the dispatcher keeps (day progression, watchlist, store):
    workers only ever see rows for shards they own, and the origin AS
    arrives pre-resolved in the row.  The two loops are deliberately
    hand-inlined twins -- a shared per-row helper would reintroduce the
    call overhead they exist to remove -- and any edit to the span/pair
    logic must land in both; the worker-count-invariance tests pin them
    byte-identical on every shared corpus.
    """
    for day, target, source, asn in rows:
        net48 = source >> 80
        entry = entries.get(net48)
        if entry is None:
            sid = shard_index(asn if asn_keyed else source >> 96, num_shards)
            shard = shards[sid]
            entry = entries[net48] = [
                sid,
                shard.sources.add,
                shard.eui_sources.add,
                shard.eui_iids.add,
                None,
                None,
                shard.pairs_by_day,
                shard,
                asn,
            ]
        sid = entry[0]
        counts[sid] = counts.get(sid, 0) + 1
        entry[1](source)
        iid = source & IID_MASK
        if (iid >> _FFFE_SHIFT) & 0xFFFF != _FFFE:  # not an EUI-64 IID
            continue
        entry[2](source)
        entry[3](iid)
        alloc = entry[4]
        if alloc is None:
            shard = entry[7]
            row_asn = entry[8]
            alloc = shard.alloc_spans.get(row_asn)
            if alloc is None:
                alloc = shard.alloc_spans[row_asn] = {}
            entry[4] = alloc
            pool = shard.pool_spans.get(row_asn)
            if pool is None:
                pool = shard.pool_spans[row_asn] = {}
            entry[5] = pool
        else:
            pool = entry[5]
        t64 = target >> IID_BITS
        span = alloc.get((iid, day))
        if span is None:
            alloc[(iid, day)] = [t64, t64]
        elif t64 < span[0]:
            span[0] = t64
        elif t64 > span[1]:
            span[1] = t64
        s64 = source >> IID_BITS
        span = pool.get(iid)
        if span is None:
            pool[iid] = [s64, s64]
        elif s64 < span[0]:
            span[0] = s64
        elif s64 > span[1]:
            span[1] = s64
        pairs = entry[6].get(day)
        if pairs is None:
            pairs = entry[6][day] = set()
        pairs.add((target, source))


def pairs_from_columns(columns) -> set[tuple[int, int]]:
    """Rebuild a ``{(target, source)}`` pair set from flat columns.

    Inverse of :meth:`WorkerCore.day_pair_columns`: zips the four
    parallel hi/lo lists back into 128-bit address tuples.  Duplicates
    between a worker's shard-set and columnar legs collapse here.
    """
    t_hi, t_lo, s_hi, s_lo = columns
    return {
        ((int(th) << 64) | int(tl), (int(sh) << 64) | int(sl))
        for th, tl, sh, sl in zip(t_hi, t_lo, s_hi, s_lo)
    }


class WorkerCore(IngestSinkBase):
    """Transport-independent worker state machine.

    Owns the shard aggregates and the optional columnar accumulator;
    every transport (local pipe process, remote socket worker,
    in-process test thread) wraps one of these in a message loop.
    :meth:`handle` is the single dispatch point, so a message means
    exactly the same thing over a pipe, a socket, or a direct call.

    Also an :class:`~repro.stream.sink.IngestSink`: local tooling can
    feed observations straight into a core (hash-keyed sharding only
    -- ASN routing needs the dispatcher's resolver).
    """

    __slots__ = ("shards", "entries", "counts", "acc", "asn_keyed", "num_shards")

    def __init__(
        self, num_shards: int, asn_keyed: bool, columnar: bool | None = None
    ) -> None:
        self.shards = [ShardState(shard_id=i) for i in range(num_shards)]
        self.entries: dict[int, list] = {}
        self.counts: dict[int, int] = {}
        self.acc = columnar_kernel.make_accumulator(num_shards, columnar)
        self.asn_keyed = asn_keyed
        self.num_shards = num_shards

    # -- wire-facing operations -------------------------------------------

    def apply_rows(self, rows: list[tuple]) -> None:
        """Fold a chunk of flat ``(day, target, source, asn)`` rows."""
        if self.acc is not None:
            self.acc.absorb(
                *columnar_kernel.row_columns(rows, self.asn_keyed, self.num_shards)
            )
        else:
            _apply_rows(
                rows, self.shards, self.entries, self.counts,
                self.asn_keyed, self.num_shards,
            )

    def apply_cols(self, columns) -> None:
        """Fold dispatched uint64 column arrays (see ``ingest_columns``)."""
        if self.acc is not None:
            columnar_kernel.absorb_worker_columns(
                self.acc, columns, self.asn_keyed, self.num_shards
            )
        else:
            _apply_rows(
                columnar_kernel.worker_columns_to_rows(columns),
                self.shards, self.entries, self.counts,
                self.asn_keyed, self.num_shards,
            )

    def day_pair_columns(self, day: int) -> tuple[list, list, list, list]:
        """*day*'s pairs as flat hi/lo columns -- the ``day_pairs`` reply.

        Plain int lists (never numpy arrays) so the payload crosses a
        numpy/no-numpy host boundary unchanged; the shard-set and
        columnar-backlog legs may overlap, and the dispatcher's set
        rebuild deduplicates.
        """
        t_hi: list[int] = []
        t_lo: list[int] = []
        s_hi: list[int] = []
        s_lo: list[int] = []
        for shard in self.shards:
            day_pairs = shard.pairs_by_day.get(day)
            if day_pairs:
                for target, source in day_pairs:
                    t_hi.append(target >> 64)
                    t_lo.append(target & _MASK64)
                    s_hi.append(source >> 64)
                    s_lo.append(source & _MASK64)
        if self.acc is not None and self.acc.has_pairs(day):
            for out, col in zip(
                (t_hi, t_lo, s_hi, s_lo), self.acc.day_pair_columns(day)
            ):
                out.extend(int(v) for v in col)
        return (t_hi, t_lo, s_hi, s_lo)

    def prune(self, keep_floor: int) -> None:
        """Forget pair days below *keep_floor*.  Idempotent, so journal
        replay onto a survivor (which may have pruned already) is safe."""
        if self.acc is not None:
            self.acc.fold_aggregates(self.shards)
            self.acc.drop_pair_days(keep_floor)
        prune_shard_days(self.shards, keep_floor)

    def state(self) -> list[ShardState]:
        """Materialize and return the shard aggregates (``state`` reply).

        Safe to call repeatedly -- snapshots keep workers running -- and
        the counts assignment is idempotent across calls.
        """
        if self.acc is not None:
            self.acc.materialize(self.shards)
        for sid, count in self.counts.items():
            self.shards[sid].n_observations = count
        return self.shards

    # -- IngestSink primitives (direct local use) -------------------------

    def _ingest_observation(self, observation) -> None:
        self.ingest_batch((observation,))

    def ingest_batch(self, observations: Iterable) -> int:
        if self.asn_keyed:
            raise FabricError(
                "an ASN-sharded WorkerCore needs pre-routed rows "
                "(the dispatcher resolves origins); use apply_rows"
            )
        rows = [(o.day, o.target, o.source, 0) for o in observations]
        self.apply_rows(rows)
        return len(rows)

    def ingest_columns(self, batch) -> int:
        return self.ingest_batch(iter(batch))

    # -- message dispatch -------------------------------------------------

    def handle(self, message: tuple):
        """Apply one request; return the reply tuple or ``None``."""
        tag = message[0]
        if tag == "rows":
            self.apply_rows(message[1])
            return None
        if tag == "cols":
            self.apply_cols(message[1])
            return None
        if tag == "day_pairs":
            return ("pairs", self.day_pair_columns(message[1]))
        if tag == "prune":
            self.prune(message[1])
            return None
        if tag == "ping":
            return ("pong", message[1])
        if tag == "hb":
            return ("hb_pong", message[1])
        if tag == "state":
            return ("state", self.state())
        raise FabricError(f"unknown message tag {tag!r}")


def serve(
    core: WorkerCore,
    recv: Callable[[], tuple],
    send: Callable[[tuple], None],
) -> None:
    """Run a worker message loop over arbitrary recv/send callables.

    Returns on ``stop`` or a closed connection; any other failure is
    reported back as an ``("error", ...)`` frame before exiting, which
    the dispatcher surfaces as ``RuntimeError("stream worker failed")``.
    """
    while True:
        try:
            message = recv()
        except (EOFError, ConnectionError, OSError, KeyboardInterrupt):
            return
        if message[0] == "stop":
            return
        try:
            reply = core.handle(message)
        except KeyboardInterrupt:
            return
        except Exception as exc:  # report, then die: core state is suspect
            try:
                send(("error", f"{type(exc).__name__}: {exc}"))
            except Exception:
                pass
            return
        if reply is not None:
            try:
                send(reply)
            except (EOFError, ConnectionError, OSError):
                return


__all__ = [
    "PROTO_VERSION",
    "FabricError",
    "WorkerCore",
    "WorkerLost",
    "pairs_from_columns",
    "serve",
]
