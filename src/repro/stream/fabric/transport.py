"""Transports: how the dispatcher reaches its workers.

A transport owns worker *placement* -- process spawn, connection
lifecycle, liveness -- and hands the dispatcher a list of *channels*,
one per worker, each with the same tiny surface::

    channel.send(message)   # enqueue/deliver one protocol tuple
    channel.recv()          # next non-heartbeat reply (blocking)
    channel.alive           # False once the worker is gone
    channel.mark_dead(why)  # declare it gone; unblocks any recv

Failures surface as :class:`~repro.stream.fabric.protocol.WorkerLost`
carrying the channel index; what happens next is the transport's
*policy* -- ``"fail"`` (raise; the pipe default, preserving the
pre-fabric contract), ``"requeue"`` (the dispatcher replays the lost
worker's journal onto a survivor), or ``"abort"`` (raise cleanly; the
last committed checkpoint on disk stays resumable).

Two implementations:

* :class:`PipeTransport` -- the original ``multiprocessing`` pipe
  workers, forked locally.  Default, zero behavior change.
* :class:`SocketTransport` (alias :data:`FabricServer`) -- a TCP
  master.  Workers connect from anywhere (same box, other hosts),
  prove the shared authkey through a mutual HMAC challenge-response
  (:func:`~repro.stream.fabric.framing.authenticate_master`; nothing
  is ever unpickled from an unauthenticated connection), complete a
  hello/welcome handshake that carries the engine configuration, and
  speak length-prefixed CRC-checked frames
  (:mod:`~repro.stream.fabric.framing`).  Each channel runs a writer
  thread (dispatch is asynchronous: the ingest loop never blocks on
  socket writes or pickling, so scan I/O and worker round-trips
  overlap) and a reader thread (replies and heartbeats drain
  continuously).  Liveness is worker-push: every worker beats from a
  dedicated thread, decoupled from its serve loop, so a worker deep in
  apply backlog still reads as alive; the master's monitor thread only
  *measures* (RTT pings) and declares a worker dead once no frame of
  any kind has arrived for the configured timeout, which closes the
  socket and wakes any blocked dispatcher read -- the no-hang
  guarantee.

Spawn modes for the socket master: ``None`` waits for externally
launched workers (``python -m repro.stream.fabric.worker
tcp://host:port``); ``"process"`` launches local worker subprocesses;
``"thread"`` runs in-process worker threads over real sockets (tests,
single-box smoke runs); a callable receives ``(address, index)`` and
does whatever it wants (custom launchers).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import secrets
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from urllib.parse import parse_qs, urlsplit

from repro import config
from repro.stream.fabric import framing
from repro.stream.fabric.protocol import (
    PROTO_VERSION,
    FabricError,
    WorkerCore,
    WorkerLost,
    serve,
)

_LOST = object()  # inbox sentinel: the channel died; wake blocked readers


# -- local pipe transport --------------------------------------------------


def _pipe_worker_main(conn, num_shards: int, asn_keyed: bool, columnar) -> None:
    core = WorkerCore(num_shards, asn_keyed, columnar)
    try:
        serve(core, conn.recv, conn.send)
    finally:
        conn.close()


class PipeChannel:
    """A duplex ``multiprocessing`` pipe to one forked worker."""

    __slots__ = ("index", "conn", "process", "alive", "dead_reason")

    def __init__(self, index: int, conn, process) -> None:
        self.index = index
        self.conn = conn
        self.process = process
        self.alive = True
        self.dead_reason = ""

    @property
    def pid(self):
        return self.process.pid

    def send(self, message) -> None:
        if not self.alive:
            raise WorkerLost(self.index, self.dead_reason)
        try:
            self.conn.send(message)
        except (OSError, EOFError, ValueError) as exc:
            self.mark_dead(str(exc) or type(exc).__name__)
            raise WorkerLost(self.index, self.dead_reason) from exc

    def recv(self):
        if not self.alive:
            raise WorkerLost(self.index, self.dead_reason)
        try:
            return self.conn.recv()
        except (OSError, EOFError) as exc:
            self.mark_dead(str(exc) or type(exc).__name__)
            raise WorkerLost(self.index, self.dead_reason) from exc

    def mark_dead(self, reason: str) -> None:
        if self.alive:
            self.alive = False
            self.dead_reason = reason
        try:
            self.conn.close()
        except OSError:
            pass

    def close(self, flush: bool = False) -> None:
        self.alive = False
        try:
            self.conn.close()
        except OSError:
            pass


class PipeTransport:
    """Local ``multiprocessing`` pipe workers -- the default transport.

    Policy is ``"fail"``: a lost pipe worker raises immediately, the
    behavior parallel engines have always had.  (Local forks don't die
    for environmental reasons; if one does, something is wrong enough
    that replaying onto its siblings in the same failure domain helps
    nobody.)
    """

    policy = "fail"

    def __init__(self) -> None:
        self.processes: list = []
        self.channels: list[PipeChannel] = []

    def start(
        self, num_workers: int, *, num_shards: int, asn_keyed: bool, columnar
    ) -> list[PipeChannel]:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        for index in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_pipe_worker_main,
                args=(child_conn, num_shards, asn_keyed, columnar),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.processes.append(process)
            self.channels.append(PipeChannel(index, parent_conn, process))
        return self.channels

    def attach_telemetry(self, telemetry, num_workers: int) -> None:
        pass  # pipe workers carry no fabric-level instruments

    def close(self, graceful: bool = False) -> None:
        for channel in self.channels:
            channel.close()
        for process in self.processes:
            if graceful:
                process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self.channels = []


# -- socket transport ------------------------------------------------------


def _set_nodelay(sock) -> None:
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass


class SocketChannel:
    """One connected worker socket, serviced by two daemon threads.

    The *writer* drains a bounded outbox -- ``send()`` enqueues the raw
    tuple and returns, so pickling and socket writes happen off the
    dispatcher's ingest loop (the async overlap) and a slow worker
    exerts backpressure through the queue bound rather than stalling
    everyone.  The *reader* blocks on the socket forever: replies land
    in an inbox for ``recv()``, heartbeat pongs are consumed in-line
    (updating ``last_heard`` and the RTT instrument), and any framing
    or connection failure marks the channel dead -- which closes the
    socket and pushes a sentinel through the inbox, so a dispatcher
    blocked in ``recv()`` always wakes with :class:`WorkerLost` instead
    of hanging.
    """

    def __init__(
        self,
        index: int,
        sock,
        *,
        pid: int | None = None,
        max_frame: int,
        outbox_frames: int = 64,
        on_beat=None,
    ) -> None:
        self.index = index
        self.sock = sock
        self.pid = pid
        self.alive = True
        self.dead_reason = ""
        self.last_heard = time.monotonic()
        self.on_beat = on_beat
        self._max_frame = max_frame
        self._last_beat_sent = 0.0
        self._inbox: queue.Queue = queue.Queue()
        self._outbox: queue.Queue = queue.Queue(maxsize=outbox_frames)
        self._lock = threading.Lock()
        self._writer = threading.Thread(
            target=self._write_loop, name=f"fabric-w{index}-writer", daemon=True
        )
        self._reader = threading.Thread(
            target=self._read_loop, name=f"fabric-w{index}-reader", daemon=True
        )
        self._writer.start()
        self._reader.start()

    # -- threads ----------------------------------------------------------

    def _write_loop(self) -> None:
        while True:
            message = self._outbox.get()
            if message is None:
                return
            try:
                framing.send_frame(self.sock, framing.encode(message))
            except OSError as exc:
                self.mark_dead(f"send failed: {exc}")
                return
            except Exception as exc:
                # e.g. an unpicklable object in a message: the writer
                # must not die silently with ``alive`` still True, or
                # send() would spin forever once the outbox fills.
                self.mark_dead(f"writer failed: {type(exc).__name__}: {exc}")
                return

    def _read_loop(self) -> None:
        try:
            while True:
                frame = framing.decode(framing.recv_frame(self.sock, self._max_frame))
                self.last_heard = time.monotonic()
                if frame[0] == "hb_push":
                    continue  # unsolicited worker beat: liveness only
                if frame[0] == "hb_pong":
                    if self.on_beat is not None:
                        self.on_beat(self.index, time.monotonic() - frame[1])
                    continue
                self._inbox.put(frame)
        except EOFError:
            self.mark_dead("connection closed")
        except framing.FrameError as exc:
            self.mark_dead(str(exc))
        except OSError as exc:
            self.mark_dead(str(exc) or type(exc).__name__)

    # -- dispatcher surface -----------------------------------------------

    def send(self, message) -> None:
        """Enqueue one message for the writer; backpressure-bounded."""
        while True:
            if not self.alive:
                raise WorkerLost(self.index, self.dead_reason)
            try:
                self._outbox.put(message, timeout=0.2)
                return
            except queue.Full:
                continue

    def recv(self):
        """Next reply frame; raises :class:`WorkerLost` once dead."""
        while True:
            frame = self._inbox.get()
            if frame is _LOST:
                self._inbox.put(_LOST)  # keep later recv() calls awake too
                raise WorkerLost(self.index, self.dead_reason)
            return frame

    def service(self, now: float, interval: float, timeout: float) -> None:
        """One monitor tick: RTT ping if idle, declare dead if silent.

        Silence means *no frame of any kind* for *timeout* seconds.
        Workers push unsolicited beats from a thread decoupled from
        their serve loop, so a healthy worker chewing through a deep
        apply backlog keeps ``last_heard`` fresh -- only a worker whose
        beat thread stopped (process gone, host gone) goes silent.  The
        master->worker ``hb`` ping exists purely to measure round-trip
        time; skipping it on a full outbox costs an RTT sample, never
        liveness.
        """
        if not self.alive:
            return
        if now - self.last_heard > timeout:
            self.mark_dead(f"no heartbeat in {timeout:g}s")
            return
        if now - self._last_beat_sent >= interval:
            self._last_beat_sent = now
            try:
                self._outbox.put_nowait(("hb", time.monotonic()))
            except queue.Full:
                pass  # RTT sample skipped; liveness rides worker beats

    def mark_dead(self, reason: str) -> None:
        with self._lock:
            if not self.alive and self.dead_reason:
                return
            self.alive = False
            self.dead_reason = reason or "worker lost"
        try:
            self.sock.close()
        except OSError:
            pass
        try:
            self._outbox.put_nowait(None)
        except queue.Full:
            pass
        self._inbox.put(_LOST)

    def close(self, flush: bool = False) -> None:
        if flush and self.alive:
            try:
                self._outbox.put(None, timeout=2)
            except queue.Full:
                pass
            self._writer.join(timeout=5)
        self.mark_dead("closed")

    @property
    def outbox_depth(self) -> int:
        return self._outbox.qsize()


def _parse_address(address: str) -> tuple[str, int]:
    parts = urlsplit(address if "://" in address else f"tcp://{address}")
    if parts.scheme not in ("tcp", ""):
        raise FabricError(f"unsupported fabric scheme {parts.scheme!r}")
    if parts.hostname is None or parts.port is None:
        raise FabricError(f"fabric address needs host:port, got {address!r}")
    return parts.hostname, parts.port


class SocketTransport:
    """TCP master for socket workers (the :data:`FabricServer`).

    Binds its listener at construction, so :attr:`address` is known --
    and advertisable to remote workers -- before the engine starts.
    ``start()`` launches workers per *spawn*, accepts until every
    worker has authenticated against :attr:`authkey` and completed the
    hello/welcome handshake (or the connect timeout lapses), then runs
    a monitor thread; a worker silent past the heartbeat timeout
    (workers push beats from a dedicated thread, so silence means
    gone, not busy) is declared dead, which the dispatcher observes as
    :class:`WorkerLost` and resolves per *policy* (``"requeue"``
    default, or ``"abort"``).

    *authkey* is the shared handshake secret (``REPRO_FABRIC_AUTHKEY``
    when omitted).  If neither is set the master generates a random
    key: self-spawned workers (``spawn="thread"``/``"process"``)
    receive it automatically, while externally launched workers must
    be given :attr:`authkey` (via the env var on their box) to be
    admitted.
    """

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        *,
        policy: str = "requeue",
        spawn=None,
        heartbeat: float | None = None,
        heartbeat_timeout: float | None = None,
        connect_timeout: float | None = None,
        max_frame: int | None = None,
        authkey: str | None = None,
        journal_limit: int | None = None,
    ) -> None:
        if policy not in ("requeue", "abort"):
            raise ValueError(f"unknown fabric policy {policy!r}")
        settings = config.current(
            fabric_heartbeat_seconds=heartbeat,
            fabric_heartbeat_timeout=heartbeat_timeout,
            fabric_connect_timeout=connect_timeout,
            fabric_max_frame_bytes=max_frame,
            fabric_authkey=authkey,
            fabric_journal_limit_rows=journal_limit,
        )
        self.policy = policy
        self.spawn = spawn
        self.heartbeat = settings.fabric_heartbeat_seconds
        self.heartbeat_timeout = settings.fabric_heartbeat_timeout
        self.connect_timeout = settings.fabric_connect_timeout
        self.max_frame = settings.fabric_max_frame_bytes
        self.authkey = settings.fabric_authkey or secrets.token_hex(16)
        self.journal_limit = settings.fabric_journal_limit_rows
        host, port = _parse_address(address)
        family = socket.AF_INET6 if ":" in host else socket.AF_INET
        self._listener = socket.create_server((host, port), family=family, backlog=16)
        self._host, self._port = self._listener.getsockname()[:2]
        self.channels: list[SocketChannel] = []
        self.processes: list = []
        self.threads: list[threading.Thread] = []
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._obs = None
        self._telemetry = None

    @staticmethod
    def _format(host: str, port: int) -> str:
        return f"tcp://[{host}]:{port}" if ":" in host else f"tcp://{host}:{port}"

    @property
    def address(self) -> str:
        """The bound master endpoint, ``tcp://host:port``."""
        return self._format(self._host, self._port)

    @property
    def connect_address(self) -> str:
        """The endpoint locally spawned workers dial (wildcard-safe)."""
        if self._host == "0.0.0.0":
            return self._format("127.0.0.1", self._port)
        if self._host == "::":
            return self._format("::1", self._port)
        return self._format(self._host, self._port)

    def attach_telemetry(self, telemetry, num_workers: int) -> None:
        from repro.obs.instruments import FabricInstruments

        self._obs = FabricInstruments(telemetry, num_workers)
        for channel in self.channels:
            channel.on_beat = self._obs.heartbeat

    # -- worker launch + handshake ----------------------------------------

    def _spawn_workers(self, num_workers: int) -> None:
        if self.spawn is None:
            return
        from repro.stream.fabric.worker import run_worker

        address = self.connect_address
        for index in range(num_workers):
            if self.spawn == "thread":
                thread = threading.Thread(
                    target=run_worker,
                    args=(address,),
                    kwargs={"authkey": self.authkey},
                    name=f"fabric-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self.threads.append(thread)
            elif self.spawn == "process":
                src_root = os.path.dirname(
                    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
                )
                env = dict(os.environ)
                existing = env.get("PYTHONPATH")
                env["PYTHONPATH"] = (
                    src_root + os.pathsep + existing if existing else src_root
                )
                env[config.ENV_FABRIC_AUTHKEY] = self.authkey
                self.processes.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro.stream.fabric.worker",
                            address,
                        ],
                        env=env,
                    )
                )
            elif callable(self.spawn):
                self.spawn(address, index)
            else:
                raise ValueError(f"unknown spawn mode {self.spawn!r}")

    def start(
        self, num_workers: int, *, num_shards: int, asn_keyed: bool, columnar
    ) -> list[SocketChannel]:
        self._spawn_workers(num_workers)
        deadline = time.monotonic() + self.connect_timeout
        welcome_config = {
            "num_shards": num_shards,
            "asn_keyed": asn_keyed,
            "columnar": columnar,
            "max_frame": self.max_frame,
            # Workers push unsolicited beats at this cadence from a
            # thread decoupled from their serve loop (liveness must
            # not queue behind the apply backlog).
            "heartbeat": self.heartbeat,
        }
        on_beat = self._obs.heartbeat if self._obs is not None else None
        for index in range(num_workers):
            channel = self._accept_worker(index, deadline, welcome_config)
            channel.on_beat = on_beat
            self.channels.append(channel)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fabric-monitor", daemon=True
        )
        self._monitor.start()
        return self.channels

    def _accept_worker(self, index: int, deadline: float, welcome_config):
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise FabricError(
                    f"timed out after {self.connect_timeout:g}s waiting for "
                    f"worker {index} to connect and say hello"
                )
            self._listener.settimeout(remaining)
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError as exc:
                self.close()
                raise FabricError(f"fabric listener failed: {exc}") from exc
            _set_nodelay(sock)
            sock.settimeout(max(deadline - time.monotonic(), 0.001))
            try:
                # Mutual authkey proof first -- nothing off this
                # connection is unpickled until it succeeds
                # (AuthenticationError is a FrameError: imposters drop
                # exactly like garbage connections).
                framing.authenticate_master(sock, self.authkey)
                hello = framing.decode(framing.recv_frame(sock, self.max_frame))
            except (socket.timeout, framing.FrameError, EOFError, OSError):
                # Not a worker (wrong key, garbage, or a worker that
                # never said hello): drop the connection and keep
                # waiting out the deadline.
                sock.close()
                continue
            if hello[0] != "hello":
                sock.close()
                continue
            if hello[1] != PROTO_VERSION:
                sock.close()
                self.close()
                raise FabricError(
                    f"worker speaks fabric protocol {hello[1]}, "
                    f"master speaks {PROTO_VERSION}"
                )
            pid = hello[2] if len(hello) > 2 else None
            try:
                framing.send_frame(
                    sock, framing.encode(("welcome", index, welcome_config))
                )
            except OSError:
                sock.close()
                continue
            sock.settimeout(None)
            return SocketChannel(index, sock, pid=pid, max_frame=self.max_frame)

    # -- liveness ----------------------------------------------------------

    def _monitor_loop(self) -> None:
        tick = min(self.heartbeat, 0.2) / 2
        while not self._stop.wait(tick):
            now = time.monotonic()
            for channel in self.channels:
                was_alive = channel.alive
                channel.service(now, self.heartbeat, self.heartbeat_timeout)
                if was_alive and not channel.alive and self._obs is not None:
                    self._obs.worker_lost(channel.index)
                if self._obs is not None and channel.alive:
                    self._obs.outbox(channel.index, channel.outbox_depth)

    def note_requeued(self, messages: int) -> None:
        if self._obs is not None:
            self._obs.requeued(messages)

    def close(self, graceful: bool = False) -> None:
        self._stop.set()
        for channel in self.channels:
            channel.close(flush=graceful)
        try:
            self._listener.close()
        except OSError:
            pass
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        for thread in self.threads:
            thread.join(timeout=5)
        for process in self.processes:
            if graceful and process.poll() is None:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    pass
            if process.poll() is None:
                process.kill()
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    pass


FabricServer = SocketTransport


def parse_worker_spec(spec: str):
    """Build a transport from a worker spec string.

    ``tcp://host:port[?workers=N&policy=requeue|abort&spawn=thread|
    process&journal_limit=ROWS]`` returns ``(SocketTransport, N or
    None)``: bind the master at ``host:port`` and (by default) wait
    for externally launched socket workers.  ``local[://N]`` or a bare
    integer string returns ``(PipeTransport, N or None)`` -- the
    classic local forks.  The worker count rides in the spec so one
    string can configure a whole deployment
    (`StreamingCampaign(workers=spec)`).  The authkey deliberately
    does *not* ride in the spec (specs land in config files and logs);
    it comes from ``REPRO_FABRIC_AUTHKEY`` or the ``SocketTransport``
    constructor.
    """
    spec = spec.strip()
    if spec.isdigit():
        return PipeTransport(), int(spec)
    parts = urlsplit(spec if "://" in spec else f"tcp://{spec}")
    if parts.scheme == "local":
        workers = parts.netloc or parts.path.strip("/")
        return PipeTransport(), int(workers) if workers else None
    if parts.scheme != "tcp":
        raise FabricError(f"unsupported worker spec {spec!r}")
    query = parse_qs(parts.query)

    def _one(key):
        values = query.get(key)
        return values[-1] if values else None

    workers = _one("workers")
    spawn = _one("spawn")
    heartbeat = _one("heartbeat")
    heartbeat_timeout = _one("heartbeat_timeout")
    connect_timeout = _one("connect_timeout")
    journal_limit = _one("journal_limit")
    transport = SocketTransport(
        f"tcp://{parts.hostname}:{parts.port or 0}",
        policy=_one("policy") or "requeue",
        spawn=spawn,
        heartbeat=float(heartbeat) if heartbeat else None,
        heartbeat_timeout=float(heartbeat_timeout) if heartbeat_timeout else None,
        connect_timeout=float(connect_timeout) if connect_timeout else None,
        journal_limit=int(journal_limit) if journal_limit is not None else None,
    )
    return transport, int(workers) if workers else None


__all__ = [
    "FabricServer",
    "PipeChannel",
    "PipeTransport",
    "SocketChannel",
    "SocketTransport",
    "parse_worker_spec",
]
