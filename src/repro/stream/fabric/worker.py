"""The fabric worker entrypoint: ``python -m repro.stream.fabric.worker``.

A worker is stateless at launch: it dials the master, proves the
shared authkey (``REPRO_FABRIC_AUTHKEY`` -- set it to the same value
on the master box; the handshake is mutual, so the worker also
verifies the master before decoding anything), says hello, and the
welcome frame tells it everything else -- its worker index, the shard
count, the sharding mode, the kernel selection, and the heartbeat
cadence.  That is what makes multi-host deployment one command per
box::

    REPRO_FABRIC_AUTHKEY=... python -m repro.stream.fabric.worker tcp://master-host:9999

Launch as many as the master expects (``SocketTransport`` /
``workers=N`` in the spec); order of arrival assigns indices.  The
worker exits 0 on an orderly ``stop`` or master disconnect, 1 on a
handshake failure.

While serving, a dedicated thread pushes unsolicited heartbeat frames
at the welcome-configured cadence.  Liveness deliberately does not
ride the serve loop: a worker busy applying a deep row backlog must
keep beating, or the master would mistake busy for dead.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading

from repro import config
from repro.stream.fabric import framing
from repro.stream.fabric.protocol import (
    PROTO_VERSION,
    FabricError,
    WorkerCore,
    serve,
)
from repro.stream.fabric.transport import _parse_address, _set_nodelay


def run_worker(
    address: str,
    *,
    connect_timeout: float | None = None,
    max_frame: int | None = None,
    authkey: str | None = None,
) -> None:
    """Connect to the master at *address*, handshake, and serve.

    Blocks until the master sends ``stop`` or the connection closes.
    Raises :class:`FabricError` if no authkey is configured, the
    master is unreachable, or the handshake (authentication included)
    fails within the connect timeout.
    """
    settings = config.current(
        fabric_connect_timeout=connect_timeout,
        fabric_max_frame_bytes=max_frame,
        fabric_authkey=authkey,
    )
    if not settings.fabric_authkey:
        raise FabricError(
            "no fabric authkey configured: set "
            f"{config.ENV_FABRIC_AUTHKEY} to the master's key "
            "(or pass authkey=)"
        )
    host, port = _parse_address(address)
    try:
        sock = socket.create_connection(
            (host, port), timeout=settings.fabric_connect_timeout
        )
    except OSError as exc:
        raise FabricError(f"cannot reach fabric master at {address}: {exc}") from exc
    _set_nodelay(sock)
    try:
        try:
            framing.authenticate_worker(sock, settings.fabric_authkey)
            framing.send_frame(
                sock, framing.encode(("hello", PROTO_VERSION, os.getpid()))
            )
            welcome = framing.decode(
                framing.recv_frame(sock, settings.fabric_max_frame_bytes)
            )
        except (socket.timeout, framing.FrameError, EOFError, OSError) as exc:
            raise FabricError(f"fabric handshake failed: {exc}") from exc
        if welcome[0] != "welcome":
            raise FabricError(f"expected welcome, got {welcome[0]!r}")
        worker_config = welcome[2]
        frame_limit = worker_config.get("max_frame", settings.fabric_max_frame_bytes)
        sock.settimeout(None)
        core = WorkerCore(
            worker_config["num_shards"],
            worker_config["asn_keyed"],
            worker_config["columnar"],
        )
        # The serve loop and the heartbeat thread share the socket for
        # writes; the lock keeps their frames from interleaving.
        send_lock = threading.Lock()

        def send(message) -> None:
            with send_lock:
                framing.send_frame(sock, framing.encode(message))

        stop_beats = threading.Event()
        interval = worker_config.get("heartbeat")
        if interval:
            # Unsolicited liveness beats, decoupled from the serve
            # loop: a worker deep in apply backlog keeps beating, so
            # the master never mistakes busy for dead.
            def beat() -> None:
                while not stop_beats.wait(interval):
                    try:
                        send(("hb_push",))
                    except Exception:
                        return  # connection gone; the serve loop exits too

            threading.Thread(
                target=beat, name="fabric-heartbeat", daemon=True
            ).start()
        try:
            serve(
                core,
                lambda: framing.decode(framing.recv_frame(sock, frame_limit)),
                send,
            )
        finally:
            stop_beats.set()
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream.fabric.worker",
        description="Run one fabric worker against a campaign master.",
    )
    parser.add_argument("address", help="master endpoint, e.g. tcp://10.0.0.1:9999")
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="seconds to wait for the master (default: REPRO_FABRIC_CONNECT_TIMEOUT)",
    )
    parser.add_argument(
        "--authkey",
        default=None,
        help="shared handshake secret (default: REPRO_FABRIC_AUTHKEY)",
    )
    args = parser.parse_args(argv)
    try:
        run_worker(
            args.address,
            connect_timeout=args.connect_timeout,
            authkey=args.authkey,
        )
    except FabricError as exc:
        print(f"fabric worker: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
