"""``repro.stream.fabric``: the distributed campaign fabric.

The :class:`~repro.stream.parallel.ParallelStreamEngine` dispatcher
speaks a small tagged-tuple protocol (:mod:`.protocol`) to its workers
through a :class:`Transport`: local ``multiprocessing`` pipes
(:class:`.PipeTransport`, the default -- zero behavior change from the
pipe era) or length-prefixed CRC-checked TCP frames
(:class:`.SocketTransport` / :data:`.FabricServer` + the
``python -m repro.stream.fabric.worker`` entrypoint) so workers run on
other hosts.  Whatever the transport and worker count, merged
checkpoints are byte-identical to a serial engine fed the same stream
-- the fuzz harness pins ``serial == pipes == sockets``.
"""

from repro.stream.fabric.framing import FrameError
from repro.stream.fabric.protocol import (
    PROTO_VERSION,
    FabricError,
    WorkerCore,
    WorkerLost,
    pairs_from_columns,
    serve,
)
from repro.stream.fabric.transport import (
    FabricServer,
    PipeTransport,
    SocketTransport,
    parse_worker_spec,
)


def __getattr__(name):
    # Lazy: ``python -m repro.stream.fabric.worker`` would otherwise
    # find the module pre-imported by this package and warn.
    if name == "run_worker":
        from repro.stream.fabric.worker import run_worker

        return run_worker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PROTO_VERSION",
    "FabricError",
    "FabricServer",
    "FrameError",
    "PipeTransport",
    "SocketTransport",
    "WorkerCore",
    "WorkerLost",
    "pairs_from_columns",
    "parse_worker_spec",
    "run_worker",
    "serve",
]
