"""Length-prefixed, CRC-checked message framing for fabric sockets.

One frame = a 12-byte header (4-byte magic, little-endian uint32
payload length, little-endian CRC-32 of the payload) followed by the
pickled payload.  The magic catches cross-protocol connections (a
browser, a stray health checker) before any payload is read; the
length bound rejects absurd allocations before they happen; the CRC
catches truncated or corrupted frames -- any of the three raises
:class:`FrameError`, and a connection that produced one is unusable
(framing offers no resynchronization point mid-stream, by design: the
master treats the worker as lost and requeues).

Payloads are pickled: every fabric message is flat Python scalars,
lists of ints, or numpy uint64 arrays, all of which pickle compactly
and survive a numpy/no-numpy boundary when the sender converts arrays
to lists first (see ``protocol.day_pair_columns``).  The fabric only
ever connects trusted cooperating processes (the master spawns or
invites its workers), matching ``multiprocessing``'s own pickle-over-
pipe trust model that the pipe transport already relies on.
"""

from __future__ import annotations

import pickle
import struct
import zlib

MAGIC = b"RFB1"

_HEADER = struct.Struct("<4sII")
HEADER_BYTES = _HEADER.size


class FrameError(RuntimeError):
    """A malformed frame: bad magic, oversize length, truncation, or
    CRC mismatch.  The connection cannot be trusted past this point."""


def encode(message) -> bytes:
    """Serialize one fabric message to a frame payload."""
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes):
    """Deserialize a frame payload back into a message."""
    return pickle.loads(payload)


def send_frame(sock, payload: bytes) -> None:
    """Write one frame (header + payload) to a connected socket."""
    header = _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload))
    sock.sendall(header + payload)


def _recv_exact(sock, n: int, what: str, *, eof_ok: bool = False) -> bytes:
    """Read exactly *n* bytes, or raise.

    A clean close at a frame boundary (*eof_ok*, zero bytes read)
    raises ``EOFError`` -- the orderly end-of-stream every serve loop
    treats as shutdown; a close anywhere else is a truncated frame.
    """
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if eof_ok and not buf:
                raise EOFError("connection closed")
            raise FrameError(f"truncated {what}: got {len(buf)} of {n} bytes")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock, max_bytes: int) -> bytes:
    """Read one frame's payload, validating magic, length, and CRC.

    Raises ``EOFError`` on a clean close between frames,
    :class:`FrameError` on anything malformed, and whatever the socket
    raises (timeout, reset) on transport failure.
    """
    header = _recv_exact(sock, HEADER_BYTES, "frame header", eof_ok=True)
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds limit {max_bytes}")
    payload = _recv_exact(sock, length, "frame payload")
    if zlib.crc32(payload) != crc:
        raise FrameError("frame CRC mismatch")
    return payload


__all__ = [
    "FrameError",
    "HEADER_BYTES",
    "MAGIC",
    "decode",
    "encode",
    "recv_frame",
    "send_frame",
]
