"""Length-prefixed, CRC-checked message framing for fabric sockets.

One frame = a 12-byte header (4-byte magic, little-endian uint32
payload length, little-endian CRC-32 of the payload) followed by the
payload.  The magic catches cross-protocol connections (a browser, a
stray health checker) before any payload is read; the length bound
rejects absurd allocations before they happen; the CRC catches
truncated or corrupted frames -- any of the three raises
:class:`FrameError`, and a connection that produced one is unusable
(framing offers no resynchronization point mid-stream, by design: the
master treats the worker as lost and requeues).

Message payloads are pickled: every fabric message is flat Python
scalars, lists of ints, or numpy uint64 arrays, all of which pickle
compactly and survive a numpy/no-numpy boundary when the sender
converts arrays to lists first (see ``protocol.day_pair_columns``).
Unpickling attacker-controlled bytes is arbitrary code execution, and
-- unlike ``multiprocessing`` pipes, which are fd-inherited and never
network-reachable -- a TCP listener is dialable by anything that can
route to it.  So no fabric frame is ever *unpickled* before the peer
proves knowledge of the shared authkey: every connection starts with a
mutual HMAC-SHA256 challenge-response handshake
(:func:`authenticate_master` / :func:`authenticate_worker`, the same
scheme as ``multiprocessing.connection``) whose frames are raw bytes,
never pickled, and are capped at :data:`AUTH_FRAME_MAX` so an
unauthenticated peer cannot force a large allocation either.
"""

from __future__ import annotations

import hmac
import pickle
import secrets
import struct
import zlib

MAGIC = b"RFB1"

_HEADER = struct.Struct("<4sII")
HEADER_BYTES = _HEADER.size

# Auth preamble: raw (never pickled) payloads, tiny on purpose.
_CHALLENGE_PREFIX = b"#RFB-CHALLENGE#"
_DIGEST_PREFIX = b"#RFB-DIGEST#"
_NONCE_BYTES = 32
AUTH_FRAME_MAX = 256


class FrameError(RuntimeError):
    """A malformed frame: bad magic, oversize length, truncation, or
    CRC mismatch.  The connection cannot be trusted past this point."""


class AuthenticationError(FrameError):
    """The peer failed the authkey challenge (or spoke out of turn).

    A :class:`FrameError` subclass on purpose: every accept/handshake
    path that drops malformed connections drops imposters the same way.
    """


def _digest(authkey: str, nonce: bytes) -> bytes:
    return hmac.new(authkey.encode(), nonce, "sha256").digest()


def deliver_challenge(sock, authkey: str) -> None:
    """Challenge the peer to prove it holds *authkey*.

    Sends a fresh random nonce and verifies the returned HMAC-SHA256
    digest in constant time; a wrong or malformed answer raises
    :class:`AuthenticationError`.
    """
    nonce = secrets.token_bytes(_NONCE_BYTES)
    send_frame(sock, _CHALLENGE_PREFIX + nonce)
    reply = recv_frame(sock, AUTH_FRAME_MAX)
    if not reply.startswith(_DIGEST_PREFIX) or not hmac.compare_digest(
        reply[len(_DIGEST_PREFIX) :], _digest(authkey, nonce)
    ):
        raise AuthenticationError("fabric authentication failed: digest mismatch")


def answer_challenge(sock, authkey: str) -> None:
    """Answer the peer's challenge with our *authkey* digest."""
    frame = recv_frame(sock, AUTH_FRAME_MAX)
    if not frame.startswith(_CHALLENGE_PREFIX):
        raise AuthenticationError("expected an authentication challenge")
    send_frame(
        sock, _DIGEST_PREFIX + _digest(authkey, frame[len(_CHALLENGE_PREFIX) :])
    )


def authenticate_master(sock, authkey: str) -> None:
    """Master side of the mutual handshake: challenge, then answer.

    Runs on every accepted connection *before* any pickled frame is
    decoded; an imposter is rejected while the conversation is still
    raw bytes.
    """
    deliver_challenge(sock, authkey)
    answer_challenge(sock, authkey)


def authenticate_worker(sock, authkey: str) -> None:
    """Worker side of the mutual handshake: answer, then challenge.

    The return leg is what stops a worker from trusting a pickled
    ``welcome`` off an unauthenticated listener: the master must prove
    the authkey too before the worker decodes anything.
    """
    answer_challenge(sock, authkey)
    deliver_challenge(sock, authkey)


def encode(message) -> bytes:
    """Serialize one fabric message to a frame payload."""
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes):
    """Deserialize a frame payload back into a message."""
    return pickle.loads(payload)


def send_frame(sock, payload: bytes) -> None:
    """Write one frame (header + payload) to a connected socket.

    Two ``sendall`` calls, not one concatenation: checkpoint segments
    run to megabytes, and ``header + payload`` would copy the whole
    payload just to prepend 12 bytes.
    """
    sock.sendall(_HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)))
    sock.sendall(payload)


def _recv_exact(sock, n: int, what: str, *, eof_ok: bool = False) -> bytes:
    """Read exactly *n* bytes, or raise.

    A clean close at a frame boundary (*eof_ok*, zero bytes read)
    raises ``EOFError`` -- the orderly end-of-stream every serve loop
    treats as shutdown; a close anywhere else is a truncated frame.
    """
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if eof_ok and not buf:
                raise EOFError("connection closed")
            raise FrameError(f"truncated {what}: got {len(buf)} of {n} bytes")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock, max_bytes: int) -> bytes:
    """Read one frame's payload, validating magic, length, and CRC.

    Raises ``EOFError`` on a clean close between frames,
    :class:`FrameError` on anything malformed, and whatever the socket
    raises (timeout, reset) on transport failure.
    """
    header = _recv_exact(sock, HEADER_BYTES, "frame header", eof_ok=True)
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds limit {max_bytes}")
    payload = _recv_exact(sock, length, "frame payload")
    if zlib.crc32(payload) != crc:
        raise FrameError("frame CRC mismatch")
    return payload


__all__ = [
    "AUTH_FRAME_MAX",
    "AuthenticationError",
    "FrameError",
    "HEADER_BYTES",
    "MAGIC",
    "answer_challenge",
    "authenticate_master",
    "authenticate_worker",
    "decode",
    "deliver_challenge",
    "encode",
    "recv_frame",
    "send_frame",
]
