"""Binary columnar checkpoints: serialization off the hot path.

The JSON checkpoint (:mod:`repro.stream.checkpoint`) is the canonical,
diff-able format, but writing it re-sorts every aggregate into Python
list-of-lists and renders millions of 128-bit ints as decimal text --
for a long campaign the serialize step dwarfs the state update work it
interrupts.  This module keeps the *state* identical and changes only
the *encoding*: every aggregate is emitted as length-prefixed flat
little-endian 64-bit column blocks, written straight from the columnar
accumulator's arrays and the store's column buffers where available
(a near-memcpy), with a stdlib :mod:`array`/:mod:`struct` fallback --
never through sorted Python list-of-lists.

Segment layout (one file holds one *chain* of segments)::

    MAGIC "RPB1" | u32 header_len | header JSON | payload | u32 crc32

The header is compact JSON carrying scalars, the chain identity
(``base_id``/``seq``), and the block table ``[[name, dtype, count],
...]``; the payload is the named blocks concatenated in table order,
each ``count`` little-endian 8-byte elements; the CRC covers header
bytes plus payload.  A *full* segment (``seq`` 0) rewrites everything;
a *delta* segment re-emits only the shards dirtied since the previous
segment (epoch dirty-tracking on the engine) plus the store rows
appended since, chained by ``base_id`` and consecutive ``seq``.  Pair
sets only ever gain rows for days at or past the day that was current
when the previous segment was written (days arrive monotone), so a
delta carries pair blocks only for ``day >= day_floor``; days the
delta does not re-emit are dropped on restore for re-emitted shards,
and every restore replays the segment's ``prune_threshold`` so clean
shards prune identically.

:func:`read_state` walks the chain, validating magic, header, bounds,
and CRC per segment (any corruption raises :class:`CheckpointError`,
never a silent partial restore) and returns a dict shaped exactly like
:func:`repro.stream.checkpoint.engine_state` output, so the JSON
restore path rebuilds the engine -- the fuzz harness pins the restored
``engine_state`` JSON byte-identical across formats.
"""

from __future__ import annotations

import json
import os
import weakref
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path
from sys import byteorder
from time import perf_counter
from typing import TYPE_CHECKING

from repro.stream.checkpoint import FORMAT_VERSION
from repro.stream.state import ShardState, alloc_span_rows, pool_span_rows

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI leg covers this
    np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.records import ObservationStore
    from repro.stream.engine import StreamEngine

MAGIC = b"RPB1"
#: Binary container format revision (independent of the JSON
#: ``FORMAT_VERSION``, which names the *state schema* both formats share).
BINARY_FORMAT = 1

_MASK64 = (1 << 64) - 1
_BIG_ENDIAN = byteorder == "big"

#: dtype name -> (stdlib array typecode, numpy little-endian dtype).
_TYPECODES = {"u64": ("Q", "<u8"), "i64": ("q", "<i8"), "f64": ("d", "<f8")}


class CheckpointError(ValueError):
    """A binary checkpoint file that cannot be trusted or continued."""


# -- column block encoding -------------------------------------------------


def _col_bytes(col, dtype: str) -> bytes:
    """Little-endian machine bytes of a 64-bit column.

    numpy arrays and matching-typecode stdlib arrays hit the buffer
    protocol (a memcpy on little-endian hosts); anything else -- plain
    lists, generators already materialized -- pays one C-level
    ``array(typecode, col)`` conversion.  Never mutates *col*.
    """
    typecode, np_dtype = _TYPECODES[dtype]
    if np is not None and isinstance(col, np.ndarray):
        return np.ascontiguousarray(col, dtype=np_dtype).tobytes()
    if not (isinstance(col, array) and col.typecode == typecode):
        col = array(typecode, col)
    elif _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
        col = array(typecode, col)  # private copy before the swap
    if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
        col.byteswap()
    return col.tobytes()


def _decode_block(data: bytes, dtype: str) -> list:
    """Little-endian block bytes -> plain Python ints/floats.

    stdlib-only on purpose: the restore path must work (and stay fast
    enough) on the no-numpy install.
    """
    typecode, _ = _TYPECODES[dtype]
    out = array(typecode)
    out.frombytes(data)
    if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
        out.byteswap()
    return out.tolist()


def _split128(values) -> tuple[array, array]:
    """A set/iterable of 128-bit ints -> (hi, lo) uint64 columns."""
    hi = array("Q")
    lo = array("Q")
    for value in values:
        hi.append(value >> 64)
        lo.append(value & _MASK64)
    return hi, lo


class _SegmentWriter:
    """Collects named column blocks; owns the header block table."""

    def __init__(self) -> None:
        self.blocks: list[list] = []  # [name, dtype, element count]
        self.blobs: list[bytes] = []

    def add(self, name: str, dtype: str, col) -> None:
        self.add_bytes(name, dtype, _col_bytes(col, dtype))

    def add_bytes(self, name: str, dtype: str, blob: bytes) -> None:
        self.blocks.append([name, dtype, len(blob) // 8])
        self.blobs.append(blob)


def _write_segment(fh, header_bytes: bytes, blobs: list[bytes]) -> int:
    """Stream one segment to *fh*; returns its size in bytes."""
    crc = zlib.crc32(header_bytes)
    fh.write(MAGIC)
    fh.write(len(header_bytes).to_bytes(4, "little"))
    fh.write(header_bytes)
    size = len(MAGIC) + 4 + len(header_bytes) + 4
    for blob in blobs:
        crc = zlib.crc32(blob, crc)
        fh.write(blob)
        size += len(blob)
    fh.write(crc.to_bytes(4, "little"))
    return size


def _parse_segment(data: bytes, offset: int, label) -> tuple[dict, bytes, int]:
    """Validate one segment at *offset*; returns (header, payload, end).

    Magic, header JSON, payload bounds, and CRC are all checked before
    anything is returned; any mismatch raises :class:`CheckpointError`
    -- a truncated or corrupted segment must never restore partial
    state.
    """
    total = len(data)
    if total - offset < 8 or data[offset : offset + 4] != MAGIC:
        raise CheckpointError(f"{label}: bad segment magic at byte {offset}")
    header_len = int.from_bytes(data[offset + 4 : offset + 8], "little")
    header_end = offset + 8 + header_len
    if header_end > total:
        raise CheckpointError(f"{label}: truncated segment header")
    header_bytes = data[offset + 8 : header_end]
    try:
        header = json.loads(header_bytes)
        payload_len = sum(8 * count for _, _, count in header["blocks"])
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(f"{label}: corrupt segment header") from exc
    payload_end = header_end + payload_len
    if payload_end + 4 > total:
        raise CheckpointError(f"{label}: truncated segment payload")
    payload = data[header_end:payload_end]
    stored_crc = int.from_bytes(data[payload_end : payload_end + 4], "little")
    if stored_crc != zlib.crc32(payload, zlib.crc32(header_bytes)):
        raise CheckpointError(f"{label}: segment CRC mismatch at byte {offset}")
    return header, payload, payload_end + 4


def _read_segments(path) -> list[tuple[dict, bytes]]:
    """Every ``(header, payload)`` in the file, fully validated."""
    data = Path(path).read_bytes()
    segments: list[tuple[dict, bytes]] = []
    offset = 0
    while offset < len(data):
        header, payload, offset = _parse_segment(data, offset, path)
        segments.append((header, payload))
    if not segments:
        raise CheckpointError(f"{path}: empty binary checkpoint")
    return segments


@dataclass(frozen=True)
class SegmentInfo:
    """One segment's identity and byte range within a chain file."""

    kind: str  # "full" or "delta"
    base_id: str
    seq: int
    offset: int  # byte offset of the segment's magic in the file
    size: int  # segment size in bytes (magic through trailing CRC)


def chain_info(path) -> list[SegmentInfo]:
    """Per-segment chain introspection for one checkpoint file.

    Walks and fully validates the chain (per-segment framing and CRC
    plus base/seq continuity) and returns one :class:`SegmentInfo` per
    segment in file order -- the byte ranges a replication shipper
    reads raw segments from.  Raises :class:`CheckpointError` on any
    corruption or a broken chain, exactly like :func:`read_state`.
    """
    data = Path(path).read_bytes()
    infos: list[SegmentInfo] = []
    offset = 0
    base_id = None
    while offset < len(data):
        header, _payload, end = _parse_segment(data, offset, path)
        if base_id is None:
            if header["kind"] != "full" or header["seq"] != 0:
                raise CheckpointError(
                    f"{path}: chain does not start with a full segment"
                )
            base_id = header["base_id"]
        elif header["base_id"] != base_id or header["seq"] != len(infos):
            raise CheckpointError(
                f"{path}: broken segment chain at seq {header['seq']}"
                f" (expected {len(infos)} of base {base_id})"
            )
        infos.append(
            SegmentInfo(
                kind=header["kind"],
                base_id=header["base_id"],
                seq=header["seq"],
                offset=offset,
                size=end - offset,
            )
        )
        offset = end
    if not infos:
        raise CheckpointError(f"{path}: empty binary checkpoint")
    return infos


def segment_bytes(path, info: SegmentInfo) -> bytes:
    """The raw bytes of one segment, read by its chain-info byte range."""
    with open(path, "rb") as fh:
        fh.seek(info.offset)
        data = fh.read(info.size)
    if len(data) != info.size:
        raise CheckpointError(
            f"{path}: segment at byte {info.offset} truncated to"
            f" {len(data)} of {info.size} bytes"
        )
    return data


def _block_table(header: dict, payload: bytes) -> dict[str, list]:
    """Decode a segment's payload into ``{name: values}``."""
    table: dict[str, list] = {}
    offset = 0
    for name, dtype, count in header["blocks"]:
        end = offset + 8 * count
        table[name] = _decode_block(payload[offset:end], dtype)
        offset = end
    return table


# -- segment building ------------------------------------------------------


def _add_pair_blocks(writer, sid: int, day: int, pairs, acc_cols) -> None:
    """One (shard, day) pair block family: set rows then columnar rows.

    Duplicates between the two halves are harmless -- restore builds a
    set -- so pending accumulator pairs serialize without ever becoming
    Python tuples.
    """
    tgt_hi = array("Q")
    tgt_lo = array("Q")
    src_hi = array("Q")
    src_lo = array("Q")
    if pairs:
        for target, source in pairs:
            tgt_hi.append(target >> 64)
            tgt_lo.append(target & _MASK64)
            src_hi.append(source >> 64)
            src_lo.append(source & _MASK64)
    prefix = f"s{sid}.d{day}."
    names = ("thi", "tlo", "shi", "slo")
    if acc_cols is None:
        for name, col in zip(names, (tgt_hi, tgt_lo, src_hi, src_lo)):
            writer.add(prefix + name, "u64", col)
    else:
        for name, col, extra in zip(
            names, (tgt_hi, tgt_lo, src_hi, src_lo), acc_cols
        ):
            writer.add_bytes(
                prefix + name,
                "u64",
                _col_bytes(col, "u64") + _col_bytes(extra, "u64"),
            )


def _add_shard_blocks(writer, shard: ShardState, days: list[int], acc_day) -> dict:
    """Emit one shard's blocks; returns its header record."""
    sid = shard.shard_id
    hi, lo = _split128(shard.sources)
    writer.add(f"s{sid}.src.hi", "u64", hi)
    writer.add(f"s{sid}.src.lo", "u64", lo)
    hi, lo = _split128(shard.eui_sources)
    writer.add(f"s{sid}.esrc.hi", "u64", hi)
    writer.add(f"s{sid}.esrc.lo", "u64", lo)
    writer.add(f"s{sid}.iid", "u64", array("Q", shard.eui_iids))

    a_asn = array("q")
    a_iid = array("Q")
    a_day = array("q")
    a_lo = array("Q")
    a_hi = array("Q")
    for asn, iid, day, lo_, hi_ in alloc_span_rows(shard):
        a_asn.append(asn)
        a_iid.append(iid)
        a_day.append(day)
        a_lo.append(lo_)
        a_hi.append(hi_)
    writer.add(f"s{sid}.alloc.asn", "i64", a_asn)
    writer.add(f"s{sid}.alloc.iid", "u64", a_iid)
    writer.add(f"s{sid}.alloc.day", "i64", a_day)
    writer.add(f"s{sid}.alloc.lo", "u64", a_lo)
    writer.add(f"s{sid}.alloc.hi", "u64", a_hi)

    p_asn = array("q")
    p_iid = array("Q")
    p_lo = array("Q")
    p_hi = array("Q")
    for asn, iid, lo_, hi_ in pool_span_rows(shard):
        p_asn.append(asn)
        p_iid.append(iid)
        p_lo.append(lo_)
        p_hi.append(hi_)
    writer.add(f"s{sid}.pool.asn", "i64", p_asn)
    writer.add(f"s{sid}.pool.iid", "u64", p_iid)
    writer.add(f"s{sid}.pool.lo", "u64", p_lo)
    writer.add(f"s{sid}.pool.hi", "u64", p_hi)

    for day in days:
        acc_cols = acc_day(day).get(sid)
        _add_pair_blocks(
            writer, sid, day, shard.pairs_by_day.get(day), acc_cols
        )
    return {"sid": sid, "n": shard.n_observations, "days": days}


def _add_store_blocks(writer, store, start_row: int) -> dict:
    """Emit the corpus rows appended since *start_row*; returns the record.

    The store's column buffers feed the blocks directly (a memcpy on
    column-native backends).  The timestamp column preserves the
    int-vs-float identity the checkpoint byte contract requires: every
    value travels as float64, and ``store.tint`` lists the
    within-segment indices whose value was an int (restore converts
    those back).  An int that does not round-trip float64 exactly
    cannot be represented and raises rather than silently drifting.
    """
    batch = store.snapshot_columns(start_row)
    t_col = array("d")
    t_int = array("Q")
    for index, value in enumerate(batch.t_seconds):
        if isinstance(value, int):
            try:
                as_float = float(value)
            except OverflowError as exc:
                raise CheckpointError(
                    f"timestamp {value!r} does not fit float64"
                ) from exc
            if int(as_float) != value:
                raise CheckpointError(
                    f"timestamp {value!r} does not round-trip float64"
                )
            t_int.append(index)
            t_col.append(as_float)
        else:
            t_col.append(value)
    writer.add("store.day", "i64", batch.day)
    writer.add("store.t", "f64", t_col)
    writer.add("store.tint", "u64", t_int)
    writer.add("store.thi", "u64", batch.tgt_hi)
    writer.add("store.tlo", "u64", batch.tgt_lo)
    writer.add("store.shi", "u64", batch.src_hi)
    writer.add("store.slo", "u64", batch.src_lo)
    return {"rows": start_row + len(batch), "start": start_row}


def _build_segment(
    engine: "StreamEngine",
    store: "ObservationStore | None",
    progress: dict | None,
    *,
    kind: str,
    base_id: str,
    seq: int,
    day_floor: int | None,
    sids: list[int],
    store_start: int,
) -> tuple[bytes, list[bytes], dict]:
    """Serialize one segment; returns (header bytes, blobs, header dict).

    Folds the accumulator's aggregate buffers (counts, sets, spans)
    but deliberately NOT its pair columns -- those serialize straight
    from the arrays via ``shard_pair_columns``, so a mid-campaign
    checkpoint never costs the columnar day-close diff its fast path.
    """
    acc = engine._acc
    if acc is not None:
        acc.fold_aggregates(engine.shards)
    detection = engine.live_detection  # folds pending changed columns

    writer = _SegmentWriter()
    hi, lo = _split128(t for t, _ in detection.changed_pairs)
    shi, slo = _split128(s for _, s in detection.changed_pairs)
    writer.add("det.cp.thi", "u64", hi)
    writer.add("det.cp.tlo", "u64", lo)
    writer.add("det.cp.shi", "u64", shi)
    writer.add("det.cp.slo", "u64", slo)
    net_hi = array("Q")
    net_lo = array("Q")
    plen = array("q")
    for prefix in detection.rotating_prefixes:
        net_hi.append(prefix.network >> 64)
        net_lo.append(prefix.network & _MASK64)
        plen.append(prefix.plen)
    writer.add("det.rp.net_hi", "u64", net_hi)
    writer.add("det.rp.net_lo", "u64", net_lo)
    writer.add("det.rp.plen", "i64", plen)

    acc_days = acc.pair_days() if acc is not None else []
    if kind == "delta" and day_floor is not None:
        acc_days = [d for d in acc_days if d >= day_floor]
    acc_cache: dict[int, dict] = {}

    def acc_day(day: int) -> dict:
        cols = acc_cache.get(day)
        if cols is None:
            cols = acc_cache[day] = (
                acc.shard_pair_columns(day) if acc is not None else {}
            )
        return cols

    shard_records = []
    for sid in sids:
        shard = engine.shards[sid]
        days = set(shard.pairs_by_day)
        if kind == "delta" and day_floor is not None:
            days = {d for d in days if d >= day_floor}
        days.update(d for d in acc_days if sid in acc_day(d))
        shard_records.append(
            _add_shard_blocks(writer, shard, sorted(days), acc_day)
        )

    store_record = (
        _add_store_blocks(writer, store, store_start) if store is not None else None
    )

    config = engine.config
    header = {
        "format": BINARY_FORMAT,
        "kind": kind,
        "base_id": base_id,
        "seq": seq,
        "day_floor": day_floor,
        "prune_threshold": engine._prune_floor,
        "engine": {
            "config": {
                "num_shards": config.num_shards,
                "shard_key": config.shard_key.value,
                "keep_observations": config.keep_observations,
                "retain_days": config.retain_days,
            },
            "current_day": engine.current_day,
            "closed_through": engine._closed_through,
            "days_seen": sorted(engine._days_seen),
            "responses_ingested": engine.responses_ingested,
            "watch_iids": sorted(engine._watch_iids),
            "watched": sorted(
                [iid, s.source, s.day, s.t_seconds]
                for iid, s in engine.watched.items()
            ),
            "stable_pairs": detection.stable_pairs,
        },
        "shards": shard_records,
        "store": store_record,
        "progress": progress,
        "blocks": writer.blocks,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return header_bytes, writer.blobs, header


# -- the incremental saver -------------------------------------------------


@dataclass(frozen=True)
class SaveResult:
    """What one :meth:`BinaryCheckpointer.save` call wrote."""

    kind: str  # "full" or "delta"
    file_bytes: int  # checkpoint file size after the write
    segment_bytes: int  # bytes this save appended/wrote
    dirty_shards: int  # shards the segment re-emitted


class BinaryCheckpointer:
    """Writes a chain of binary segments to one checkpoint path.

    The first save (and any save that cannot safely chain -- engine
    replaced, file moved or resized underneath us, shard count changed,
    store swapped or truncated, chain at ``max_chain``) rewrites the
    file atomically with a full segment; subsequent saves of the same
    engine append delta segments holding only the dirty shards and the
    store tail.  A failed delta append truncates the file back to the
    pre-append size, so the last good chain stays loadable.
    """

    def __init__(self, path, max_chain: int = 16) -> None:
        self.path = Path(path)
        #: Segments per chain before the next save rebases with a full
        #: rewrite (bounds restore-time chain walking and file growth
        #: from re-emitted detection state).
        self.max_chain = max_chain
        self._base_id: str | None = None
        self._seq = 0
        self._engine_ref = None
        self._num_shards: int | None = None
        self._mark = 0  # engine epoch the last segment captured
        self._day_floor: int | None = None
        self._had_store = False
        self._store_rows = 0
        self._expected_size: int | None = None
        self._segments: list[SegmentInfo] = []

    @property
    def chain(self) -> tuple[SegmentInfo, ...]:
        """The segments this saver's current chain holds, in order.

        Maintained incrementally across saves (a full rewrite resets
        it), so a replication shipper reads the newest segment's byte
        range without re-scanning the file.
        """
        return tuple(self._segments)

    def _chain_ok(self, engine, store, dirty_sids) -> bool:
        path = self.path
        return (
            self._base_id is not None
            and self._seq + 1 < self.max_chain
            and path.exists()
            and path.stat().st_size == self._expected_size
            and (
                dirty_sids is not None
                or (self._engine_ref is not None and self._engine_ref() is engine)
            )
            and self._num_shards == engine.config.num_shards
            and (store is not None) == self._had_store
            and (store is None or len(store) >= self._store_rows)
        )

    def save(
        self,
        engine: "StreamEngine",
        store: "ObservationStore | None" = None,
        progress: dict | None = None,
        mode: str = "auto",
        dirty_sids=None,
        instruments=None,
    ) -> SaveResult:
        """Write one segment; returns a :class:`SaveResult`.

        *store* defaults to ``engine.store``.  *mode* ``"auto"`` picks
        delta whenever the chain is intact, ``"full"`` forces a rebase,
        ``"delta"`` raises :class:`CheckpointError` if it cannot chain.
        *dirty_sids* overrides epoch-based dirtiness -- the parallel
        campaign path, whose merged snapshot engines are fresh objects
        every save, passes the dispatcher's dirty-worker shard set.
        *instruments* is a ``CheckpointInstruments`` bundle (optional).
        """
        if store is None:
            store = engine.store
        acc = engine._acc
        if acc is not None and acc.dirty_sids:
            # Columnar dirtiness lives in the accumulator; sync it into
            # the shard epochs so every saver of this engine sees it.
            epoch = engine._epoch
            for sid in acc.dirty_sids:
                engine._shard_epochs[sid] = epoch
            acc.dirty_sids.clear()

        chain_ok = self._chain_ok(engine, store, dirty_sids)
        if mode == "full":
            kind = "full"
        elif mode == "delta":
            if not chain_ok:
                raise CheckpointError(
                    "cannot append a delta: no valid base segment to chain to"
                )
            kind = "delta"
        elif mode == "auto":
            kind = "delta" if chain_ok else "full"
        else:
            raise ValueError(f"unknown checkpoint mode: {mode!r}")

        if kind == "delta":
            base_id = self._base_id
            seq = self._seq + 1
            day_floor = self._day_floor
            store_start = self._store_rows
            if dirty_sids is not None:
                sids = sorted(set(dirty_sids))
            else:
                mark = self._mark
                sids = [
                    sid
                    for sid, epoch in enumerate(engine._shard_epochs)
                    if epoch > mark
                ]
        else:
            base_id = os.urandom(8).hex()
            seq = 0
            day_floor = None
            store_start = 0
            sids = list(range(engine.config.num_shards))

        t0 = perf_counter()
        if instruments is not None:
            with instruments.serialize_seconds.time():
                header_bytes, blobs, header = _build_segment(
                    engine,
                    store,
                    progress,
                    kind=kind,
                    base_id=base_id,
                    seq=seq,
                    day_floor=day_floor,
                    sids=sids,
                    store_start=store_start,
                )
        else:
            header_bytes, blobs, header = _build_segment(
                engine,
                store,
                progress,
                kind=kind,
                base_id=base_id,
                seq=seq,
                day_floor=day_floor,
                sids=sids,
                store_start=store_start,
            )

        path = self.path
        if kind == "full":
            tmp = path.with_name(path.name + ".tmp")
            try:
                with open(tmp, "wb") as fh:
                    segment_size = _write_segment(fh, header_bytes, blobs)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
            self._segments = [
                SegmentInfo(kind, base_id, seq, 0, segment_size)
            ]
        else:
            old_size = path.stat().st_size
            try:
                with open(path, "ab") as fh:
                    segment_size = _write_segment(fh, header_bytes, blobs)
            except BaseException:
                # A torn append would corrupt the chain; roll the file
                # back to the last good segment boundary.
                with open(path, "rb+") as fh:
                    fh.truncate(old_size)
                raise
            self._segments.append(
                SegmentInfo(kind, base_id, seq, old_size, segment_size)
            )

        self._base_id = base_id
        self._seq = seq
        self._engine_ref = weakref.ref(engine)
        self._num_shards = engine.config.num_shards
        self._mark = engine._epoch
        engine._epoch += 1
        self._day_floor = engine.current_day
        self._had_store = store is not None
        self._store_rows = header["store"]["rows"] if store is not None else 0
        file_bytes = path.stat().st_size
        self._expected_size = file_bytes

        if instruments is not None:
            instruments.written(
                path,
                file_bytes,
                engine.current_day,
                perf_counter() - t0,
                kind=kind,
                delta_bytes=segment_size if kind == "delta" else None,
                base_id=base_id,
                seq=seq,
            )
        return SaveResult(
            kind=kind,
            file_bytes=file_bytes,
            segment_bytes=segment_size,
            dirty_shards=len(sids),
        )


# -- reading ---------------------------------------------------------------


def _shard_pairs_from(table: dict, sid: int, days: list[int]) -> dict:
    return {
        day: (
            table[f"s{sid}.d{day}.thi"],
            table[f"s{sid}.d{day}.tlo"],
            table[f"s{sid}.d{day}.shi"],
            table[f"s{sid}.d{day}.slo"],
        )
        for day in days
    }


def _apply_store_segment(header: dict, table: dict, rows: list) -> None:
    record = header["store"]
    if record["start"] != len(rows):
        raise CheckpointError(
            f"store delta does not chain: segment starts at row"
            f" {record['start']}, chain holds {len(rows)}"
        )
    days = table["store.day"]
    # Both chain checks run before any row lands, so a bad segment
    # never leaves partially appended store state behind.
    if record["rows"] != record["start"] + len(days):
        raise CheckpointError(
            f"store row count mismatch: header says {record['rows']},"
            f" decoded {record['start'] + len(days)}"
        )
    t_col = table["store.t"]
    t_int = set(table["store.tint"])
    tgt_hi = table["store.thi"]
    tgt_lo = table["store.tlo"]
    src_hi = table["store.shi"]
    src_lo = table["store.slo"]
    for index in range(len(days)):
        value = t_col[index]
        if index in t_int:
            value = int(value)
        rows.append(
            [
                days[index],
                value,
                (tgt_hi[index] << 64) | tgt_lo[index],
                (src_hi[index] << 64) | src_lo[index],
            ]
        )


class ChainAssembler:
    """Incrementally merges a stream of chain segments into state.

    The consumer side of the segment stream: feed it each raw segment
    (or each pre-parsed ``(header, payload)``) in chain order and it
    maintains the same merged view :func:`read_state` builds from a
    file -- which is how a replication follower applies deltas without
    re-reading the whole chain per segment.  :meth:`state` materializes
    the checkpoint-state dict on demand.

    Validation happens strictly before mutation: framing, CRC, format,
    chain continuity, and store chaining are all checked first, so a
    rejected segment (:class:`CheckpointError`) never poisons the
    already-applied state.  With *allow_rebase* (the wire default) a
    fresh full segment -- ``seq`` 0, new ``base_id`` -- resets the
    assembler, mirroring a shipper-side rebase; file readers pass
    ``False`` so a file holding two chains fails loudly.
    """

    def __init__(
        self, *, label: str = "<segment stream>", allow_rebase: bool = True
    ) -> None:
        self._label = label
        self._allow_rebase = allow_rebase
        self.base_id: str | None = None
        self.seq: int | None = None
        self.segments_applied = 0
        self._engine_header: dict | None = None
        self._detection_table: dict | None = None
        self._shard_records: dict[int, dict] = {}
        self._rows: list | None = None
        self._progress: dict | None = None

    def apply(self, segment: bytes) -> dict:
        """Validate and merge one raw segment; returns its header."""
        header, payload, end = _parse_segment(segment, 0, self._label)
        if end != len(segment):
            raise CheckpointError(
                f"{self._label}: {len(segment) - end} trailing bytes"
                " after segment"
            )
        self.apply_parsed(header, payload)
        return header

    def apply_parsed(self, header: dict, payload: bytes) -> None:
        """Merge one already-framed segment (CRC checked by the caller)."""
        label = self._label
        if header.get("format") != BINARY_FORMAT:
            raise CheckpointError(
                f"unsupported binary checkpoint format: {header.get('format')!r}"
            )
        is_base = header["kind"] == "full" and header["seq"] == 0
        rebase = is_base and self.base_id is not None and self._allow_rebase
        if self.base_id is None:
            if not is_base:
                raise CheckpointError(
                    f"{label}: chain does not start with a full segment"
                )
        elif not rebase and (
            header["base_id"] != self.base_id or header["seq"] != self.seq + 1
        ):
            raise CheckpointError(
                f"{label}: broken segment chain at seq {header['seq']}"
                f" (expected {self.seq + 1} of base {self.base_id})"
            )
        table = _block_table(header, payload)
        if header["store"] is not None and not is_base:
            if self._rows is None:
                raise CheckpointError(
                    f"{label}: delta carries store rows but the chain has no store"
                )

        # -- commit point: everything below mutates merged state -------
        if is_base:
            self._shard_records = {}
            self._rows = [] if header["store"] is not None else None
        shard_records = self._shard_records
        day_floor = header["day_floor"]
        for record in header["shards"]:
            sid = record["sid"]
            previous = shard_records.get(sid)
            if (
                header["kind"] == "delta"
                and previous is not None
                and day_floor is not None
            ):
                pairs = {
                    day: cols
                    for day, cols in previous["pairs"].items()
                    if day < day_floor
                }
            else:
                pairs = {}
            pairs.update(_shard_pairs_from(table, sid, record["days"]))
            shard_records[sid] = {
                "n": record["n"],
                "src": (table[f"s{sid}.src.hi"], table[f"s{sid}.src.lo"]),
                "esrc": (table[f"s{sid}.esrc.hi"], table[f"s{sid}.esrc.lo"]),
                "iid": table[f"s{sid}.iid"],
                "alloc": tuple(
                    table[f"s{sid}.alloc.{c}"]
                    for c in ("asn", "iid", "day", "lo", "hi")
                ),
                "pool": tuple(
                    table[f"s{sid}.pool.{c}"] for c in ("asn", "iid", "lo", "hi")
                ),
                "pairs": pairs,
            }
        threshold = header["prune_threshold"]
        if threshold is not None:
            # Replayed on *every* shard: a delta's clean shards were
            # pruned in memory without being re-emitted.
            for record in shard_records.values():
                record["pairs"] = {
                    day: cols
                    for day, cols in record["pairs"].items()
                    if day >= threshold
                }
        if header["store"] is not None:
            _apply_store_segment(header, table, self._rows)
        self._engine_header = header["engine"]
        self._progress = header["progress"]
        self._detection_table = {name: table[name] for name in _DETECTION_BLOCKS}
        self.base_id = header["base_id"]
        self.seq = header["seq"]
        self.segments_applied += 1

    def state(self) -> dict:
        """The merged checkpoint-state dict (see :func:`read_state`).

        Builds fresh lists every call; the assembler itself is not
        consumed, so a follower can materialize after every applied
        segment.
        """
        engine_header = self._engine_header
        if engine_header is None:
            raise CheckpointError(f"{self._label}: no segments applied")
        detection_table = self._detection_table
        rows = self._rows

        shards = []
        for sid in range(engine_header["config"]["num_shards"]):
            record = self._shard_records.get(sid)
            if record is None:  # full segments emit every shard
                raise CheckpointError(
                    f"{self._label}: shard {sid} missing from chain"
                )
            src_hi, src_lo = record["src"]
            esrc_hi, esrc_lo = record["esrc"]
            shards.append(
                {
                    "shard_id": sid,
                    "n_observations": record["n"],
                    "sources": [
                        (hi << 64) | lo for hi, lo in zip(src_hi, src_lo)
                    ],
                    "eui_sources": [
                        (hi << 64) | lo for hi, lo in zip(esrc_hi, esrc_lo)
                    ],
                    "eui_iids": record["iid"],
                    "alloc": [list(row) for row in zip(*record["alloc"])],
                    "pool": [list(row) for row in zip(*record["pool"])],
                    "pairs": [
                        [
                            day,
                            [
                                [(thi << 64) | tlo, (shi << 64) | slo]
                                for thi, tlo, shi, slo in zip(*cols)
                            ],
                        ]
                        for day, cols in record["pairs"].items()
                    ],
                }
            )

        detection = {
            "changed_pairs": [
                [(thi << 64) | tlo, (shi << 64) | slo]
                for thi, tlo, shi, slo in zip(
                    *(
                        detection_table[f"det.cp.{c}"]
                        for c in ("thi", "tlo", "shi", "slo")
                    )
                )
            ],
            "stable_pairs": engine_header["stable_pairs"],
            "rotating_prefixes": [
                [(hi << 64) | lo, plen]
                for hi, lo, plen in zip(
                    detection_table["det.rp.net_hi"],
                    detection_table["det.rp.net_lo"],
                    detection_table["det.rp.plen"],
                )
            ],
        }

        engine_state = {
            "version": FORMAT_VERSION,
            "config": dict(engine_header["config"]),
            "current_day": engine_header["current_day"],
            "closed_through": engine_header["closed_through"],
            "days_seen": engine_header["days_seen"],
            "responses_ingested": engine_header["responses_ingested"],
            "watch_iids": engine_header["watch_iids"],
            "watched": engine_header["watched"],
            "detection": detection,
            "shards": shards,
            "store": rows,
        }
        if self._progress is not None:
            return {
                "version": FORMAT_VERSION,
                "progress": self._progress,
                "engine": {**engine_state, "store": None},
                "store": rows if rows is not None else [],
            }
        return engine_state


def read_state(path) -> dict:
    """Read a binary checkpoint chain back into checkpoint-state form.

    Returns the same dict shape :func:`~repro.stream.checkpoint.engine_state`
    emits (or, when the chain carries campaign progress, the campaign
    checkpoint shape), ready for
    :func:`~repro.stream.checkpoint.restore_engine` /
    ``StreamingCampaign.resume``.  List ordering inside the dict is not
    normative -- restore builds sets and dicts from it -- so no sorting
    happens here.
    """
    assembler = ChainAssembler(label=str(path), allow_rebase=False)
    for header, payload in _read_segments(path):
        assembler.apply_parsed(header, payload)
    return assembler.state()


_DETECTION_BLOCKS = (
    "det.cp.thi",
    "det.cp.tlo",
    "det.cp.shi",
    "det.cp.slo",
    "det.rp.net_hi",
    "det.rp.net_lo",
    "det.rp.plen",
)
