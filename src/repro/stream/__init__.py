"""repro.stream: online ingestion and live rotation tracking.

The batch layers (:mod:`repro.core`) model the paper as post-processing:
scan all day, then correlate.  This package models the paper's actual
threat: an adversary that updates its inferences *as each response
arrives*, keeps them current across a multi-week campaign, survives
interruption, and re-anchors its pursuits the moment a hunted device
resurfaces.

Layout:

* :mod:`repro.stream.shard` -- deterministic response -> shard routing
  (/32 or origin-AS keyed) so hot-path aggregates stay small and local;
* :mod:`repro.stream.state` -- the O(1)-per-response aggregates that
  replace batch re-walks (allocation spans, pool spans, rotation pairs);
* :mod:`repro.stream.columnar` -- the numpy sort-reduce worker kernel:
  chunked uint64 address columns, vectorized dedup/min-max reduction,
  Python set materialization deferred to day close or snapshot; the
  default ``ingest_batch``/worker apply path when numpy is importable
  (the ``[fast]`` extra), with a pure-Python fallback otherwise;
* :mod:`repro.stream.engine` -- :class:`StreamEngine`, the single-pass
  ingestion core with always-current per-AS inferences, live rotation
  detection, and a watchlist for passive device sightings;
* :mod:`repro.stream.sink` -- the :class:`IngestSink` protocol and
  :class:`IngestSinkBase` mixin: one polymorphic ``ingest()`` (plus the
  legacy ``ingest_*`` names as shims) shared by every observation
  consumer;
* :mod:`repro.stream.parallel` -- :class:`ParallelStreamEngine`, the
  parallel backend: sharded workers fed flat-tuple chunks through a
  fabric transport, merged back into a byte-identical engine view;
* :mod:`repro.stream.fabric` -- the distributed campaign fabric:
  message framing, the dispatcher/worker protocol, the local
  :class:`PipeTransport`, and the :class:`SocketTransport` master +
  ``python -m repro.stream.fabric.worker`` entrypoint for multi-host
  workers;
* :mod:`repro.stream.feeds` -- passive-feed adapters: flow logs,
  hitlist sightings, provider flow taps, and generic timestamped
  records as observation streams, plus :class:`MixedFeed` day-order
  interleaving of active and passive sources (the Saidi et al. "one
  bad apple" ingestion path);
* :mod:`repro.stream.campaign` -- :class:`StreamingCampaign`, batch-
  identical campaign execution with periodic checkpoints (opts into the
  parallel backend via ``workers=N``, passive vantage via
  ``passive_feeds=[...]``);
* :mod:`repro.stream.tracker` -- :class:`LivePursuit`, the day-major
  streaming tracker;
* :mod:`repro.stream.checkpoint` -- JSON serialization of engine state.
"""

from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import (
    engine_state,
    load_engine,
    restore_engine,
    save_engine,
)
from repro.stream.engine import Sighting, StreamConfig, StreamEngine
from repro.stream.fabric import (
    FabricError,
    FabricServer,
    PipeTransport,
    SocketTransport,
    WorkerLost,
    parse_worker_spec,
)
from repro.stream.feeds import (
    MixedFeed,
    SightingRecord,
    flow_feed,
    hitlist_feed,
    ingest_feed,
    observation_feed,
    sighting_feed,
    tap_feed,
)
from repro.stream.parallel import ParallelStreamEngine
from repro.stream.shard import ShardKey, ShardRouter, shard_index
from repro.stream.sink import IngestSink, IngestSinkBase
from repro.stream.tracker import LivePursuit, PursuitState

__all__ = [
    "FabricError",
    "FabricServer",
    "IngestSink",
    "IngestSinkBase",
    "LivePursuit",
    "MixedFeed",
    "ParallelStreamEngine",
    "PipeTransport",
    "PursuitState",
    "ShardKey",
    "ShardRouter",
    "Sighting",
    "SightingRecord",
    "SocketTransport",
    "StreamConfig",
    "StreamEngine",
    "StreamingCampaign",
    "WorkerLost",
    "engine_state",
    "flow_feed",
    "hitlist_feed",
    "ingest_feed",
    "load_engine",
    "observation_feed",
    "parse_worker_spec",
    "restore_engine",
    "save_engine",
    "shard_index",
    "sighting_feed",
    "tap_feed",
]
