"""One polymorphic ``ingest()`` shared by every observation consumer.

Six entrypoints grew up around the engines -- ``ingest`` (one
observation), ``ingest_response``/``ingest_responses`` (raw probe
replies), ``ingest_batch`` (an observation iterable), ``ingest_columns``
(a :class:`~repro.store.batch.ColumnBatch`), and ``ingest_feed`` (a
day-ordered feed).  Each exists because a caller held a different
currency, but the *routing* between them is mechanical -- so it now
lives here, once.

:class:`IngestSinkBase` is the mixin: a subclass implements the three
native primitives --

* :meth:`_ingest_observation` -- fold one observation (the hot
  per-response path; campaign drivers bind this method directly so the
  dispatch below never runs per probe);
* :meth:`ingest_batch` -- bulk-apply an observation iterable;
* :meth:`ingest_columns` -- ingest a ``ColumnBatch`` without row
  materialization

-- and inherits the polymorphic :meth:`ingest` plus every legacy name
as a thin delegating shim.  :class:`StreamEngine`,
:class:`ParallelStreamEngine`, and the fabric's
:class:`~repro.stream.fabric.protocol.WorkerCore` all mix it in, which
is what lets campaign code, feeds, and transports treat "something that
absorbs observations" as one :class:`IngestSink` type regardless of
process or host boundaries.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.core.records import ProbeObservation
from repro.net.icmpv6 import ProbeResponse
from repro.store.batch import ColumnBatch


@runtime_checkable
class IngestSink(Protocol):
    """Anything that absorbs the observation stream.

    Engines, the parallel dispatcher, and transport workers all
    satisfy it; feeds and campaigns depend only on this surface.
    """

    def ingest(self, item, day: int | None = None) -> int: ...

    def ingest_batch(self, observations: Iterable[ProbeObservation]) -> int: ...

    def ingest_columns(self, batch) -> int: ...


class IngestSinkBase:
    """Mixin: polymorphic ``ingest()`` + legacy shims over 3 primitives."""

    __slots__ = ()

    # -- the primitives a sink implements ---------------------------------

    def _ingest_observation(self, observation: ProbeObservation) -> None:
        """Fold one observation into the sink. O(1); the hot path."""
        raise NotImplementedError

    def ingest_batch(self, observations: Iterable[ProbeObservation]) -> int:
        """Bulk-apply an observation iterable; returns how many."""
        raise NotImplementedError

    def ingest_columns(self, batch) -> int:
        """Ingest a :class:`ColumnBatch` directly; returns how many."""
        raise NotImplementedError

    # -- the one polymorphic entry point ----------------------------------

    def ingest(self, item, day: int | None = None) -> int:
        """Ingest *whatever the caller holds*; returns rows ingested.

        Accepts a single :class:`ProbeObservation`, a single raw
        :class:`ProbeResponse` (*day* stamps it), a
        :class:`ColumnBatch`, or any iterable of observations or
        responses -- one entry point over every currency, dispatching
        to the sink's native primitive for each.  Per-item cost is one
        ``isinstance`` chain; hot loops that always hold observations
        bind :meth:`_ingest_observation` instead and skip even that.
        """
        if isinstance(item, ProbeObservation):
            self._ingest_observation(item)
            return 1
        if isinstance(item, ColumnBatch):
            return self.ingest_columns(item)
        if isinstance(item, ProbeResponse):
            self._ingest_observation(ProbeObservation.from_response(item, day))
            return 1
        if isinstance(item, Iterable):
            return self._ingest_iterable(item, day)
        raise TypeError(
            "ingest() accepts a ProbeObservation, ProbeResponse, ColumnBatch, "
            f"or an iterable of the first two -- got {type(item).__name__}"
        )

    def _ingest_iterable(self, items: Iterable, day: int | None) -> int:
        """Route an iterable by peeking its first element's type."""
        iterator = iter(items)
        first = next(iterator, None)
        if first is None:
            return 0

        def _chained():
            yield first
            yield from iterator

        if isinstance(first, ProbeResponse):
            return self.ingest_batch(
                ProbeObservation.from_response(r, day) for r in _chained()
            )
        return self.ingest_batch(_chained())

    # -- legacy entrypoints, now thin shims -------------------------------

    def ingest_response(self, response: ProbeResponse, day: int | None = None) -> None:
        """Ingest one raw probe reply (*day* stamps the observation)."""
        self._ingest_observation(ProbeObservation.from_response(response, day))

    def ingest_responses(
        self, responses: Iterable[ProbeResponse], day: int | None = None
    ) -> int:
        """Ingest raw probe replies in bulk; returns how many."""
        return self.ingest_batch(
            ProbeObservation.from_response(r, day) for r in responses
        )

    def ingest_feed(self, feed: Iterable[ProbeObservation]) -> int:
        """Consume a day-ordered feed (see :mod:`repro.stream.feeds`).

        Active scan streams, passive vantage adapters, and
        :class:`~repro.stream.feeds.MixedFeed` interleavings all ride
        the bulk path; returns how many were ingested.
        """
        return self.ingest_batch(feed)


__all__ = ["IngestSink", "IngestSinkBase"]
