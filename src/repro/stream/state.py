"""Shard-local incremental state: the streaming engine's hot path.

Everything the batch analyses recompute by re-walking the whole
:class:`~repro.core.records.ObservationStore` is reducible to tiny
running aggregates, updated in O(1) per response:

* **Allocation inference** (Algorithm 1) needs, per (AS, IID, day), only
  the min/max /64 number of the *targets* that elicited the IID --
  ``allocation_bits`` is ``log2(max - min)``.
* **Pool inference** (Algorithm 2) needs, per (AS, IID), only the
  min/max /64 number of the IID's *response sources* across the whole
  campaign.
* **Rotation detection** (Section 4.3) needs per-day sets of
  ``<target, EUI-64 response>`` pairs; consecutive days diff with
  :func:`repro.core.rotation_detect.diff_pairs`, the same function the
  batch detector uses, so live and batch flag identical prefixes.

Aggregates are keyed by origin AS inside each shard; shard-level
partials merge losslessly (min/max and set union commute), so any
sharding of the response stream yields the same inferences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocation import AllocationInference, allocation_bits, plen_from_bits
from repro.core.records import ProbeObservation
from repro.core.rotation_pool import (
    RotationPoolInference,
    pool_bits,
    pool_plen_from_bits,
)
from repro.net.addr import IID_BITS
from repro.net.eui64 import _FFFE, _FFFE_SHIFT
from repro.util import median

Span = list[int]  # [lo, hi] running min/max, mutated in place

_IID_MASK = (1 << IID_BITS) - 1


def _update_span(spans: dict, key, value: int) -> None:
    span = spans.get(key)
    if span is None:
        spans[key] = [value, value]
    elif value < span[0]:
        span[0] = value
    elif value > span[1]:
        span[1] = value


def merge_span_bounds(spans: dict, key, lo: int, hi: int) -> None:
    """Fold a pre-reduced ``[lo, hi]`` group into a span table.

    The single-key counterpart of :func:`merge_spans`, used by the
    columnar kernel: each vectorized sort-reduce yields one min/max pair
    per (key) group, and folding it here commutes with per-observation
    :func:`_update_span` calls -- so columnar and scalar ingestion reach
    identical span tables in any interleaving.
    """
    span = spans.get(key)
    if span is None:
        spans[key] = [lo, hi]
    else:
        if lo < span[0]:
            span[0] = lo
        if hi > span[1]:
            span[1] = hi


def merge_spans(into: dict, other: dict) -> None:
    """Merge another span table into *into* (losslessly -- min/max commute)."""
    for key, span in other.items():
        mine = into.get(key)
        if mine is None:
            into[key] = [span[0], span[1]]
        else:
            if span[0] < mine[0]:
                mine[0] = span[0]
            if span[1] > mine[1]:
                mine[1] = span[1]


def prune_shard_days(shards: "list[ShardState]", threshold: int) -> None:
    """Drop every shard's pair sets for days older than *threshold*.

    The bounded-memory primitive behind ``StreamConfig.retain_days``,
    shared by the engine's close path and the parallel workers so both
    prune identically.
    """
    for shard in shards:
        pairs_by_day = shard.pairs_by_day
        for day in [d for d in pairs_by_day if d < threshold]:
            del pairs_by_day[day]


def alloc_span_rows(shard: "ShardState"):
    """Yield ``(asn, iid, day, lo, hi)`` rows of a shard's alloc spans.

    The flat-row view both checkpoint serializers share: JSON sorts the
    rows, the binary writer packs them into int64/uint64 columns.
    """
    for asn, spans in shard.alloc_spans.items():
        for (iid, day), span in spans.items():
            yield asn, iid, day, span[0], span[1]


def pool_span_rows(shard: "ShardState"):
    """Yield ``(asn, iid, lo, hi)`` rows of a shard's pool spans."""
    for asn, spans in shard.pool_spans.items():
        for iid, span in spans.items():
            yield asn, iid, span[0], span[1]


def merge_shard_state(into: "ShardState", part: "ShardState") -> None:
    """Fold a partial shard state into *into* (*part* is left untouched).

    Every aggregate commutes -- counts add, sets union, spans min/max --
    so folding any partition of a response stream reproduces the state a
    single consumer of the whole stream would hold.  This is the merge
    step of the multiprocess backend: each worker accumulates partials
    for the shards it owns, and the dispatcher folds them (plus any
    checkpoint-restored base state) back into one engine view.
    """
    into.n_observations += part.n_observations
    into.sources |= part.sources
    into.eui_sources |= part.eui_sources
    into.eui_iids |= part.eui_iids
    for asn, spans in part.alloc_spans.items():
        mine = into.alloc_spans.get(asn)
        if mine is None:
            mine = into.alloc_spans[asn] = {}
        merge_spans(mine, spans)
    for asn, spans in part.pool_spans.items():
        mine = into.pool_spans.get(asn)
        if mine is None:
            mine = into.pool_spans[asn] = {}
        merge_spans(mine, spans)
    for day, pairs in part.pairs_by_day.items():
        mine = into.pairs_by_day.get(day)
        if mine is None:
            into.pairs_by_day[day] = set(pairs)
        else:
            mine |= pairs


@dataclass
class ShardState:
    """All incremental aggregates owned by one shard.

    ``alloc_spans``: asn -> (iid, day) -> [min, max] target /64 number.
    ``pool_spans``: asn -> iid -> [min, max] source /64 number.
    ``pairs_by_day``: day -> set of changed-pair candidates, EUI-64 only.
    """

    shard_id: int = 0
    n_observations: int = 0
    sources: set[int] = field(default_factory=set)
    eui_sources: set[int] = field(default_factory=set)
    eui_iids: set[int] = field(default_factory=set)
    alloc_spans: dict[int, dict[tuple[int, int], Span]] = field(default_factory=dict)
    pool_spans: dict[int, dict[int, Span]] = field(default_factory=dict)
    pairs_by_day: dict[int, set[tuple[int, int]]] = field(default_factory=dict)

    def observe(self, observation: ProbeObservation, asn: int) -> None:
        """Fold one observation into every aggregate.

        O(1), and deliberately hand-inlined: this is the per-response
        hot path the throughput benchmark measures.
        """
        self.n_observations += 1
        source = observation.source
        self.sources.add(source)
        iid = source & _IID_MASK
        if (iid >> _FFFE_SHIFT) & 0xFFFF != _FFFE:  # is_eui64_iid, inlined
            return
        self.eui_sources.add(source)
        self.eui_iids.add(iid)
        day = observation.day
        target = observation.target

        alloc = self.alloc_spans.get(asn)
        if alloc is None:
            alloc = self.alloc_spans[asn] = {}
        t64 = target >> IID_BITS
        span = alloc.get((iid, day))
        if span is None:
            alloc[(iid, day)] = [t64, t64]
        elif t64 < span[0]:
            span[0] = t64
        elif t64 > span[1]:
            span[1] = t64

        pool = self.pool_spans.get(asn)
        if pool is None:
            pool = self.pool_spans[asn] = {}
        s64 = source >> IID_BITS
        span = pool.get(iid)
        if span is None:
            pool[iid] = [s64, s64]
        elif s64 < span[0]:
            span[0] = s64
        elif s64 > span[1]:
            span[1] = s64

        pairs = self.pairs_by_day.get(day)
        if pairs is None:
            pairs = self.pairs_by_day[day] = set()
        pairs.add((target, source))


# -- merged-shard inference (identical to the batch algorithms) -----------


def allocation_inference_from_spans(
    asn: int, spans: dict[tuple[int, int], Span], day: int | None = None
) -> AllocationInference:
    """Algorithm 1 over incremental spans.

    Matches :meth:`AllocationInference.from_observations` exactly: both
    reduce each IID's targets to a /64-number spread, and the spread of a
    set equals the spread of its running min/max.
    """
    per_iid: dict[int, Span] = {}
    for (iid, span_day), span in spans.items():
        if day is not None and span_day != day:
            continue
        mine = per_iid.get(iid)
        if mine is None:
            per_iid[iid] = [span[0], span[1]]
        else:
            mine[0] = min(mine[0], span[0])
            mine[1] = max(mine[1], span[1])
    if not per_iid:
        raise ValueError(f"AS{asn}: no EUI-64 observations")

    inference = AllocationInference(asn=asn)
    sizes = []
    for iid, (lo, hi) in per_iid.items():
        bits = allocation_bits([lo, hi])
        sizes.append(bits)
        inference.per_iid_plen[iid] = plen_from_bits(bits)
    inference.inferred_plen = plen_from_bits(median(sizes))
    return inference


def pool_inference_from_spans(
    asn: int, spans: dict[int, Span]
) -> RotationPoolInference:
    """Algorithm 2 over incremental spans; matches the batch inference."""
    if not spans:
        raise ValueError(f"AS{asn}: no EUI-64 observations")
    inference = RotationPoolInference(asn=asn)
    sizes = []
    for iid, (lo, hi) in spans.items():
        bits = pool_bits([lo, hi])
        sizes.append(bits)
        inference.per_iid_plen[iid] = pool_plen_from_bits(bits)
    inference.inferred_plen = pool_plen_from_bits(median(sizes))
    return inference
